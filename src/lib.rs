//! # statistical-distortion
//!
//! A production-quality Rust reproduction of **“Statistical Distortion:
//! Consequences of Data Cleaning”** (Tamraparni Dasu & Ji Meng Loh,
//! PVLDB 5(11), 2012).
//!
//! Data cleaning removes glitches, but it also reshapes the underlying
//! distribution — sometimes so badly that the “cleaned” data no longer
//! represents the process that generated it. The paper proposes measuring
//! every cleaning strategy along three axes:
//!
//! 1. **glitch improvement** — how much the weighted glitch index drops;
//! 2. **statistical distortion** — the Earth Mover's Distance between the
//!    dirty data and its cleaned counterpart;
//! 3. **cost** — proxied by the fraction of data cleaned.
//!
//! This crate is a facade re-exporting the full workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `sd-core` | the distortion metric + experimental framework |
//! | [`data`] | `sd-data` | hierarchical network time-series model |
//! | [`stats`] | `sd-stats` | summaries, histograms, KL, transforms |
//! | [`emd`] | `sd-emd` | Earth Mover's Distance engine |
//! | [`glitch`] | `sd-glitch` | glitch detection, constraints, scoring |
//! | [`netsim`] | `sd-netsim` | synthetic telemetry generator |
//! | [`cleaning`] | `sd-cleaning` | winsorize / mean-impute / MVN-impute strategies |
//! | [`sampling`] | `sd-sampling` | replication, bottom-k, priority, reservoir |
//! | [`serve`] | `sd-serve` | sharded streaming service for the §3.3 online pipeline |
//! | [`linalg`] | `sd-linalg` | small dense linear algebra |
//!
//! ## Quickstart
//!
//! ```
//! use statistical_distortion::prelude::*;
//!
//! // 1. Telemetry (substitute for the paper's proprietary network data).
//! let data = generate(&NetsimConfig::small(7)).dataset;
//!
//! // 2. The paper's experimental protocol.
//! let mut config = ExperimentConfig::paper_default(20, 42);
//! config.replications = 4; // paper uses 50
//!
//! // 3. Evaluate the five paper strategies in the 3-D metric.
//! let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
//! let result = Experiment::new(config).run(&data, &strategies).unwrap();
//! for si in 0..5 {
//!     let (improvement, distortion) = result.mean_point(si).unwrap();
//!     println!("strategy {}: improvement {improvement:.2}, distortion {distortion:.4}", si + 1);
//! }
//! ```

#![forbid(unsafe_code)]
pub use sd_cleaning as cleaning;
pub use sd_core as core;
pub use sd_data as data;
pub use sd_emd as emd;
pub use sd_glitch as glitch;
pub use sd_linalg as linalg;
pub use sd_netsim as netsim;
pub use sd_sampling as sampling;
pub use sd_serve as serve;
pub use sd_stats as stats;

/// The most common imports, bundled.
pub mod prelude {
    pub use sd_cleaning::{
        paper_strategy, CleaningContext, CleaningStrategy, CompositeStrategy, MeanImputer,
        MissingTreatment, MvnImputer, OutlierTreatment, PartialCleaner, Winsorizer,
    };
    pub use sd_core::{
        budget_optimize, budget_optimize_reference, budget_tradeoff, cost_sweep,
        cost_sweep_reference, partition_ideal, statistical_distortion, BudgetOptimizerConfig,
        CostModel, CostSweepConfig, DistortionKernel, DistortionMetric, Experiment,
        ExperimentConfig, ExperimentResult, FrontierPoint, MetricScore, NeighborPooling,
        PreparedKernel, SelectionPolicy, StrategyOutcome, TaskExecutor, ThreadPoolExecutor,
        TransportMode, WindowedConfig, WindowedExperiment, WindowedResult,
    };
    pub use sd_data::{Dataset, NodeId, TimeSeries, Topology};
    pub use sd_emd::{emd, emd_1d_samples, GridEmd, Signature};
    pub use sd_glitch::{
        Constraint, ConstraintSet, GlitchDetector, GlitchIndex, GlitchReport, GlitchType,
        GlitchWeights, OutlierDetector,
    };
    pub use sd_netsim::{generate, stream_rows, GlitchRates, NetsimConfig};
    pub use sd_sampling::ReplicationSampler;
    pub use sd_serve::{
        ServeConfig, ServeStats, StreamReport, StreamingService, WindowLag, WindowUpdate,
    };
    pub use sd_stats::{AttributeTransform, Summary};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let t = Topology::new(1, 1, 2);
        assert_eq!(t.num_sectors(), 2);
        let w = GlitchWeights::paper();
        assert_eq!(w.outlier, 0.5);
    }
}
