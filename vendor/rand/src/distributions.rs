//! Standard-uniform and range sampling for the shim.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "standard" distribution: uniform bits for integers, uniform
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, exactly the upstream convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` in `[0, bound)` without modulo bias (Lemire's method
/// with a rejection loop on the widening multiply).
fn uniform_u64_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(span as u64, rng) as $t)
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range");
                let u: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty float range");
                let u: f64 = Standard.sample(rng);
                start + (end - start) * u as $t
            }
        }
    )*};
}

float_range_impls!(f64, f32);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn unit_uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lemire_rejection_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((c as f64 - n as f64 / 3.0).abs() < n as f64 * 0.02);
        }
    }
}
