//! Offline vendored shim for the subset of the `rand` 0.8 API this
//! workspace uses. The container image has no route to crates.io, so the
//! workspace carries its own implementations: a deterministic
//! xoshiro256++ [`rngs::StdRng`], the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] trait triple, range and standard-uniform sampling, and the
//! [`rngs::mock::StepRng`] used by tests.
//!
//! Determinism is the only hard requirement of the workspace (experiments
//! derive every stream from an explicit seed), and xoshiro256++ with a
//! SplitMix64 seed expansion provides the same statistical quality class
//! as the upstream `StdRng` (ChaCha12) at a fraction of the code.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a stream of raw bits.
///
/// Object-safe on purpose — cleaning strategies take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard (uniform) distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
