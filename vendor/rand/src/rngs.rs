//! Concrete generators: the workspace's deterministic [`StdRng`] and the
//! test-only [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// The standard workspace generator: xoshiro256++.
///
/// Not the upstream ChaCha12 — bit streams differ from crates.io `rand` —
/// but the workspace only requires *internal* determinism: every
/// experiment derives its streams from explicit seeds and compares runs
/// against each other, never against foreign implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(word);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

pub mod mock {
    //! Mock generators for tests that need a fully predictable stream.

    use crate::RngCore;

    /// Returns `initial`, `initial + increment`, `initial + 2·increment`, …
    /// as a `u64` stream (wrapping), mirroring `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a stepped stream starting at `initial`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn step_rng_steps() {
        let mut r = mock::StepRng::new(1, 7);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 8);
        assert_eq!(r.next_u64(), 15);
    }
}
