//! Offline vendored shim for the subset of `rand_distr` this workspace
//! uses: [`StandardNormal`], [`Normal`], [`LogNormal`], [`Gamma`] and
//! [`Beta`], all implementing the [`Distribution`] trait re-exported from
//! the vendored `rand`.
//!
//! Algorithms are the textbook exact samplers (Box–Muller for the normal,
//! Marsaglia–Tsang for the gamma, the two-gamma construction for the
//! beta), chosen for correctness and determinism rather than speed.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform draw in the open interval `(0, 1)` — safe under `ln`.
#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Draws one standard-normal variate by Box–Muller (the cosine branch;
/// stateless, so `Distribution::sample` can take `&self`).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open(rng);
    let u2 = unit_open(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates `N(mean, std_dev²)`; `std_dev` must be finite and ≥ 0.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    /// Creates `exp(N(mu, sigma²))`; `sigma` must be finite and ≥ 0.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// The gamma distribution with shape `k` and **scale** `θ` (the
/// `rand_distr` parameterization: mean `k·θ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma<F = f64> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// Creates `Gamma(shape, scale)`; both must be finite and > 0.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
            return Err(Error("Gamma requires shape > 0 and scale > 0"));
        }
        Ok(Gamma { shape, scale })
    }
}

/// Marsaglia–Tsang (2000) sampler for `Gamma(shape, 1)` with `shape >= 1`.
fn gamma_shape_ge1<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = unit_open(rng);
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            return self.scale * gamma_shape_ge1(self.shape, rng);
        }
        // Boost: Gamma(k) = Gamma(k + 1) · U^(1/k) for k < 1.
        let g = gamma_shape_ge1(self.shape + 1.0, rng);
        let u = unit_open(rng);
        self.scale * g * u.powf(1.0 / self.shape)
    }
}

/// The beta distribution `Beta(alpha, beta)` on `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta<F = f64> {
    alpha: F,
    beta: F,
}

impl Beta<f64> {
    /// Creates `Beta(alpha, beta)`; both must be finite and > 0.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, Error> {
        if !(alpha.is_finite() && beta.is_finite() && alpha > 0.0 && beta > 0.0) {
            return Err(Error("Beta requires alpha > 0 and beta > 0"));
        }
        Ok(Beta { alpha, beta })
    }
}

impl Distribution<f64> for Beta<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = Gamma::new(self.alpha, 1.0)
            .expect("valid gamma")
            .sample(rng);
        let y = Gamma::new(self.beta, 1.0).expect("valid gamma").sample(rng);
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(3.0, 0.8).unwrap();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 3.0f64.exp()).abs() < 0.5, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_match_shape_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Gamma::new(2.5, 1.5).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 2.5 * 1.5).abs() < 0.08, "mean {m}");
        assert!((v - 2.5 * 1.5 * 1.5).abs() < 0.3, "var {v}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Gamma::new(0.4, 2.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let (m, _) = moments(&xs);
        assert!((m - 0.8).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn beta_stays_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Beta::new(8.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let (m, _) = moments(&xs);
        assert!((m - 0.8).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
