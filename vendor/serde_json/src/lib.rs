//! Offline vendored shim for the subset of `serde_json` this workspace
//! uses: the [`Value`] tree, the [`json!`] constructor macro, and
//! [`to_string_pretty`]. Conversions go through the [`ToJson`] trait
//! rather than serde's `Serialize`, because the serde shim is erased.
//!
//! Object keys are stored in a `BTreeMap`, so emitted JSON is sorted by
//! key — a stable, diff-friendly artifact format.

use std::collections::BTreeMap;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the encoding of non-finite numbers, as in serde_json).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(BTreeMap<String, Value>),
}

/// Serialization error (kept for API parity; the shim never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`], implemented for every type the workspace
/// embeds in `json!` literals.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_numbers {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::Number(x) } else { Value::Null }
            }
        }
    )*};
}

to_json_numbers!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Converts any [`ToJson`] into a [`Value`] (used by [`json!`]).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports the object,
/// array, `null`, and bare-expression forms the workspace uses; object
/// values are arbitrary expressions (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut object = std::collections::BTreeMap::new();
        $( object.insert(($key).to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(object)
    }};
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$element)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, x: f64) {
    // Integral values print without a trailing ".0", like serde_json.
    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_pretty(out: &mut String, value: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth + 1));
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
    }
}

/// Pretty-prints `value` with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let rows = vec![1.5f64, 2.0];
        let v = json!({
            "name": "table1",
            "count": 2usize,
            "rows": rows,
            "flag": true,
            "nested": json!({ "a": 1.0 }),
            "pair": [1.0, 2.5],
            "missing": json!(null),
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map["name"], Value::String("table1".into()));
        assert_eq!(map["count"], Value::Number(2.0));
        assert_eq!(
            map["rows"],
            Value::Array(vec![Value::Number(1.5), Value::Number(2.0)])
        );
        assert_eq!(map["missing"], Value::Null);
    }

    #[test]
    fn pretty_printer_round_trips_shape() {
        let v = json!({ "b": [1.0], "a": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json!(f64::NAN), Value::Null);
        assert_eq!(json!(f64::INFINITY), Value::Null);
        assert_eq!(json!(1.25), Value::Number(1.25));
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        let s = to_string_pretty(&json!([3.0, 3.5])).unwrap();
        assert!(s.contains("3,") && s.contains("3.5"), "{s}");
    }
}
