//! Offline vendored shim for the subset of `serde_json` this workspace
//! uses: the [`Value`] tree, the [`json!`] constructor macro,
//! [`to_string_pretty`], and the [`from_str`] parser with the usual
//! borrowing accessors ([`Value::get`], [`Value::as_f64`], …).
//! Conversions go through the [`ToJson`] trait rather than serde's
//! `Serialize`, because the serde shim is erased.
//!
//! Object keys are stored in a `BTreeMap`, so emitted JSON is sorted by
//! key — a stable, diff-friendly artifact format.

use std::collections::BTreeMap;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the encoding of non-finite numbers, as in serde_json).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The borrowed string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The borrowed element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The borrowed member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse or serialization error, carrying a human-readable description
/// (serialization through this shim never fails; parsing can).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("at byte {offset}: {}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] — the standard grammar
/// (RFC 8259): `null`, booleans, numbers (stored as `f64`), strings with
/// escapes, arrays, and objects. Trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected '{}'", byte as char)))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::at(self.pos, format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::at(
                self.pos,
                format!("unexpected character '{}'", c as char),
            )),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number characters are valid UTF-8");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::at(start, format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Scan a run of plain (non-escape, non-quote) bytes in one
            // UTF-8-preserving slice copy.
            let run_start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| Error::at(run_start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the shim's
                            // artifact format; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::at(
                                self.pos - 1,
                                format!("unknown escape '\\{}'", other as char),
                            ));
                        }
                    }
                }
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(_) => unreachable!("scan loop stops only on quote, backslash, or end"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }
}

/// Conversion into a [`Value`], implemented for every type the workspace
/// embeds in `json!` literals.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_numbers {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::Number(x) } else { Value::Null }
            }
        }
    )*};
}

to_json_numbers!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Converts any [`ToJson`] into a [`Value`] (used by [`json!`]).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports the object,
/// array, `null`, and bare-expression forms the workspace uses; object
/// values are arbitrary expressions (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut object = std::collections::BTreeMap::new();
        $( object.insert(($key).to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(object)
    }};
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$element)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, x: f64) {
    // Integral values print without a trailing ".0", like serde_json.
    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_pretty(out: &mut String, value: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth + 1));
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
    }
}

/// Pretty-prints `value` with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let rows = vec![1.5f64, 2.0];
        let v = json!({
            "name": "table1",
            "count": 2usize,
            "rows": rows,
            "flag": true,
            "nested": json!({ "a": 1.0 }),
            "pair": [1.0, 2.5],
            "missing": json!(null),
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map["name"], Value::String("table1".into()));
        assert_eq!(map["count"], Value::Number(2.0));
        assert_eq!(
            map["rows"],
            Value::Array(vec![Value::Number(1.5), Value::Number(2.0)])
        );
        assert_eq!(map["missing"], Value::Null);
    }

    #[test]
    fn pretty_printer_round_trips_shape() {
        let v = json!({ "b": [1.0], "a": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json!(f64::NAN), Value::Null);
        assert_eq!(json!(f64::INFINITY), Value::Null);
        assert_eq!(json!(1.25), Value::Number(1.25));
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        let s = to_string_pretty(&json!([3.0, 3.5])).unwrap();
        assert!(s.contains("3,") && s.contains("3.5"), "{s}");
    }

    #[test]
    fn parser_round_trips_pretty_output() {
        let v = json!({
            "name": "cost model",
            "per_cell": [1.0, 2.5, -3.0e-2],
            "enabled": true,
            "nested": json!({ "nothing": json!(null), "text": "a\"b\\c\nd" }),
        });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parser_handles_whitespace_and_escapes() {
        let v = from_str(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(Value::as_array).unwrap().as_slice(),
            &[Value::Number(1.0), Value::String("A\t".into())]
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "\"open",
            "1.2.3",
            "{} junk",
            "{\"a\" 1}",
        ] {
            let err = from_str(bad).unwrap_err();
            assert!(err.to_string().contains("at byte"), "{bad:?} → {err}");
        }
    }

    #[test]
    fn accessors_select_by_type() {
        let v = json!({ "x": 2.0, "s": "hi", "b": false, "a": [1.0] });
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(v.as_object().map(BTreeMap::len), Some(4));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
        assert!(Value::Null.as_f64().is_none());
    }
}
