//! Offline vendored shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data-model types
//! for downstream interoperability, but nothing in-tree serializes those
//! types through serde — all JSON artifacts go through the `serde_json`
//! shim's `Value`/`json!`. The derives therefore expand to nothing: the
//! attribute is accepted and type definitions stay byte-compatible with
//! real serde, without pulling in `syn`/`quote` (unreachable offline).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
