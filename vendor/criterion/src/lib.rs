//! Offline vendored shim for the subset of the Criterion API the bench
//! targets use. Statistical rigor is out of scope: each benchmark runs a
//! short warm-up, then a fixed measurement loop, and prints mean
//! time-per-iteration to stdout. The value of the shim is that
//! `cargo bench` compiles, runs, and gives order-of-magnitude numbers
//! offline; swap in real Criterion when a registry is reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim runs every variant as one setup per measured iteration; the
/// distinction only matters for real Criterion's memory management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; large batches.
    SmallInput,
    /// Inputs are expensive to hold; small batches.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not measured).
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`, excluding the setup
    /// cost (allocations, clones) from the measured region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up (not measured).
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    println!("bench: {label:<60} {:>12.3} µs/iter", per_iter * 1e6);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers/raises the measurement effort (mapped onto loop iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 1000);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.iters, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    iters: u64,
}

impl Criterion {
    fn effective_iters(&self) -> u64 {
        if self.iters == 0 {
            10
        } else {
            self.iters
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.effective_iters(), &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.effective_iters();
        BenchmarkGroup {
            name: name.into(),
            iters,
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions, mirroring Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_excludes_setup_from_timing() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| {
                    runs += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(runs > 0);
        // One setup per run (warm-up included).
        assert_eq!(setups, runs);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut hits = 0;
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| {
                hits += 1;
                n * 2
            })
        });
        group.finish();
        assert!(hits > 0);
        let id = BenchmarkId::new("f", 128);
        assert_eq!(id.id, "f/128");
    }
}
