//! Offline vendored shim for the subset of `parking_lot` this workspace
//! uses: a [`Mutex`] whose `lock` never returns a poison `Result`.
//! Backed by `std::sync::Mutex`; a poisoned lock propagates the original
//! panic, which matches parking_lot's "no poisoning" observable behavior
//! for this workspace (worker panics already abort the experiment).

use std::sync::MutexGuard;

/// A mutual-exclusion primitive with an infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
