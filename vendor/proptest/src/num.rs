//! Numeric bit-class strategies (the `prop::num::f64::POSITIVE` family).

pub mod f64 {
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy over positive `f64` values spanning the full exponent
    /// range, with occasional `+∞` (mirroring upstream, whose POSITIVE
    /// class includes infinite values — callers filter for finiteness).
    #[derive(Debug, Clone, Copy)]
    pub struct PositiveF64;

    /// Positive floats: magnitudes log-uniform across `~1e-300 .. 1e300`,
    /// plus an occasional infinity.
    pub const POSITIVE: PositiveF64 = PositiveF64;

    impl Strategy for PositiveF64 {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            if rng.gen_range(0u32..64) == 0 {
                return <f64>::INFINITY;
            }
            let exponent: f64 = rng.gen_range(-300.0..300.0);
            let mantissa: f64 = rng.gen_range(1.0..10.0);
            let x = mantissa * 10f64.powf(exponent);
            if x > 0.0 && x.is_finite() {
                x
            } else {
                1.0
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::seed_for;

        #[test]
        fn positive_is_positive_and_sometimes_infinite() {
            let mut saw_infinite = false;
            let mut saw_small = false;
            let mut saw_large = false;
            for case in 0..2000 {
                let x = POSITIVE.generate(&mut seed_for("pos", case));
                assert!(x > 0.0);
                saw_infinite |= x.is_infinite();
                saw_small |= x < 1e-50;
                saw_large |= x.is_finite() && x > 1e50;
            }
            assert!(saw_infinite && saw_small && saw_large);
        }
    }
}
