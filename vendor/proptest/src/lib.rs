//! Offline vendored shim for the subset of `proptest` this workspace
//! uses: the [`Strategy`] trait with `prop_map` / `prop_filter`, range,
//! tuple, and collection strategies, and the [`proptest!`] macro.
//!
//! Each property runs `ProptestConfig::cases` times on inputs drawn from
//! a generator seeded by the test name and case index, so failures are
//! reproducible run-to-run. There is no shrinking: a failing case panics
//! with the ordinary assertion message (the deterministic seeding makes
//! the failing input re-derivable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod num;

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the base seed for a property from its name (FNV-1a), so every
/// property sees an independent but stable input stream.
pub fn seed_for(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1024 consecutive draws",
            self.reason
        );
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Runs one property body over `config.cases` generated cases.
/// Used by the [`proptest!`] expansion; not part of the public API shape.
pub fn run_cases<F: FnMut(u64)>(config: &ProptestConfig, mut body: F) {
    for case in 0..config.cases as u64 {
        body(case);
    }
}

/// `assert!` inside a property (no shrinking, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Declares deterministic property tests:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, n in 1usize..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, |case| {
                    let mut prop_rng = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                    $body
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// The common imports: the macro, assertions, [`Strategy`],
/// [`ProptestConfig`], and the `prop` module tree.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            x in -5.0f64..5.0,
            (a, b) in (0usize..4, 10u64..20),
            v in prop::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(a < 4 && (10..20).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        #[test]
        fn map_and_filter_apply(
            y in (0.0f64..1.0).prop_map(|v| v + 10.0),
            z in (-10.0f64..10.0).prop_filter("positive", |v| *v > 0.0),
        ) {
            prop_assert!((10.0..11.0).contains(&y));
            prop_assert!(z > 0.0);
        }
    }

    #[test]
    fn seeding_is_stable_per_name_and_case() {
        use crate::Strategy;
        let a = (0.0f64..1.0).generate(&mut crate::seed_for("t", 3));
        let b = (0.0f64..1.0).generate(&mut crate::seed_for("t", 3));
        let c = (0.0f64..1.0).generate(&mut crate::seed_for("t", 4));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }
}
