//! Collection strategies: `vec` and `btree_set`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A vector of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A set of values from `element`, with size in `size` (duplicates are
/// redrawn, bounded by a retry budget like upstream proptest).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut out = BTreeSet::new();
        let mut tries = 0usize;
        while out.len() < target && tries < target.saturating_mul(64) + 64 {
            out.insert(self.element.generate(rng));
            tries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed_for;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0.0f64..1.0, 3..7);
        for case in 0..100 {
            let v = s.generate(&mut seed_for("vec", case));
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_hits_target_when_domain_is_large() {
        let s = btree_set(0usize..1000, 5..9);
        for case in 0..50 {
            let set = s.generate(&mut seed_for("set", case));
            assert!((5..9).contains(&set.len()), "len {}", set.len());
        }
    }
}
