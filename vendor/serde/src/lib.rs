//! Offline vendored shim for the slice of `serde` this workspace touches.
//!
//! [`Serialize`] and [`Deserialize`] are marker traits here: the workspace
//! annotates its data-model types for downstream interoperability but
//! never drives them through a serde `Serializer` in-tree (JSON artifacts
//! are built explicitly with the `serde_json` shim's `Value`). The derive
//! macros re-exported from `serde_derive` expand to nothing, which keeps
//! `#[derive(Serialize, Deserialize)]` valid on every annotated type.

// The derive macros live in the macro namespace, the traits in the type
// namespace; re-exporting both under one name mirrors real serde.
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types annotated as serde-serializable.
pub trait Serialize {}

/// Marker for types annotated as serde-deserializable.
pub trait Deserialize {}
