use crate::error::FrameworkError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use sd_emd::emd_1d_samples;

/// The three Figure 2 cleaning options a fixed budget `$K` can buy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetScenario {
    /// Impute every missing value with a fixed constant (the mean):
    /// cheap, 100 % glitch improvement, high distortion (density spike).
    CheapConstant,
    /// Simulate the distribution for a subset of glitches: medium cost,
    /// the paper's example covers 40 % of the glitches, low distortion.
    SimulateDistribution,
    /// Re-take the measurements: expensive, covers 30 % of the glitches,
    /// (almost) no distortion.
    Remeasure,
}

impl BudgetScenario {
    /// Display label matching Figure 2's annotations.
    pub fn label(&self) -> &'static str {
        match self {
            BudgetScenario::CheapConstant => "impute fixed constant (cheap)",
            BudgetScenario::SimulateDistribution => "simulate distribution (medium)",
            BudgetScenario::Remeasure => "re-measure (expensive)",
        }
    }

    /// Fraction of glitches the budget covers under this scenario.
    pub fn coverage(&self) -> f64 {
        match self {
            BudgetScenario::CheapConstant => 1.0,
            BudgetScenario::SimulateDistribution => 0.4,
            BudgetScenario::Remeasure => 0.3,
        }
    }
}

/// One point of the Figure 2 trade-off.
#[derive(Debug, Clone)]
pub struct BudgetPoint {
    /// Which option was bought.
    pub scenario: BudgetScenario,
    /// Percentage of glitches removed (the glitch-improvement axis).
    pub glitch_improvement_pct: f64,
    /// EMD between treated and dirty observed distributions.
    pub distortion: f64,
}

/// Reproduces the Figure 2 thought experiment quantitatively.
///
/// A right-skewed measurement process loses `missing_fraction` of its
/// values; a fixed budget buys one of three repairs. The cheap constant
/// fixes everything but spikes the density; simulating the distribution
/// fixes 40 % with little distortion; re-measuring fixes 30 % with almost
/// none. The returned points trace exactly the trade-off curve of the
/// figure.
///
/// # Errors
///
/// * [`FrameworkError::InvalidConfig`] when `n ≤ 10` or `missing_fraction`
///   lies outside `[0, 1)`.
/// * [`FrameworkError::EmptyObserved`] when the stochastic missing mask
///   deletes *every* draw — possible at any `missing_fraction > 0`, and
///   nearly certain for small `n` at fractions close to 1. There is then
///   no observed distribution to treat or to measure distortion against.
/// * [`FrameworkError::Distortion`] if the EMD between observed and
///   treated samples cannot be computed.
///
/// When the mask happens to delete *nothing* (`missing_fraction = 0`, or
/// luck), every scenario trivially fixes all zero glitches: the points
/// report 100 % improvement and zero distortion.
pub fn budget_tradeoff(
    n: usize,
    missing_fraction: f64,
    seed: u64,
) -> Result<Vec<BudgetPoint>, FrameworkError> {
    if n <= 10 {
        return Err(FrameworkError::InvalidConfig(format!(
            "need a meaningful sample (n > 10, got {n})"
        )));
    }
    if !(0.0..1.0).contains(&missing_fraction) {
        return Err(FrameworkError::InvalidConfig(format!(
            "missing fraction must lie in [0, 1), got {missing_fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = LogNormal::new(3.0, 0.8)
        .map_err(|e| FrameworkError::Internal(format!("lognormal(3.0, 0.8) rejected: {e}")))?;

    // Ground truth and the dirty view (missing values deleted).
    let truth: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let missing: Vec<bool> = (0..n)
        .map(|_| rng.gen::<f64>() < missing_fraction)
        .collect();
    let observed: Vec<f64> = truth
        .iter()
        .zip(&missing)
        .filter(|(_, &m)| !m)
        .map(|(&x, _)| x)
        .collect();
    if observed.is_empty() {
        return Err(FrameworkError::EmptyObserved {
            n,
            missing_fraction,
        });
    }
    let num_missing = missing.iter().filter(|&&m| m).count();
    let observed_mean = observed.iter().sum::<f64>() / observed.len() as f64;

    let mut points = Vec::with_capacity(3);
    for scenario in [
        BudgetScenario::CheapConstant,
        BudgetScenario::SimulateDistribution,
        BudgetScenario::Remeasure,
    ] {
        let coverage = scenario.coverage();
        let to_fix = ((num_missing as f64) * coverage).round() as usize;
        // The treated data set: observed values plus repaired ones.
        let mut treated = observed.clone();
        let mut fixed = 0usize;
        for (i, &is_missing) in missing.iter().enumerate() {
            if !is_missing || fixed >= to_fix {
                continue;
            }
            let repair = match scenario {
                BudgetScenario::CheapConstant => observed_mean,
                BudgetScenario::SimulateDistribution => {
                    // Draw from the empirical observed distribution.
                    observed[rng.gen_range(0..observed.len())]
                }
                BudgetScenario::Remeasure => truth[i],
            };
            treated.push(repair);
            fixed += 1;
        }
        let distortion = emd_1d_samples(&observed, &treated)
            .map_err(|e| FrameworkError::Distortion(e.to_string()))?;
        // With zero glitches every scenario trivially fixes all of them.
        let glitch_improvement_pct = if num_missing == 0 {
            100.0
        } else {
            100.0 * fixed as f64 / num_missing as f64
        };
        points.push(BudgetPoint {
            scenario,
            glitch_improvement_pct,
            distortion,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ordering_matches_figure2() {
        let points = budget_tradeoff(5000, 0.2, 7).unwrap();
        assert_eq!(points.len(), 3);
        let cheap = &points[0];
        let medium = &points[1];
        let expensive = &points[2];
        assert!((cheap.glitch_improvement_pct - 100.0).abs() < 1e-9);
        assert!((medium.glitch_improvement_pct - 40.0).abs() < 1.0);
        assert!((expensive.glitch_improvement_pct - 30.0).abs() < 1.0);
    }

    #[test]
    fn distortion_ordering_matches_figure2() {
        // Average over seeds: the constant spike distorts most; simulating
        // distorts a little; re-measuring distorts least per glitch fixed.
        let mut cheap = 0.0;
        let mut medium = 0.0;
        let mut expensive = 0.0;
        for seed in 0..10 {
            let points = budget_tradeoff(4000, 0.2, seed).unwrap();
            cheap += points[0].distortion;
            medium += points[1].distortion;
            expensive += points[2].distortion;
        }
        assert!(
            cheap > medium && medium > expensive,
            "cheap {cheap}, medium {medium}, expensive {expensive}"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = [
            BudgetScenario::CheapConstant,
            BudgetScenario::SimulateDistribution,
            BudgetScenario::Remeasure,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert_eq!(labels.len(), 3);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn invalid_fraction_is_an_error() {
        let err = budget_tradeoff(100, 1.0, 1).unwrap_err();
        assert!(err.to_string().contains("fraction"), "{err}");
        let err = budget_tradeoff(100, -0.1, 1).unwrap_err();
        assert!(err.to_string().contains("fraction"), "{err}");
    }

    #[test]
    fn small_sample_is_an_error() {
        assert!(matches!(
            budget_tradeoff(10, 0.2, 1),
            Err(FrameworkError::InvalidConfig(_))
        ));
    }

    #[test]
    fn near_total_missingness_never_panics() {
        // Regression: `missing_fraction` close to 1 at small `n` used to
        // panic on `gen_range(0..0)` / empty-sample EMD once the mask
        // deleted everything. Now every seed yields either a valid curve
        // or a structured EmptyObserved error.
        let mut saw_empty = false;
        for seed in 0..20 {
            match budget_tradeoff(11, 0.999, seed) {
                Ok(points) => assert_eq!(points.len(), 3),
                Err(FrameworkError::EmptyObserved {
                    n,
                    missing_fraction,
                }) => {
                    assert_eq!(n, 11);
                    assert!((missing_fraction - 0.999).abs() < 1e-12);
                    saw_empty = true;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_empty, "0.999^11 per seed should empty at least one");
    }

    #[test]
    fn zero_missing_fraction_reports_trivial_cleanup() {
        // In-domain edge: nothing goes missing, so every scenario fixes
        // all zero glitches with zero distortion.
        let points = budget_tradeoff(200, 0.0, 3).unwrap();
        for p in points {
            assert!((p.glitch_improvement_pct - 100.0).abs() < 1e-12);
            assert_eq!(p.distortion, 0.0);
        }
    }
}
