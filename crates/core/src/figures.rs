use crate::{Experiment, ExperimentConfig, ExperimentResult, Result};
use sd_cleaning::{CleaningStrategy, CompositeStrategy};
use sd_data::Dataset;
use sd_glitch::{counts_per_time, GlitchType};

/// The Figure 3 data: per-time-step record counts of each glitch type,
/// aggregated over all replications and samples ("roughly 5000 data points
/// at any given time" for R = 50, B = 100).
#[derive(Debug, Clone)]
pub struct Figure3Data {
    /// Counts of records with ≥ 1 missing attribute, per time step.
    pub missing: Vec<usize>,
    /// Counts for inconsistencies.
    pub inconsistent: Vec<usize>,
    /// Counts for outliers.
    pub outliers: Vec<usize>,
}

/// Produces the Figure 3 series for an experiment configuration.
pub fn figure3_series(data: &Dataset, config: &ExperimentConfig) -> Result<Figure3Data> {
    let prepared = Experiment::new(config.clone()).prepare(data)?;
    let horizon = data
        .series()
        .iter()
        .map(sd_data::TimeSeries::len)
        .max()
        .unwrap_or(0);
    let per_replication = crate::parallel_map(config.replications, config.threads, |i| {
        let artifacts = prepared.replication(i);
        (
            counts_per_time(&artifacts.dirty_matrices, GlitchType::Missing, horizon),
            counts_per_time(&artifacts.dirty_matrices, GlitchType::Inconsistent, horizon),
            counts_per_time(&artifacts.dirty_matrices, GlitchType::Outlier, horizon),
        )
    });
    let mut out = Figure3Data {
        missing: vec![0; horizon],
        inconsistent: vec![0; horizon],
        outliers: vec![0; horizon],
    };
    for (m, i, o) in per_replication {
        for t in 0..horizon {
            out.missing[t] += m[t];
            out.inconsistent[t] += i[t];
            out.outliers[t] += o[t];
        }
    }
    Ok(out)
}

/// How a cell changed between the dirty and treated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterPointKind {
    /// Value present and untouched (the `y = x` diagonal).
    Unchanged,
    /// Value was missing in the dirty data and was imputed (the paper's
    /// gray points along the Y axis).
    ImputedFromMissing,
    /// Value was present and was rewritten (winsorized values, or
    /// inconsistent values replaced by imputation).
    Rewritten,
    /// Value missing in both (unimputable residue).
    StillMissing,
}

/// One `(untreated, treated)` pair for the Figure 4/5 scatters.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// Dirty value (`None` = missing).
    pub untreated: Option<f64>,
    /// Treated value (`None` = missing).
    pub treated: Option<f64>,
    /// Classification of the change.
    pub kind: ScatterPointKind,
    /// Replication the point came from.
    pub replication: usize,
}

/// A named collection of scatter points (one per strategy/configuration).
#[derive(Debug, Clone)]
pub struct ScatterPair {
    /// Label, e.g. the strategy name.
    pub label: String,
    /// The points.
    pub points: Vec<ScatterPoint>,
}

/// Produces the Figure 4 scatter: attribute `attr` untreated vs. treated
/// under `strategy`, pooled across replications (capped at `max_points`).
pub fn figure4_scatter(
    data: &Dataset,
    config: &ExperimentConfig,
    strategy: &CompositeStrategy,
    attr: usize,
    max_points: usize,
) -> Result<ScatterPair> {
    let prepared = Experiment::new(config.clone()).prepare(data)?;
    let per_replication = crate::parallel_map(config.replications, config.threads, |i| {
        let artifacts = prepared.replication(i);
        let (cleaned, _) = artifacts.apply(strategy, config.seed, 0);
        let mut points = Vec::new();
        for (series, treated) in artifacts.dirty.series().iter().zip(cleaned.series()) {
            for t in 0..series.len() {
                let u = series.get(attr, t);
                let c = treated.get(attr, t);
                let kind = match (u.is_nan(), c.is_nan()) {
                    (true, false) => ScatterPointKind::ImputedFromMissing,
                    (true, true) => ScatterPointKind::StillMissing,
                    (false, true) => ScatterPointKind::Rewritten,
                    (false, false) => {
                        if u.to_bits() == c.to_bits() {
                            ScatterPointKind::Unchanged
                        } else {
                            ScatterPointKind::Rewritten
                        }
                    }
                };
                points.push(ScatterPoint {
                    untreated: (!u.is_nan()).then_some(u),
                    treated: (!c.is_nan()).then_some(c),
                    kind,
                    replication: i,
                });
            }
        }
        points
    });
    let mut points: Vec<ScatterPoint> = per_replication.into_iter().flatten().collect();
    if points.len() > max_points {
        // Deterministic thinning: keep every k-th point.
        let stride = points.len().div_ceil(max_points);
        points = points
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, p)| p)
            .collect();
    }
    Ok(ScatterPair {
        label: strategy.name(),
        points,
    })
}

/// Produces the Figure 5 scatters: attribute `attr` before/after each of
/// the given strategies (the paper shows Strategies 1 and 2 on
/// Attribute 3).
pub fn figure5_scatter(
    data: &Dataset,
    config: &ExperimentConfig,
    strategies: &[CompositeStrategy],
    attr: usize,
    max_points: usize,
) -> Result<Vec<ScatterPair>> {
    strategies
        .iter()
        .map(|s| figure4_scatter(data, config, s, attr, max_points))
        .collect()
}

/// The Figure 6 points: simply the experiment outcomes, exposed with the
/// figure's axes `(improvement in glitch scores, EMD)` per strategy.
pub fn figure6_points(result: &ExperimentResult) -> Vec<(String, f64, f64)> {
    result
        .outcomes()
        .iter()
        .map(|o| (o.strategy.clone(), o.improvement, o.distortion))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn config() -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default(12, 21);
        c.replications = 3;
        c.threads = 2;
        c
    }

    fn data() -> Dataset {
        generate(&NetsimConfig::small(17)).dataset
    }

    #[test]
    fn figure3_counts_have_horizon_length() {
        let d = data();
        let f3 = figure3_series(&d, &config()).unwrap();
        assert_eq!(f3.missing.len(), 60);
        assert_eq!(f3.inconsistent.len(), 60);
        assert_eq!(f3.outliers.len(), 60);
        // With 3 replications × 12 series, counts are bounded by 36.
        assert!(f3.missing.iter().all(|&c| c <= 36));
        // Dirty samples must actually contain glitches.
        assert!(f3.missing.iter().sum::<usize>() > 0);
        assert!(f3.inconsistent.iter().sum::<usize>() > 0);
    }

    #[test]
    fn figure4_classifies_points() {
        let d = data();
        let pair = figure4_scatter(&d, &config(), &paper_strategy(1), 0, 10_000).unwrap();
        assert_eq!(pair.label, "winsorize and impute");
        assert!(!pair.points.is_empty());
        let has_imputed = pair
            .points
            .iter()
            .any(|p| p.kind == ScatterPointKind::ImputedFromMissing);
        let has_unchanged = pair
            .points
            .iter()
            .any(|p| p.kind == ScatterPointKind::Unchanged);
        assert!(has_imputed, "imputation must fill some missing values");
        assert!(has_unchanged, "clean cells must remain on the diagonal");
        // Imputed-from-missing points have no untreated coordinate.
        for p in &pair.points {
            if p.kind == ScatterPointKind::ImputedFromMissing {
                assert!(p.untreated.is_none() && p.treated.is_some());
            }
        }
    }

    #[test]
    fn figure4_max_points_caps_output() {
        let d = data();
        let pair = figure4_scatter(&d, &config(), &paper_strategy(1), 0, 50).unwrap();
        assert!(pair.points.len() <= 50 + 1);
    }

    #[test]
    fn figure5_produces_one_pair_per_strategy() {
        let d = data();
        let pairs = figure5_scatter(
            &d,
            &config(),
            &[paper_strategy(1), paper_strategy(2)],
            2,
            1000,
        )
        .unwrap();
        assert_eq!(pairs.len(), 2);
        assert_ne!(pairs[0].label, pairs[1].label);
    }

    #[test]
    fn figure6_points_mirror_outcomes() {
        let d = data();
        let strategies: Vec<_> = (1..=2).map(paper_strategy).collect();
        let result = Experiment::new(config()).run(&d, &strategies).unwrap();
        let points = figure6_points(&result);
        assert_eq!(points.len(), result.outcomes().len());
        assert!(points
            .iter()
            .all(|(_, imp, emd)| imp.is_finite() && emd.is_finite()));
    }
}
