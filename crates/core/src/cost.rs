//! The §5.2 / Figure 7 cost–benefit study, run as a first-class engine
//! workload.
//!
//! The paper's cost axis is the fraction of data cleaned: "We ranked each
//! time series according to its aggregated and normalized glitch score,
//! and cleaned the data from the highest glitch score, until a
//! pre-determined proportion of the data was cleaned." The sweep evaluates
//! a grid of `(replication, strategy, budget fraction)` points; every
//! point of one replication shares the same test pair, detector fit,
//! dirty annotations, and dirty-side EMD state, so the sweep runs on the
//! staged engine ([`crate::engine`]) with groups = replications and
//! `S × F` budget units per group:
//!
//! * [`crate::ReplicationArtifacts`] and the dirty sample's pooled rows +
//!   signature cache are built by the first unit of the replication and
//!   shared via the engine's `Arc` group slots — the dirty side of every
//!   distortion evaluation is sorted/binned once per replication instead
//!   of once per budget point;
//! * the dirtiest-first series ranking is computed once per replication
//!   (it depends only on the dirty annotations), and each fraction's
//!   selection mask is derived from that one ranking;
//! * the MVN imputation model is fitted at most once per `(replication,
//!   fraction)` and shared across model-imputing strategies at that
//!   budget. It cannot be shared *across* fractions: the model is fitted
//!   on exactly the masked series (`PROC MI` sees only the data handed to
//!   it), so the fit is a function of the budget;
//! * cleaning runs through the cell-patch path
//!   ([`sd_cleaning::CompositeStrategy::clean_patch_filtered`], handed
//!   the precomputed per-fraction mask directly), so only touched series
//!   are cloned and re-detected.
//!
//! [`cost_sweep`] is bit-identical to [`cost_sweep_reference`] — the
//! preserved replication-granular path (full clone, in-place cleaning,
//! full re-detection, materialized distortion) kept in-tree so the
//! equivalence stays enforceable ([`tests`] and `tests/end_to_end.rs`)
//! and the speedup stays measurable (the perf bin's `cost_sweep` /
//! `cost_sweep_ref` rows). In the default [`TransportMode::Cold`] the
//! sweep's exact EMD transports run on the thread-local cold
//! [`sd_emd::BatchTransport`] arena — allocation reuse without touching
//! the cold pivot sequence, so the bit-identity contract is unaffected.
//!
//! [`TransportMode::Warm`] re-shapes the engine units instead: one unit
//! per `(replication, strategy)`, walking the whole fraction ladder
//! sequentially on one warm arena checked out of the replication's
//! signature cache. Consecutive fractions share most of their cleaned
//! mass, so each exact solve warm-starts from the previous optimum's
//! basis ([`sd_emd::BatchTransport::solve_chained`] — the chain survives
//! ground-cost drift from shifting occupied cells). EMD objectives then
//! obey the warm-vs-cold contract `|warm − cold| ≤ 1e-9 · (1 + |cold|)`
//! instead of bit-identity; every other field of every [`CostPoint`]
//! (improvement, non-transport metrics, counters, reports) remains
//! bit-identical, and point order is unchanged.

use crate::engine::{
    run_staged, score_view, score_view_with, share_replication, SharedReplication, TaskExecutor,
};
use crate::{
    statistical_distortion, Experiment, ExperimentConfig, MetricScore, Result, ThreadPoolExecutor,
    TransportMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_cleaning::{
    CleaningStrategy, CompositeStrategy, MissingTreatment, ModelFit, PartialCleaner,
};
use sd_data::Dataset;
use sd_emd::BatchTransport;
use sd_glitch::{GlitchIndex, GlitchMatrix, GlitchReport};
use sd_stats::AttributeTransform;
use std::sync::OnceLock;

/// The paper's cost-axis ordering, shared by this sweep's fraction
/// prefixes and the budget optimizer's dirtiest-first baseline policy
/// ([`crate::SelectionPolicy::DirtiestFirst`]): a stable dirtiest-first
/// series ranking (normalized glitch score descending, index ascending) of
/// one replication's annotations.
pub(crate) fn dirtiest_ranking(index: &GlitchIndex, matrices: &[GlitchMatrix]) -> Vec<usize> {
    index.rank_dirtiest(matrices)
}

/// Configuration of the §5.2 / Figure 7 cost study.
#[derive(Debug, Clone)]
pub struct CostSweepConfig {
    /// The base experiment configuration.
    pub experiment: ExperimentConfig,
    /// Fractions of series to clean, e.g. `[0.0, 0.2, 0.5, 1.0]`.
    pub fractions: Vec<f64>,
    /// The strategies applied to the selected series (the paper's Figure 7
    /// uses Strategy 1 alone: winsorize + impute).
    pub strategies: Vec<CompositeStrategy>,
    /// How each point's exact EMD transports are solved (see
    /// [`TransportMode`]). [`TransportMode::Cold`] (the default) is
    /// bit-identical to [`cost_sweep_reference`];
    /// [`TransportMode::Warm`] chains each `(replication, strategy)`
    /// fraction ladder on one warm [`sd_emd::BatchTransport`] arena,
    /// holding EMD objectives to `1e-9 · (1 + |cold|)` of the cold
    /// values. Ignored by kernels that solve no transport.
    pub transport: TransportMode,
}

/// One `(fraction, strategy, replication)` point of Figure 7.
#[derive(Debug, Clone)]
pub struct CostPoint {
    /// Fraction of series cleaned (the cost proxy).
    pub fraction: f64,
    /// Replication number.
    pub replication: usize,
    /// Strategy display name.
    pub strategy: String,
    /// Index of the strategy in the submitted list.
    pub strategy_index: usize,
    /// Glitch improvement.
    pub improvement: f64,
    /// Statistical distortion under the primary metric
    /// (`experiment.metrics[0]`; equal to `distortions[0].value`).
    pub distortion: f64,
    /// Per-metric distortions, in `experiment.metrics` order.
    pub distortions: Vec<MetricScore>,
    /// Number of series actually cleaned.
    pub series_cleaned: usize,
    /// Treated glitch percentages.
    pub treated_report: GlitchReport,
}

/// RNG stream of one `(replication, strategy, fraction)` unit. The
/// `strategy` term vanishes for strategy index 0, so single-strategy
/// sweeps reproduce the historical derivation bit for bit.
fn unit_seed(seed: u64, replication: usize, strategy_index: usize, fraction_index: usize) -> u64 {
    seed ^ ((replication as u64) << 24)
        ^ ((strategy_index as u64) << 44)
        ^ ((fraction_index as u64) << 52)
}

/// Everything one replication's budget units share, behind the engine's
/// group slot.
struct SharedSweep {
    shared: SharedReplication,
    /// Per fraction: `(selected series, mask)`, derived from one
    /// dirtiest-first ranking of the replication's annotations.
    selections: Vec<(Vec<usize>, Vec<bool>)>,
    /// Per fraction: the lazily fitted mask-matched imputation model,
    /// shared across the model-imputing strategies at that budget.
    models: Vec<OnceLock<ModelFit>>,
}

/// Runs the cost sweep on the staged engine: for each replication, each
/// strategy, and each fraction, clean the dirtiest `fraction` of series
/// and score the result. Bit-identical to [`cost_sweep_reference`].
///
/// Points come back replication-major, then strategy, then fraction.
pub fn cost_sweep(data: &Dataset, config: &CostSweepConfig) -> Result<Vec<CostPoint>> {
    cost_sweep_with(
        data,
        config,
        &ThreadPoolExecutor::new(config.experiment.threads),
    )
}

/// Like [`cost_sweep`], on a caller-supplied executor.
pub fn cost_sweep_with<E: TaskExecutor>(
    data: &Dataset,
    config: &CostSweepConfig,
    executor: &E,
) -> Result<Vec<CostPoint>> {
    let experiment = Experiment::new(config.experiment.clone());
    let prepared = experiment.prepare(data)?;
    let transforms = prepared.transforms();
    let index = GlitchIndex::new(config.experiment.weights);
    let nf = config.fractions.len();

    let build = |r: usize| {
        let shared = share_replication(
            prepared.replication(r),
            transforms,
            &config.experiment.metrics,
        );
        // One dirtiest-first ranking per replication; every fraction's
        // selection is a prefix of it.
        let ranked = dirtiest_ranking(&index, &shared.artifacts.dirty_matrices);
        let selections = config
            .fractions
            .iter()
            .map(|&fraction| {
                let selected = PartialCleaner::new(index, fraction).select_from_ranked(&ranked);
                let mut mask = vec![false; shared.artifacts.dirty.num_series()];
                for &i in &selected {
                    mask[i] = true;
                }
                (selected, mask)
            })
            .collect();
        SharedSweep {
            shared,
            selections,
            models: (0..nf).map(|_| OnceLock::new()).collect(),
        }
    };

    match config.transport {
        // Cold: one engine unit per (strategy, fraction) point, each on
        // the thread-local cold arena — bit-identical to the reference.
        TransportMode::Cold => {
            let unit_results = run_staged(
                executor,
                config.experiment.replications,
                config.strategies.len() * nf,
                build,
                |sw, r, u| sweep_point(config, transforms, sw, r, u / nf, u % nf, None),
            );
            let mut out = Vec::with_capacity(unit_results.len());
            for point in unit_results {
                out.push(point?);
            }
            Ok(out)
        }
        // Warm: one engine unit per (replication, strategy) — the unit
        // walks its whole fraction ladder sequentially on one warm
        // [`sd_emd::BatchTransport`] checked out of the replication's
        // signature cache, so consecutive fractions chain their transport
        // bases. Each link is embedded into the arena's padded chain
        // frame (slot rosters per marginal, zero-mass padding — see
        // [`sd_emd::ChainFrame`]), which holds the instance shape fixed
        // while occupied cells drift; the inherited basis then survives
        // the ladder through
        // [`sd_emd::BatchTransport::solve_chained`]'s drifted-cost warm
        // path. Point order is unchanged: replication-major, then
        // strategy, then fraction.
        TransportMode::Warm => {
            let unit_results = run_staged(
                executor,
                config.experiment.replications,
                config.strategies.len(),
                build,
                |sw, r, si| -> Result<Vec<CostPoint>> {
                    sw.shared.cache.with_transport(|arena| {
                        let mut ladder = Vec::with_capacity(nf);
                        for fi in 0..nf {
                            ladder.push(sweep_point(
                                config,
                                transforms,
                                sw,
                                r,
                                si,
                                fi,
                                Some(arena),
                            )?);
                        }
                        Ok(ladder)
                    })
                },
            );
            let mut out = Vec::with_capacity(unit_results.len() * nf);
            for ladder in unit_results {
                out.extend(ladder?);
            }
            Ok(out)
        }
    }
}

/// Evaluates one `(replication, strategy, fraction)` point against its
/// replication's shared state. With a transport arena the EMD kernel
/// solves through the warm chain ([`crate::engine`]'s `score_view_with`);
/// without one it takes the bit-identical cold path. Everything else —
/// selection mask, model fit, RNG stream, cleaning — is identical in both
/// modes.
fn sweep_point(
    config: &CostSweepConfig,
    transforms: &[AttributeTransform],
    sw: &SharedSweep,
    r: usize,
    si: usize,
    fi: usize,
    transport: Option<&mut BatchTransport>,
) -> Result<CostPoint> {
    let strategy = &config.strategies[si];
    let (selected, mask) = &sw.selections[fi];
    let artifacts = &sw.shared.artifacts;
    let model = if strategy.missing_treatment() == MissingTreatment::ModelImpute {
        Some(sw.models[fi].get_or_init(|| {
            ModelFit::fit(
                &artifacts.dirty,
                &artifacts.dirty_matrices,
                &artifacts.context,
                Some(mask),
            )
        }))
    } else {
        None
    };
    let mut rng = StdRng::seed_from_u64(unit_seed(config.experiment.seed, r, si, fi));
    let (view, _) = strategy.clean_patch_filtered(
        &artifacts.dirty,
        &artifacts.dirty_matrices,
        &artifacts.context,
        &mut rng,
        Some(mask),
        model,
    );
    let (improvement, distortions, treated_report) = match transport {
        Some(arena) => score_view_with(
            &sw.shared,
            transforms,
            config.experiment.weights,
            &view,
            arena,
        )?,
        None => score_view(&sw.shared, transforms, config.experiment.weights, &view)?,
    };
    Ok(CostPoint {
        fraction: config.fractions[fi],
        replication: r,
        strategy: strategy.name(),
        strategy_index: si,
        improvement,
        distortion: distortions[0].value,
        distortions,
        series_cleaned: selected.len(),
        treated_report,
    })
}

/// The preserved replication-granular reference path: one task per
/// replication, serially evaluating every `(strategy, fraction)` point
/// with a full clone of the dirty sample, in-place partial cleaning, full
/// re-detection, and materialized distortion.
///
/// Kept in-tree as [`cost_sweep`]'s bit-identity oracle — it shares no
/// engine machinery beyond [`crate::ReplicationArtifacts`] itself — and as
/// the baseline the perf bin's `cost_sweep_ref` row measures.
pub fn cost_sweep_reference(data: &Dataset, config: &CostSweepConfig) -> Result<Vec<CostPoint>> {
    let experiment = Experiment::new(config.experiment.clone());
    let prepared = experiment.prepare(data)?;
    let index = GlitchIndex::new(config.experiment.weights);

    let per_replication: Vec<Result<Vec<CostPoint>>> = crate::parallel_map(
        config.experiment.replications,
        config.experiment.threads,
        |i| -> Result<Vec<CostPoint>> {
            let artifacts = prepared.replication(i);
            let mut points = Vec::with_capacity(config.strategies.len() * config.fractions.len());
            for (si, strategy) in config.strategies.iter().enumerate() {
                for (fi, &fraction) in config.fractions.iter().enumerate() {
                    let cleaner = PartialCleaner::new(index, fraction);
                    let mut cleaned = artifacts.dirty.clone();
                    let mut rng =
                        StdRng::seed_from_u64(unit_seed(config.experiment.seed, i, si, fi));
                    let partial = cleaner.clean(
                        &mut cleaned,
                        &artifacts.dirty_matrices,
                        strategy,
                        &artifacts.context,
                        &mut rng,
                    );
                    let treated_matrices = artifacts.redetect(&cleaned);
                    let improvement =
                        index.improvement(&artifacts.dirty_matrices, &treated_matrices);
                    // Working-space distortion, matching
                    // `PreparedExperiment::evaluate` — one materialized
                    // evaluation per requested metric.
                    let mut distortions = Vec::with_capacity(config.experiment.metrics.len());
                    for metric in &config.experiment.metrics {
                        distortions.push(MetricScore {
                            metric: metric.name(),
                            value: statistical_distortion(
                                &artifacts.dirty,
                                &cleaned,
                                prepared.transforms(),
                                *metric,
                            )?,
                        });
                    }
                    points.push(CostPoint {
                        fraction,
                        replication: i,
                        strategy: strategy.name(),
                        strategy_index: si,
                        improvement,
                        distortion: distortions[0].value,
                        distortions,
                        series_cleaned: partial.cleaned_indices.len(),
                        treated_report: GlitchReport::from_matrices(&treated_matrices),
                    });
                }
            }
            Ok(points)
        },
    );

    let mut out = Vec::new();
    for r in per_replication {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialExecutor;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn sweep_config() -> CostSweepConfig {
        let mut experiment = ExperimentConfig::paper_default(15, 5);
        experiment.replications = 3;
        experiment.threads = 2;
        CostSweepConfig {
            experiment,
            fractions: vec![0.0, 0.5, 1.0],
            strategies: vec![paper_strategy(1)],
            transport: TransportMode::Cold,
        }
    }

    /// Asserts a warm sweep against its cold twin: EMD within the
    /// warm-vs-cold objective contract, everything else bit-identical.
    fn assert_warm_matches_cold(cold: &[CostPoint], warm: &[CostPoint]) {
        assert_eq!(cold.len(), warm.len());
        for (a, b) in cold.iter().zip(warm) {
            let at = format!(
                "r={} s={} f={}",
                a.replication, a.strategy_index, a.fraction
            );
            assert_eq!(a.fraction, b.fraction, "{at}: fraction");
            assert_eq!(a.replication, b.replication, "{at}: replication");
            assert_eq!(a.strategy_index, b.strategy_index, "{at}: strategy");
            assert_eq!(a.series_cleaned, b.series_cleaned, "{at}: cleaned");
            assert_eq!(
                a.improvement.to_bits(),
                b.improvement.to_bits(),
                "{at}: improvement must not depend on the transport mode"
            );
            assert_eq!(a.treated_report, b.treated_report, "{at}: report");
            for (x, y) in a.distortions.iter().zip(&b.distortions) {
                assert_eq!(x.metric, y.metric, "{at}: metric order");
                if x.metric == "emd" {
                    assert!(
                        (x.value - y.value).abs() <= 1e-9 * (1.0 + x.value.abs()),
                        "{at}: emd {} vs warm {} outside contract",
                        x.value,
                        y.value
                    );
                } else {
                    assert_eq!(
                        x.value.to_bits(),
                        y.value.to_bits(),
                        "{at}: {} is transport-free and must stay bit-identical",
                        x.metric
                    );
                }
            }
        }
    }

    /// A dense fraction ladder at a transport-heavy configuration (high
    /// bins, EMD-only metric set): the padded chain frame re-anchors
    /// slots and warm-starts across drifted costs link after link, and
    /// every point must still satisfy the warm-vs-cold contract.
    #[test]
    fn warm_dense_ladder_holds_contract() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let steps = 12;
        let mut experiment = ExperimentConfig::paper_default(200, 5);
        experiment.replications = 1;
        experiment.threads = 1;
        experiment.metrics = vec![crate::DistortionMetric::Emd {
            bins: 10,
            scaling: sd_emd::DistanceScaling::Normalized,
        }];
        let mut config = CostSweepConfig {
            experiment,
            fractions: (0..=steps)
                .map(|i| f64::from(i) / f64::from(steps))
                .collect(),
            strategies: vec![paper_strategy(1), paper_strategy(2)],
            transport: TransportMode::Cold,
        };
        let cold = cost_sweep(&data, &config).unwrap();
        config.transport = TransportMode::Warm;
        let warm = cost_sweep(&data, &config).unwrap();
        assert_warm_matches_cold(&cold, &warm);
    }

    #[test]
    fn sweep_produces_all_points() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        assert_eq!(points.len(), 9); // 3 replications × 1 strategy × 3 fractions
    }

    #[test]
    fn zero_fraction_is_free_and_undistorted() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        for p in points.iter().filter(|p| p.fraction == 0.0) {
            assert_eq!(p.series_cleaned, 0);
            assert_eq!(p.improvement, 0.0);
            assert!(p.distortion.abs() < 1e-9);
        }
    }

    #[test]
    fn improvement_grows_with_fraction() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        // Compare per-replication so sampling noise cancels.
        for rep in 0..3 {
            let by_frac: Vec<&CostPoint> = points.iter().filter(|p| p.replication == rep).collect();
            let f0 = by_frac.iter().find(|p| p.fraction == 0.0).unwrap();
            let f50 = by_frac.iter().find(|p| p.fraction == 0.5).unwrap();
            let f100 = by_frac.iter().find(|p| p.fraction == 1.0).unwrap();
            assert!(f50.improvement >= f0.improvement);
            assert!(f100.improvement >= f50.improvement * 0.99);
            assert!(f100.series_cleaned > f50.series_cleaned);
        }
    }

    #[test]
    fn engine_sweep_is_bit_identical_to_reference() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        // Two model-imputing strategies (exercising the shared per-budget
        // ModelFit) plus a mean-replace one, across executors.
        let mut config = sweep_config();
        config.strategies = vec![paper_strategy(1), paper_strategy(2), paper_strategy(5)];
        let reference = cost_sweep_reference(&data, &config).unwrap();
        let engine = cost_sweep(&data, &config).unwrap();
        let serial = cost_sweep_with(&data, &config, &SerialExecutor).unwrap();
        assert_eq!(reference.len(), engine.len());
        assert_eq!(reference.len(), serial.len());
        for (a, b) in reference
            .iter()
            .zip(&engine)
            .chain(reference.iter().zip(&serial))
        {
            assert_eq!(a.fraction, b.fraction);
            assert_eq!(a.replication, b.replication);
            assert_eq!(a.strategy_index, b.strategy_index);
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.series_cleaned, b.series_cleaned);
            assert_eq!(
                a.improvement.to_bits(),
                b.improvement.to_bits(),
                "improvement diverged at r={} s={} f={}",
                a.replication,
                a.strategy_index,
                a.fraction
            );
            assert_eq!(
                a.distortion.to_bits(),
                b.distortion.to_bits(),
                "distortion diverged at r={} s={} f={}",
                a.replication,
                a.strategy_index,
                a.fraction
            );
            assert_eq!(a.treated_report, b.treated_report);
        }
    }

    #[test]
    fn multi_metric_sweep_is_bit_identical_to_reference() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let mut config = sweep_config();
        config.experiment.metrics = crate::DistortionMetric::full_suite();
        let reference = cost_sweep_reference(&data, &config).unwrap();
        let engine = cost_sweep(&data, &config).unwrap();
        assert_eq!(reference.len(), engine.len());
        for (a, b) in reference.iter().zip(&engine) {
            assert_eq!(a.distortions.len(), 6);
            assert_eq!(b.distortions.len(), 6);
            assert_eq!(a.distortion.to_bits(), a.distortions[0].value.to_bits());
            for (x, y) in a.distortions.iter().zip(&b.distortions) {
                assert_eq!(x.metric, y.metric);
                assert_eq!(
                    x.value.to_bits(),
                    y.value.to_bits(),
                    "{} diverged at r={} f={}",
                    x.metric,
                    a.replication,
                    a.fraction
                );
            }
        }
    }

    #[test]
    fn warm_sweep_honors_the_objective_contract() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        // A denser ladder plus two strategies, so warm chains actually
        // link consecutive fractions of each strategy.
        let mut config = sweep_config();
        config.fractions = vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        config.strategies = vec![paper_strategy(1), paper_strategy(5)];
        let cold = cost_sweep(&data, &config).unwrap();
        config.transport = TransportMode::Warm;
        let warm = cost_sweep(&data, &config).unwrap();
        let warm_serial = cost_sweep_with(&data, &config, &SerialExecutor).unwrap();
        assert_warm_matches_cold(&cold, &warm);
        assert_warm_matches_cold(&cold, &warm_serial);
        // Warm mode must itself be deterministic: each ladder's chain is
        // reset at checkout, so scheduling cannot leak between units.
        let warm_again = cost_sweep(&data, &config).unwrap();
        for (a, b) in warm.iter().zip(&warm_again) {
            assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
        }
    }

    #[test]
    fn warm_sweep_is_bit_identical_on_transport_free_metrics() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let mut config = sweep_config();
        config.experiment.metrics = crate::DistortionMetric::full_suite();
        let cold = cost_sweep(&data, &config).unwrap();
        config.transport = TransportMode::Warm;
        let warm = cost_sweep(&data, &config).unwrap();
        assert_warm_matches_cold(&cold, &warm);
    }

    #[test]
    fn multi_strategy_sweep_orders_points_strategy_major() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let mut config = sweep_config();
        config.strategies = vec![paper_strategy(5), paper_strategy(3)];
        let points = cost_sweep(&data, &config).unwrap();
        assert_eq!(points.len(), 3 * 2 * 3);
        for (k, p) in points.iter().enumerate() {
            assert_eq!(p.replication, k / 6);
            assert_eq!(p.strategy_index, (k / 3) % 2);
        }
    }
}
