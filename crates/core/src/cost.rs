use crate::{statistical_distortion, Experiment, ExperimentConfig, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_cleaning::{CompositeStrategy, PartialCleaner};
use sd_data::Dataset;
use sd_glitch::{GlitchIndex, GlitchReport};

/// Configuration of the §5.2 / Figure 7 cost study.
#[derive(Debug, Clone)]
pub struct CostSweepConfig {
    /// The base experiment configuration.
    pub experiment: ExperimentConfig,
    /// Fractions of series to clean, e.g. `[0.0, 0.2, 0.5, 1.0]`.
    pub fractions: Vec<f64>,
    /// The strategy applied to the selected series (the paper uses
    /// Strategy 1: winsorize + impute).
    pub strategy: CompositeStrategy,
}

/// One `(fraction, replication)` point of Figure 7.
#[derive(Debug, Clone)]
pub struct CostPoint {
    /// Fraction of series cleaned (the cost proxy).
    pub fraction: f64,
    /// Replication number.
    pub replication: usize,
    /// Glitch improvement.
    pub improvement: f64,
    /// Statistical distortion.
    pub distortion: f64,
    /// Number of series actually cleaned.
    pub series_cleaned: usize,
    /// Treated glitch percentages.
    pub treated_report: GlitchReport,
}

/// Runs the cost sweep: for each replication and each fraction, clean the
/// dirtiest `fraction` of series and score the result.
///
/// "We ranked each time series according to its aggregated and normalized
/// glitch score, and cleaned the data from the highest glitch score, until
/// a pre-determined proportion of the data was cleaned."
pub fn cost_sweep(data: &Dataset, config: &CostSweepConfig) -> Result<Vec<CostPoint>> {
    let experiment = Experiment::new(config.experiment.clone());
    let prepared = experiment.prepare(data)?;
    let index = GlitchIndex::new(config.experiment.weights);

    let per_replication: Vec<Result<Vec<CostPoint>>> = crate::parallel_map(
        config.experiment.replications,
        config.experiment.threads,
        |i| -> Result<Vec<CostPoint>> {
            let artifacts = prepared.replication(i);
            let mut points = Vec::with_capacity(config.fractions.len());
            for (fi, &fraction) in config.fractions.iter().enumerate() {
                let cleaner = PartialCleaner::new(index, fraction);
                let mut cleaned = artifacts.dirty.clone();
                let mut rng = StdRng::seed_from_u64(
                    config.experiment.seed ^ ((i as u64) << 24) ^ ((fi as u64) << 52),
                );
                let partial = cleaner.clean(
                    &mut cleaned,
                    &artifacts.dirty_matrices,
                    &config.strategy,
                    &artifacts.context,
                    &mut rng,
                );
                let treated_matrices = artifacts.redetect(&cleaned);
                let improvement = index.improvement(&artifacts.dirty_matrices, &treated_matrices);
                // Working-space distortion, matching
                // `PreparedExperiment::evaluate`.
                let distortion = statistical_distortion(
                    &artifacts.dirty,
                    &cleaned,
                    prepared.transforms(),
                    config.experiment.metric,
                )?;
                points.push(CostPoint {
                    fraction,
                    replication: i,
                    improvement,
                    distortion,
                    series_cleaned: partial.cleaned_indices.len(),
                    treated_report: GlitchReport::from_matrices(&treated_matrices),
                });
            }
            Ok(points)
        },
    );

    let mut out = Vec::new();
    for r in per_replication {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn sweep_config() -> CostSweepConfig {
        let mut experiment = ExperimentConfig::paper_default(15, 5);
        experiment.replications = 3;
        experiment.threads = 2;
        CostSweepConfig {
            experiment,
            fractions: vec![0.0, 0.5, 1.0],
            strategy: paper_strategy(1),
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        assert_eq!(points.len(), 9); // 3 replications × 3 fractions
    }

    #[test]
    fn zero_fraction_is_free_and_undistorted() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        for p in points.iter().filter(|p| p.fraction == 0.0) {
            assert_eq!(p.series_cleaned, 0);
            assert_eq!(p.improvement, 0.0);
            assert!(p.distortion.abs() < 1e-9);
        }
    }

    #[test]
    fn improvement_grows_with_fraction() {
        let data = generate(&NetsimConfig::small(9)).dataset;
        let points = cost_sweep(&data, &sweep_config()).unwrap();
        // Compare per-replication so sampling noise cancels.
        for rep in 0..3 {
            let by_frac: Vec<&CostPoint> = points.iter().filter(|p| p.replication == rep).collect();
            let f0 = by_frac.iter().find(|p| p.fraction == 0.0).unwrap();
            let f50 = by_frac.iter().find(|p| p.fraction == 0.5).unwrap();
            let f100 = by_frac.iter().find(|p| p.fraction == 1.0).unwrap();
            assert!(f50.improvement >= f0.improvement);
            assert!(f100.improvement >= f50.improvement * 0.99);
            assert!(f100.series_cleaned > f50.series_cleaned);
        }
    }
}
