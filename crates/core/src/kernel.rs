//! The pluggable distortion-kernel subsystem.
//!
//! Definition 1 leaves the distance `d(D, D_C)` open — the paper names the
//! Earth Mover's, Kullback–Leibler and Mahalanobis distances as candidates.
//! This module turns that openness into an engine contract: a
//! [`DistortionKernel`] is a distance that knows how to score the engine's
//! sparse cell edits *incrementally* against dirty-side state prepared once
//! per replication, instead of materializing the cleaned cloud for every
//! `(replication, strategy)` unit.
//!
//! # Lifecycle
//!
//! 1. The engine's group-slot build pools the dirty sample once into a
//!    [`SignatureCache`] (sorted columns + memoized grid quantizations).
//! 2. Each requested kernel's [`DistortionKernel::prepare`] derives its own
//!    dirty-side state from that cache (a fitted Mahalanobis metric and its
//!    pairwise sum tree, nothing extra for the histogram kernels — the
//!    cache's per-grid memo *is* their prepared state).
//! 3. Every unit cleans once, expresses the cleaned cloud as a
//!    [`PatchedCloud`] (sparse row edits), and asks every prepared kernel
//!    for a score via [`PreparedKernel::score_patch`].
//!
//! # Bit-identity contract
//!
//! For every kernel, `score_patch` on a [`PatchedCloud`] must be
//! **bit-identical** to [`DistortionKernel::score_rows`] on the
//! materialized cloud (enforced by proptests in `tests/properties.rs`).
//! The kernels achieve this without re-deriving full state:
//!
//! * **EMD** — the PR-3 pipeline, unchanged: derived sorted columns,
//!   rank-selected cover quantiles, incrementally edited dense histogram.
//! * **KL** — the same shared-grid machinery, min–max cover; the dirty
//!   histogram comes from the cache's memo and the cleaned histogram is the
//!   dirty one with only the edited rows re-binned. Masses are exact
//!   integer counts, so the incremental edit is bit-precise.
//! * **Mahalanobis** — the dirty-side fit (mean + factored covariance) is
//!   prepared once; the cleaned mean is maintained by a fixed-shape
//!   pairwise [`SumTree`], whose sparse root re-summation is bit-identical
//!   to rebuilding it (a naive running sum could not be updated without
//!   changing its rounding).
//! * **KS / Cramér–von Mises** — per-axis two-sample statistics over the
//!   cached (dirty) and derived (cleaned) sorted columns; multiset column
//!   edits under `total_cmp` are bit-precise.
//! * **Energy distance** — scored on the same scaled grid signatures as
//!   EMD (cached dirty side, incrementally re-binned cleaned side).
//!
//! # Smoothing contract for histogram-ratio kernels
//!
//! Kernels that take *ratios* of aligned histogram masses (today: KL) share
//! one smoothing rule for empty cells, [`KL_EPSILON`]: every aligned cell —
//! occupied or not — receives `KL_EPSILON` additional mass and the
//! histogram is renormalized (see [`sd_stats::kl_divergence`]). This keeps
//! the divergence finite when cleaning moves mass into cells the dirty
//! histogram leaves empty (the common case: imputation filling a gap), and
//! because both paths smooth identically, the incremental and materialized
//! scores stay bit-identical. Mass-transport kernels (EMD, energy) take no
//! ratios and need no smoothing.

use crate::{FrameworkError, Result};
use sd_emd::{
    ground_distance_matrix, quantize, scaled_signature, BatchTransport, CloudQuant,
    DistanceScaling, GridEmd, PatchedCloud, Signature, SignatureCache,
};
use sd_linalg::MahalanobisMetric;
use sd_stats::{
    cvm_statistic_sorted, kl_divergence, ks_statistic_sorted, sorted_union_columns, GridSpec,
    SumTree,
};
use std::collections::BTreeMap;

/// Epsilon mass granted to every aligned cell (occupied or empty) before a
/// histogram-ratio kernel takes ratios; the histogram is renormalized
/// afterwards. One constant shared by every smoothing site so all
/// histogram-backed kernels obey a single contract (see the module docs).
pub const KL_EPSILON: f64 = 1e-9;

/// Occupied-cell-product budget above which the EMD kernel falls back from
/// the exact transportation simplex to Sinkhorn (which preserves the
/// strategy ordering). Sized so instances up to roughly 380×380 occupied
/// cells stay exact: at those shapes one simplex solve is still cheaper
/// than a converged Sinkhorn run, and keeping high-bins sweeps on the
/// exact path lets the warm-chain arena reuse bases across a fraction
/// ladder (Sinkhorn has no basis to chain).
const MAX_EXACT_CELLS: usize = 150_000;

/// One metric's score of a `(replication, strategy)` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScore {
    /// Kernel name (`"emd"`, `"kl"`, `"mahalanobis"`, `"ks"`, `"cvm"`,
    /// `"energy"`), as recorded in JSON artifacts.
    pub metric: &'static str,
    /// The distortion value under that kernel.
    pub value: f64,
}

/// A distortion distance behind Definition 1, pluggable into the engine.
///
/// Implementations must uphold the bit-identity contract described in the
/// [module docs](self): [`PreparedKernel::score_patch`] equals
/// [`DistortionKernel::score_rows`] on the materialized cloud, bit for bit.
pub trait DistortionKernel: Send + Sync + std::fmt::Debug {
    /// Short machine-readable name, recorded per score in results and JSON
    /// artifacts.
    fn name(&self) -> &'static str;

    /// Distance between two materialized working-space clouds — the
    /// reference path (and the oracle `score_patch` is tested against).
    fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64>;

    /// Builds this kernel's dirty-side prepared state from the
    /// replication's signature cache. Called once per engine group;
    /// expensive derivations (model fits, sum trees) belong here. Failures
    /// that depend only on the dirty side are deferred into the returned
    /// object and surface on the first `score_patch` call, mirroring where
    /// the materialized path would fail.
    fn prepare(&self, cache: &SignatureCache) -> Box<dyn PreparedKernel>;
}

/// A kernel's dirty-side state, prepared once per replication.
pub trait PreparedKernel: Send + Sync {
    /// Scores the cleaned cloud given as sparse row edits against the
    /// cache this state was prepared from. Bit-identical to the kernel's
    /// [`DistortionKernel::score_rows`] on `patched.materialize()`.
    fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64>;

    /// Like [`PreparedKernel::score_patch`] but with a caller-owned
    /// [`BatchTransport`] arena — the hand-off API for *chained units*
    /// (the cost sweep's fraction ladder), where one arena carries a warm
    /// basis across a sequence of closely related cleaned clouds. Kernels
    /// that solve no transport ignore the arena and delegate to
    /// `score_patch`; the EMD kernel routes its exact solve through
    /// [`sd_emd::BatchTransport::solve_chained`], so its value obeys the
    /// warm-vs-cold objective contract (`≤ 1e-9 · (1 + |cold|)`) instead
    /// of `score_patch`'s bit-identity guarantee.
    fn score_patch_with(
        &self,
        patched: &PatchedCloud<'_>,
        _transport: &mut BatchTransport,
    ) -> Result<f64> {
        self.score_patch(patched)
    }

    /// Convenience wrapper for callers that hold raw `(row, values)` edits
    /// instead of a built [`PatchedCloud`] — the budget optimizer's
    /// marginal-score hook: one candidate purchase is one edit set, and
    /// its marginal distortion is this score against the unchanged cache.
    fn score_edits(
        &self,
        cache: &SignatureCache,
        row_edits: Vec<(usize, Vec<f64>)>,
    ) -> Result<f64> {
        self.score_patch(&PatchedCloud::new(cache, row_edits))
    }

    /// Like [`PreparedKernel::score_edits`] but with a caller-owned
    /// [`BatchTransport`] arena, so a batch of related scores (the budget
    /// optimizer's candidate sweep) can reuse one basis tree and
    /// warm-start consecutive transports. Kernels that do not solve a
    /// transport ignore the arena and delegate to `score_edits`; the EMD
    /// kernel routes its exact solve through it.
    fn score_edits_with(
        &self,
        cache: &SignatureCache,
        row_edits: Vec<(usize, Vec<f64>)>,
        _transport: &mut BatchTransport,
    ) -> Result<f64> {
        self.score_edits(cache, row_edits)
    }
}

fn distortion_err(e: impl std::fmt::Display) -> FrameworkError {
    FrameworkError::Distortion(e.to_string())
}

// ---------------------------------------------------------------------------
// EMD
// ---------------------------------------------------------------------------

/// The paper's choice (§3.5): EMD between grid-quantized tuple clouds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EmdKernel {
    pub bins: usize,
    pub scaling: DistanceScaling,
}

impl EmdKernel {
    fn pipeline(&self) -> GridEmd {
        GridEmd::new(self.bins)
            .with_scaling(self.scaling)
            .with_max_exact_cells(MAX_EXACT_CELLS)
    }
}

impl DistortionKernel for EmdKernel {
    fn name(&self) -> &'static str {
        "emd"
    }

    fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64> {
        Ok(self
            .pipeline()
            .distance(rows_d, rows_c)
            .map_err(distortion_err)?
            .emd)
    }

    fn prepare(&self, _cache: &SignatureCache) -> Box<dyn PreparedKernel> {
        // The signature cache itself is the prepared state: sorted columns
        // and per-grid quantizations are memoized inside it.
        Box::new(*self)
    }
}

impl PreparedKernel for EmdKernel {
    fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64> {
        Ok(self
            .pipeline()
            .distance_patched(patched)
            .map_err(distortion_err)?
            .emd)
    }

    fn score_patch_with(
        &self,
        patched: &PatchedCloud<'_>,
        transport: &mut BatchTransport,
    ) -> Result<f64> {
        Ok(self
            .pipeline()
            .distance_patched_with(patched, transport)
            .map_err(distortion_err)?
            .emd)
    }

    fn score_edits_with(
        &self,
        cache: &SignatureCache,
        row_edits: Vec<(usize, Vec<f64>)>,
        transport: &mut BatchTransport,
    ) -> Result<f64> {
        self.score_patch_with(&PatchedCloud::new(cache, row_edits), transport)
    }
}

// ---------------------------------------------------------------------------
// KL divergence
// ---------------------------------------------------------------------------

/// `KL(dirty ‖ cleaned)` over a shared min–max grid, with [`KL_EPSILON`]
/// smoothing for empty cells.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KlKernel {
    pub bins: usize,
}

impl DistortionKernel for KlKernel {
    fn name(&self) -> &'static str {
        "kl"
    }

    fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64> {
        let spec = GridSpec::covering(rows_d, rows_c, self.bins)
            .ok_or_else(|| FrameworkError::Distortion("empty data".into()))?;
        let qd = quantize(&spec, rows_d);
        let qc = quantize(&spec, rows_c);
        kl_from_quants(&qd, &qc)
    }

    fn prepare(&self, _cache: &SignatureCache) -> Box<dyn PreparedKernel> {
        Box::new(*self)
    }
}

impl PreparedKernel for KlKernel {
    fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64> {
        let cache = patched.cache();
        if cache.rows().is_empty() {
            return Err(FrameworkError::Distortion("empty data".into()));
        }
        // Min–max cover over both clouds, read from the cached + derived
        // sorted columns by rank selection — bit-identical to
        // `GridSpec::covering` on the materialized union.
        let pairs: Vec<(&[f64], &[f64])> = cache
            .sorted_columns()
            .iter()
            .zip(patched.sorted_columns())
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        let spec = GridSpec::from_sorted_column_pairs_quantiles(&pairs, self.bins, 0.0, 1.0);
        let scale = vec![1.0; spec.dim()];
        let side = match cache.side_for(&spec, &scale) {
            Ok(side) => side,
            Err(_) => {
                return Err(FrameworkError::Distortion(
                    "no complete records to compare".into(),
                ))
            }
        };
        let qc = patched.quantize_on(&spec, &side.quant);
        if side.quant.counts.is_none() || qc.counts.is_none() {
            // Grid exceeds the dense budget: no incremental histogram to
            // edit; take the materialized reference path.
            return self.score_rows(cache.rows(), &patched.materialize());
        }
        kl_from_quants(&side.quant, &qc)
    }
}

/// KL between two quantizations of the same grid, aligned over the union
/// of occupied cells in ascending cell order. Works off dense counts when
/// both sides have them (the incremental path) and the sparse pair lists
/// otherwise; both alignments enumerate identical cells in identical order
/// with identical masses, so the result is bit-identical either way.
fn kl_from_quants(qd: &CloudQuant, qc: &CloudQuant) -> Result<f64> {
    if qd.total == 0.0 || qc.total == 0.0 {
        return Err(FrameworkError::Distortion(
            "no complete records to compare".into(),
        ));
    }
    let (mut p, mut q) = (Vec::new(), Vec::new());
    match (&qd.counts, &qc.counts) {
        (Some(cd), Some(cc)) => {
            for (d, c) in cd.iter().zip(cc) {
                if *d > 0.0 || *c > 0.0 {
                    p.push(d / qd.total);
                    q.push(c / qc.total);
                }
            }
        }
        _ => {
            // Sparse alignment (grids beyond the dense budget): union the
            // two pair lists by cell centre. Centres come from the same
            // `GridSpec::center_of`, so they are exact keys; `total_cmp`
            // order over centres equals ascending cell order.
            let mut union: BTreeMap<Vec<u64>, (f64, f64)> = BTreeMap::new();
            let key = |centre: &[f64]| -> Vec<u64> { centre.iter().map(|x| x.to_bits()).collect() };
            for (centre, mass) in &qd.pairs {
                union.entry(key(centre)).or_insert((0.0, 0.0)).0 = *mass;
            }
            for (centre, mass) in &qc.pairs {
                union.entry(key(centre)).or_insert((0.0, 0.0)).1 = *mass;
            }
            for &(a, b) in union.values() {
                p.push(a);
                q.push(b);
            }
        }
    }
    Ok(kl_divergence(&p, &q, KL_EPSILON))
}

// ---------------------------------------------------------------------------
// Mahalanobis
// ---------------------------------------------------------------------------

/// Mahalanobis distance between mean tuples under the dirty covariance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MahalanobisKernel;

fn is_complete(row: &[f64]) -> bool {
    row.iter().all(|x| x.is_finite())
}

/// Complete-row mean via a fixed-shape pairwise [`SumTree`] — the shared
/// summation both Mahalanobis paths use, so the incremental path can
/// re-sum sparsely without changing bits.
fn complete_mean_tree(rows: &[Vec<f64>], dims: usize) -> (SumTree, usize) {
    let count = rows.iter().filter(|r| is_complete(r)).count();
    let tree = SumTree::build(dims, rows.len(), |j, buf| {
        if is_complete(&rows[j]) {
            buf.copy_from_slice(&rows[j]);
        }
    });
    (tree, count)
}

const TOO_FEW: &str = "too few complete records";

impl DistortionKernel for MahalanobisKernel {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64> {
        let cd: Vec<Vec<f64>> = rows_d.iter().filter(|r| is_complete(r)).cloned().collect();
        if cd.len() < 3 {
            return Err(FrameworkError::Distortion(TOO_FEW.into()));
        }
        let dims = cd[0].len();
        let (tree, count) = complete_mean_tree(rows_c, dims);
        if count < 3 {
            return Err(FrameworkError::Distortion(TOO_FEW.into()));
        }
        let metric = MahalanobisMetric::fit(&cd).map_err(distortion_err)?;
        let mean_c: Vec<f64> = tree.root().iter().map(|s| s / count as f64).collect();
        metric.distance(&mean_c).map_err(distortion_err)
    }

    fn prepare(&self, cache: &SignatureCache) -> Box<dyn PreparedKernel> {
        let build = || -> std::result::Result<MahalanobisPrepared, String> {
            let cd: Vec<Vec<f64>> = cache
                .rows()
                .iter()
                .filter(|r| is_complete(r))
                .cloned()
                .collect();
            if cd.len() < 3 {
                return Err(TOO_FEW.into());
            }
            let dims = cd[0].len();
            let metric = MahalanobisMetric::fit(&cd).map_err(|e| e.to_string())?;
            let (tree, count) = complete_mean_tree(cache.rows(), dims);
            Ok(MahalanobisPrepared {
                metric,
                tree,
                dirty_complete: count,
            })
        };
        match build() {
            Ok(prepared) => Box::new(prepared),
            Err(message) => Box::new(FailedPrepare { message }),
        }
    }
}

/// Prepared dirty side of the Mahalanobis kernel: the fitted metric (the
/// mean and factored covariance of the dirty complete rows) and the dirty
/// rows' pairwise sum tree, whose root is re-summed sparsely per unit.
struct MahalanobisPrepared {
    metric: MahalanobisMetric,
    tree: SumTree,
    dirty_complete: usize,
}

impl PreparedKernel for MahalanobisPrepared {
    fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64> {
        let rows = patched.cache().rows();
        let dims = self.tree.dims();
        let mut count = self.dirty_complete as i64;
        let mut leaf_edits = Vec::with_capacity(patched.num_edits());
        for (row, new_row) in patched.edits() {
            if is_complete(&rows[*row]) {
                count -= 1;
            }
            let leaf = if is_complete(new_row) {
                count += 1;
                new_row.clone()
            } else {
                vec![0.0; dims]
            };
            leaf_edits.push((*row, leaf));
        }
        if count < 3 {
            return Err(FrameworkError::Distortion(TOO_FEW.into()));
        }
        let root = self.tree.root_with_edits(&leaf_edits);
        let mean_c: Vec<f64> = root.iter().map(|s| s / count as f64).collect();
        self.metric.distance(&mean_c).map_err(distortion_err)
    }
}

/// A prepare-time failure, deferred so it surfaces where the materialized
/// path would fail (at scoring).
struct FailedPrepare {
    message: String,
}

impl PreparedKernel for FailedPrepare {
    fn score_patch(&self, _patched: &PatchedCloud<'_>) -> Result<f64> {
        Err(FrameworkError::Distortion(self.message.clone()))
    }
}

// ---------------------------------------------------------------------------
// Kolmogorov–Smirnov / Cramér–von Mises
// ---------------------------------------------------------------------------

/// Worst-axis two-sample statistic over per-axis sorted marginals: the
/// shared shape of the KS and Cramér–von Mises kernels.
fn marginal_statistic(
    cols_d: &[Vec<f64>],
    cols_c: &[Vec<f64>],
    stat: impl Fn(&[f64], &[f64]) -> f64,
) -> Result<f64> {
    let mut any = false;
    let mut worst = 0.0f64;
    for (a, b) in cols_d.iter().zip(cols_c) {
        if a.is_empty() && b.is_empty() {
            continue;
        }
        any = true;
        worst = worst.max(stat(a, b));
    }
    if !any {
        return Err(FrameworkError::Distortion(
            "no present values to compare".into(),
        ));
    }
    Ok(worst)
}

macro_rules! marginal_kernel {
    ($kernel:ident, $name:literal, $stat:path, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy)]
        pub(crate) struct $kernel;

        impl DistortionKernel for $kernel {
            fn name(&self) -> &'static str {
                $name
            }

            fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64> {
                let cols_d = sorted_union_columns(rows_d, &[])
                    .ok_or_else(|| FrameworkError::Distortion("empty data".into()))?;
                let cols_c = sorted_union_columns(rows_c, &[])
                    .ok_or_else(|| FrameworkError::Distortion("empty data".into()))?;
                marginal_statistic(&cols_d, &cols_c, |a, b| $stat(a, b))
            }

            fn prepare(&self, _cache: &SignatureCache) -> Box<dyn PreparedKernel> {
                Box::new(*self)
            }
        }

        impl PreparedKernel for $kernel {
            fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64> {
                let cache = patched.cache();
                if cache.rows().is_empty() {
                    return Err(FrameworkError::Distortion("empty data".into()));
                }
                marginal_statistic(cache.sorted_columns(), patched.sorted_columns(), |a, b| {
                    $stat(a, b)
                })
            }
        }
    };
}

marginal_kernel!(
    KsKernel,
    "ks",
    ks_statistic_sorted,
    "Worst-axis two-sample Kolmogorov–Smirnov statistic over the per-axis \
     marginals (dirty vs cleaned), computed on the cached/derived sorted \
     columns."
);

marginal_kernel!(
    CvmKernel,
    "cvm",
    cvm_statistic_sorted,
    "Worst-axis two-sample Cramér–von Mises statistic over the per-axis \
     marginals (dirty vs cleaned), computed on the cached/derived sorted \
     columns."
);

// ---------------------------------------------------------------------------
// Energy distance
// ---------------------------------------------------------------------------

/// Energy distance between the grid-quantized clouds, on the same robust
/// cover and normalized axis scaling as the EMD pipeline's defaults.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnergyKernel {
    pub bins: usize,
}

/// Robust-cover half-width, matching [`GridEmd`]'s default.
const ENERGY_COVER_Z: f64 = 5.0;

/// Normalized per-axis coordinate divisors (each axis divided by its grid
/// range), matching [`DistanceScaling::Normalized`].
fn normalized_scale(spec: &GridSpec) -> Vec<f64> {
    spec.axes()
        .iter()
        .map(|ax| {
            let range = ax.hi - ax.lo;
            if range > 0.0 {
                range
            } else {
                1.0
            }
        })
        .collect()
}

/// Energy distance `2·E‖X−Y‖ − E‖X−X'‖ − E‖Y−Y'‖` between two discrete
/// signatures, in a fixed (a-major) summation order.
fn energy_distance(a: &Signature, b: &Signature) -> f64 {
    let wa = a.normalized_weights();
    let wb = b.normalized_weights();
    let expected = |wp: &[f64], wq: &[f64], cost: &[f64]| {
        let m = wq.len();
        let mut sum = 0.0;
        for (i, &wi) in wp.iter().enumerate() {
            for (j, &wj) in wq.iter().enumerate() {
                sum += wi * wj * cost[i * m + j];
            }
        }
        sum
    };
    let dab = expected(&wa, &wb, &ground_distance_matrix(a.points(), b.points()));
    let daa = expected(&wa, &wa, &ground_distance_matrix(a.points(), a.points()));
    let dbb = expected(&wb, &wb, &ground_distance_matrix(b.points(), b.points()));
    (2.0 * dab - daa - dbb).max(0.0)
}

impl DistortionKernel for EnergyKernel {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn score_rows(&self, rows_d: &[Vec<f64>], rows_c: &[Vec<f64>]) -> Result<f64> {
        let columns = sorted_union_columns(rows_d, rows_c)
            .ok_or_else(|| FrameworkError::Distortion("empty data".into()))?;
        let spec = GridSpec::from_sorted_columns_robust(&columns, self.bins, ENERGY_COVER_Z);
        let scale = normalized_scale(&spec);
        let qd = quantize(&spec, rows_d);
        let qc = quantize(&spec, rows_c);
        if qd.total == 0.0 || qc.total == 0.0 {
            return Err(FrameworkError::Distortion(
                "no complete records to compare".into(),
            ));
        }
        let sig_d = scaled_signature(qd.pairs, &scale).map_err(distortion_err)?;
        let sig_c = scaled_signature(qc.pairs, &scale).map_err(distortion_err)?;
        Ok(energy_distance(&sig_d, &sig_c))
    }

    fn prepare(&self, _cache: &SignatureCache) -> Box<dyn PreparedKernel> {
        Box::new(*self)
    }
}

impl PreparedKernel for EnergyKernel {
    fn score_patch(&self, patched: &PatchedCloud<'_>) -> Result<f64> {
        let cache = patched.cache();
        if cache.rows().is_empty() {
            return Err(FrameworkError::Distortion("empty data".into()));
        }
        let pairs: Vec<(&[f64], &[f64])> = cache
            .sorted_columns()
            .iter()
            .zip(patched.sorted_columns())
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        let spec = GridSpec::from_sorted_column_pairs_robust(&pairs, self.bins, ENERGY_COVER_Z);
        let scale = normalized_scale(&spec);
        let side = match cache.side_for(&spec, &scale) {
            Ok(side) => side,
            Err(_) => {
                return Err(FrameworkError::Distortion(
                    "no complete records to compare".into(),
                ))
            }
        };
        let qc = patched.quantize_on(&spec, &side.quant);
        if qc.total == 0.0 {
            return Err(FrameworkError::Distortion(
                "no complete records to compare".into(),
            ));
        }
        let sig_c = scaled_signature(qc.pairs, &scale).map_err(distortion_err)?;
        Ok(energy_distance(&side.signature, &sig_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistortionMetric;

    fn cloud(n: usize, shift: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                vec![
                    (i as f64 * 0.61).sin() * 4.0 + 10.0 + shift,
                    (i % 9) as f64 * 0.5,
                    (i as f64 * 0.13).cos() * 2.0,
                ]
            })
            .collect()
    }

    #[test]
    fn every_kernel_scores_patch_identically_to_materialized_rows() {
        let base = {
            let mut c = cloud(120, 0.0);
            c[7][1] = f64::NAN; // dirty cloud has a gap
            c
        };
        let edit_sets: Vec<Vec<(usize, Vec<f64>)>> = vec![
            vec![],
            vec![(3, vec![55.0, -2.0, 9.0])],
            (0..30)
                .map(|r| (r * 4, vec![r as f64 * 0.2 + 5.0, 1.0, 0.5]))
                .collect(),
            vec![(11, vec![f64::NAN, 0.0, 0.0]), (7, vec![10.0, 1.0, 1.0])],
        ];
        for metric in DistortionMetric::full_suite() {
            let kernel = metric.kernel();
            let cache = SignatureCache::new(base.clone());
            let prepared = kernel.prepare(&cache);
            for edits in &edit_sets {
                let patched = PatchedCloud::new(&cache, edits.clone());
                let materialized = patched.materialize();
                let fast = prepared.score_patch(&patched).unwrap();
                let direct = kernel.score_rows(&base, &materialized).unwrap();
                assert_eq!(
                    fast.to_bits(),
                    direct.to_bits(),
                    "{} diverged on {} edits: {fast} vs {direct}",
                    kernel.name(),
                    edits.len()
                );
            }
        }
    }

    #[test]
    fn every_kernel_is_zero_on_identity_and_positive_on_a_shift() {
        let a = cloud(100, 0.0);
        let b = cloud(100, 6.0);
        for metric in DistortionMetric::full_suite() {
            let kernel = metric.kernel();
            let self_distance = kernel.score_rows(&a, &a).unwrap();
            assert!(
                self_distance.abs() < 1e-9,
                "{}: self-distance {self_distance}",
                kernel.name()
            );
            let shifted = kernel.score_rows(&a, &b).unwrap();
            assert!(
                shifted > 1e-3,
                "{}: shifted distance {shifted}",
                kernel.name()
            );
        }
    }

    #[test]
    fn kl_smoothing_keeps_fresh_cells_finite_and_pinned_to_the_contract() {
        // Cleaning moves one row into a cell the dirty histogram leaves
        // empty: without smoothing KL(dirty ‖ cleaned) would stay finite
        // but KL(cleaned-only cells) contribute p·ln(p/ε)-style terms; the
        // shared KL_EPSILON contract pins the exact value.
        let dirty: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 5) as f64, 0.0, 0.0]).collect();
        let mut cleaned = dirty.clone();
        cleaned[0] = vec![40.0, 0.0, 0.0]; // a cell only the cleaned cloud occupies
        let kernel = DistortionMetric::KlDivergence { bins: 6 }.kernel();
        let score = kernel.score_rows(&dirty, &cleaned).unwrap();
        assert!(score.is_finite() && score > 0.0);

        // The value is exactly the shared-contract divergence: align both
        // histograms over the union of occupied cells and smooth with
        // KL_EPSILON.
        let spec = GridSpec::covering(&dirty, &cleaned, 6).unwrap();
        let qd = quantize(&spec, &dirty);
        let qc = quantize(&spec, &cleaned);
        let (mut p, mut q) = (Vec::new(), Vec::new());
        for (d, c) in qd
            .counts
            .as_ref()
            .unwrap()
            .iter()
            .zip(qc.counts.as_ref().unwrap())
        {
            if *d > 0.0 || *c > 0.0 {
                p.push(d / qd.total);
                q.push(c / qc.total);
            }
        }
        let manual = kl_divergence(&p, &q, KL_EPSILON);
        assert_eq!(score.to_bits(), manual.to_bits());

        // And the incremental path honours the same contract bit for bit.
        let cache = SignatureCache::new(dirty.clone());
        let patched = PatchedCloud::new(&cache, vec![(0, vec![40.0, 0.0, 0.0])]);
        let fast = kernel.prepare(&cache).score_patch(&patched).unwrap();
        assert_eq!(fast.to_bits(), score.to_bits());
    }

    #[test]
    fn mahalanobis_errors_match_on_too_few_complete_records() {
        let tiny = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let kernel = DistortionMetric::Mahalanobis.kernel();
        assert!(kernel.score_rows(&tiny, &tiny).is_err());
        let cache = SignatureCache::new(tiny.clone());
        let patched = PatchedCloud::new(&cache, vec![]);
        assert!(kernel.prepare(&cache).score_patch(&patched).is_err());
    }

    #[test]
    fn marginal_kernels_detect_single_axis_damage() {
        let a = cloud(80, 0.0);
        // Destroy only axis 2: collapse it to a constant.
        let b: Vec<Vec<f64>> = a.iter().map(|r| vec![r[0], r[1], 0.0]).collect();
        for metric in [
            DistortionMetric::KolmogorovSmirnov,
            DistortionMetric::CramerVonMises,
        ] {
            let kernel = metric.kernel();
            let d = kernel.score_rows(&a, &b).unwrap();
            assert!(d > 0.05, "{}: {d}", kernel.name());
        }
    }
}
