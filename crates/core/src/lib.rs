//! The paper's contribution: **statistical distortion** and the
//! three-dimensional experimental framework for evaluating data-cleaning
//! strategies.
//!
//! Definition 1 (§2.1.4): if cleaning strategy `C` applied to data set `D`
//! yields `D_C`, the statistical distortion of `C` on `D` is
//! `S(C, D) = d(D, D_C)` — a distance between the two empirical
//! distributions. The framework evaluates candidate strategies along three
//! axes:
//!
//! 1. **glitch improvement** `G(D) − G(D_C)` (weighted glitch index,
//!    [`sd_glitch::GlitchIndex`]);
//! 2. **statistical distortion** — EMD by default
//!    ([`DistortionMetric::Emd`]), with KL divergence, Mahalanobis,
//!    Kolmogorov–Smirnov, Cramér–von Mises, and energy distance behind the
//!    same pluggable [`DistortionKernel`] subsystem ([`kernel`]); an
//!    experiment can score any set of them from one cleaning pass
//!    ([`ExperimentConfig::metrics`]);
//! 3. **cost** — proxied by the fraction of data cleaned (§5.2).
//!
//! [`Experiment`] orchestrates the §4 protocol end to end: identify the
//! ideal partition (< 5 % of each glitch type), draw `R` replication test
//! pairs of `B` series each, calibrate detectors and cleaning context on
//! the ideal sample, clean with each candidate strategy, and score every
//! `(strategy, replication)` pair. [`table1`] and the `figure*` helpers
//! ([`figure3_series`], [`figure6_points`], …) produce the exact data
//! behind Table 1 and Figures 2–7.
//!
//! ```
//! use sd_core::{Experiment, ExperimentConfig};
//! use sd_cleaning::paper_strategy;
//! use sd_netsim::{generate, NetsimConfig};
//!
//! // Swap in `NetsimConfig::harness_scale(7)` and
//! // `ExperimentConfig::paper_default(100, 42)` for paper-scale runs.
//! let data = generate(&NetsimConfig::small(7)).dataset;
//! let mut config = ExperimentConfig::paper_default(20, 42);
//! config.replications = 4;
//! let experiment = Experiment::new(config);
//! let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
//! let result = experiment.run(&data, &strategies).unwrap();
//! for outcome in result.outcomes() {
//!     println!(
//!         "{} rep {}: improvement {:.2}, distortion {:.3}",
//!         outcome.strategy, outcome.replication, outcome.improvement, outcome.distortion
//!     );
//! }
//! ```

// Index-based loops are the clearer idiom in the dense numeric kernels
// of this crate.
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod budget;
mod cost;
mod distortion;
pub mod engine;
mod error;
mod experiment;
mod figures;
mod ideal;
pub mod kernel;
pub mod optimize;
mod runner;
mod tables;
pub mod windowed;

pub use budget::{budget_tradeoff, BudgetPoint, BudgetScenario};
pub use cost::{cost_sweep, cost_sweep_reference, cost_sweep_with, CostPoint, CostSweepConfig};
pub use distortion::{statistical_distortion, DistortionMetric};
pub use engine::{run_staged, SerialExecutor, TaskExecutor, ThreadPoolExecutor};
pub use error::FrameworkError;
pub use experiment::{
    Experiment, ExperimentConfig, ExperimentResult, PreparedExperiment, ReplicationArtifacts,
    StrategyOutcome,
};
pub use figures::{
    figure3_series, figure4_scatter, figure5_scatter, figure6_points, Figure3Data, ScatterPair,
    ScatterPoint, ScatterPointKind,
};
pub use ideal::{partition_ideal, IdealPartition};
pub use kernel::{DistortionKernel, MetricScore, PreparedKernel, KL_EPSILON};
pub use optimize::{
    budget_optimize, budget_optimize_reference, budget_optimize_with, BudgetOptimizerConfig,
    CostModel, FrontierPoint, SelectionPolicy, TransportMode,
};
pub use runner::parallel_map;
pub use tables::{table1, Table1Config, Table1Row};
pub use windowed::{
    calibrate_window, evaluate_window_artifacts, resolve_neighbor_views, window_bounds,
    NeighborPooling, WindowOutcome, WindowScreen, WindowedConfig, WindowedExperiment,
    WindowedResult,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FrameworkError>;
