use crate::{Experiment, ExperimentConfig, Result};
use sd_cleaning::CompositeStrategy;
use sd_data::Dataset;
use sd_glitch::GlitchType;

/// Configuration of the Table 1 reproduction: which `(sample size, log?)`
/// blocks to produce. The paper reports `(100, log)`, `(500, log)`,
/// `(100, raw)`.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// `(sample size B, log transform on Attribute 1?)` blocks.
    pub blocks: Vec<(usize, bool)>,
    /// Replications per block (paper: 50).
    pub replications: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Table1Config {
    /// The paper's three blocks with `replications` runs each.
    pub fn paper(replications: usize, seed: u64) -> Self {
        Table1Config {
            blocks: vec![(100, true), (500, true), (100, false)],
            replications,
            seed,
            threads: 0,
        }
    }
}

/// One row of Table 1: average record-level glitch percentages before and
/// after one strategy, within one configuration block.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Block label, e.g. `"n=100, log(attribute 1)"`.
    pub block: String,
    /// Strategy label, e.g. `"Strategy 1"`.
    pub strategy: String,
    /// Dirty percentages `[missing, inconsistent, outliers]`.
    pub dirty_pct: [f64; 3],
    /// Treated percentages `[missing, inconsistent, outliers]`.
    pub treated_pct: [f64; 3],
}

impl Table1Row {
    /// Formats the row like the paper's table.
    pub fn formatted(&self) -> String {
        format!(
            "{:<28} {:<11} {:>8.4} {:>8.4} {:>8.4}   {:>9.5} {:>8.4} {:>8.4}",
            self.block,
            self.strategy,
            self.dirty_pct[0],
            self.dirty_pct[1],
            self.dirty_pct[2],
            self.treated_pct[0],
            self.treated_pct[1],
            self.treated_pct[2],
        )
    }
}

/// Produces Table 1: for each block, run the experiment with the paper's
/// five strategies and average the record-level glitch percentages across
/// replications.
pub fn table1(
    data: &Dataset,
    config: &Table1Config,
    strategies: &[CompositeStrategy],
) -> Result<Vec<Table1Row>> {
    let mut rows = Vec::new();
    for &(sample_size, log) in &config.blocks {
        let mut econfig = ExperimentConfig::paper_default(sample_size, config.seed);
        econfig.replications = config.replications;
        econfig.log_transform_attr1 = log;
        econfig.threads = config.threads;
        let result = Experiment::new(econfig).run(data, strategies)?;

        let block = if log {
            format!("n={sample_size}, log(attribute 1)")
        } else {
            format!("n={sample_size}, no log")
        };
        for (si, _) in strategies.iter().enumerate() {
            let outcomes = result.for_strategy(si);
            let n = outcomes.len().max(1) as f64;
            let mut dirty = [0.0; 3];
            let mut treated = [0.0; 3];
            for o in &outcomes {
                for &g in &GlitchType::ALL {
                    dirty[g.index()] += o.dirty_report.record_percentage(g) / n;
                    treated[g.index()] += o.treated_report.record_percentage(g) / n;
                }
            }
            rows.push(Table1Row {
                block: block.clone(),
                strategy: format!("Strategy {}", si + 1),
                dirty_pct: dirty,
                treated_pct: treated,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    #[test]
    fn table_has_one_row_per_block_and_strategy() {
        let data = generate(&NetsimConfig::small(31)).dataset;
        let config = Table1Config {
            blocks: vec![(10, true), (10, false)],
            replications: 2,
            seed: 3,
            threads: 2,
        };
        let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
        let rows = table1(&data, &config, &strategies).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows[0].block.contains("log"));
        assert!(rows[5].block.contains("no log"));
        assert_eq!(rows[0].strategy, "Strategy 1");
        // Dirty percentages identical across strategies within a block
        // (same samples, same detector).
        for k in 1..5 {
            for g in 0..3 {
                assert!((rows[0].dirty_pct[g] - rows[k].dirty_pct[g]).abs() < 1e-9);
            }
        }
        // Formatting smoke test.
        assert!(rows[0].formatted().contains("Strategy 1"));
    }

    #[test]
    fn strategy5_clears_all_glitch_types() {
        let data = generate(&NetsimConfig::small(31)).dataset;
        let config = Table1Config {
            blocks: vec![(15, true)],
            replications: 2,
            seed: 9,
            threads: 2,
        };
        let strategies = [paper_strategy(5)];
        let rows = table1(&data, &config, &strategies).unwrap();
        let row = &rows[0];
        // Mean replacement + winsorization removes everything it saw.
        assert!(row.treated_pct[0] < 0.5, "missing: {:?}", row.treated_pct);
        assert!(row.treated_pct[2] < 0.5, "outliers: {:?}", row.treated_pct);
    }
}
