use crate::{FrameworkError, Result};
use sd_data::Dataset;
use sd_glitch::{ConstraintSet, GlitchDetector, GlitchType, OutlierDetector};
use sd_stats::AttributeTransform;

/// The split of a data set into its ideal and dirty partitions (§2.1.2).
#[derive(Debug, Clone)]
pub struct IdealPartition {
    /// Indices of series meeting the cleanliness rule.
    pub ideal_indices: Vec<usize>,
    /// Indices of the remaining (dirty) series.
    pub dirty_indices: Vec<usize>,
    /// The record-level threshold applied (fraction, e.g. 0.05).
    pub threshold: f64,
}

impl IdealPartition {
    /// Materializes the ideal partition as a dataset.
    pub fn ideal_dataset(&self, data: &Dataset) -> Dataset {
        data.subset(&self.ideal_indices)
    }

    /// Materializes the dirty partition as a dataset.
    pub fn dirty_dataset(&self, data: &Dataset) -> Dataset {
        data.subset(&self.dirty_indices)
    }
}

/// Identifies the ideal data set `D_I` from the dirty data itself: series
/// "where the time series contained less than 5 % each of missing,
/// inconsistencies and outliers" (§4.1, with `threshold` generalizing the
/// 5 %).
///
/// The rule is circular on its face — outliers are defined by limits
/// computed *from* the ideal set — so the standard two-pass resolution is
/// used:
///
/// 1. a provisional ideal is selected on missing + inconsistent rates only;
/// 2. 3-σ limits are fitted to the provisional ideal and the rule is
///    re-applied including the outlier rate.
pub fn partition_ideal(
    data: &Dataset,
    constraints: &ConstraintSet,
    transforms: &[AttributeTransform],
    k: f64,
    threshold: f64,
) -> Result<IdealPartition> {
    if !(0.0..=1.0).contains(&threshold) {
        return Err(FrameworkError::InvalidConfig(format!(
            "ideal threshold must be a fraction, got {threshold}"
        )));
    }
    // Pass 1: missing + inconsistent only.
    let detector = GlitchDetector::new(constraints.clone(), None);
    let matrices = detector.detect_dataset(data);
    let rate = |m: &sd_glitch::GlitchMatrix, g: GlitchType| -> f64 {
        if m.is_empty() {
            0.0
        } else {
            m.count_records(g) as f64 / m.len() as f64
        }
    };
    let provisional: Vec<usize> = (0..data.num_series())
        .filter(|&i| {
            rate(&matrices[i], GlitchType::Missing) < threshold
                && rate(&matrices[i], GlitchType::Inconsistent) < threshold
        })
        .collect();
    if provisional.is_empty() {
        return Err(FrameworkError::NoIdealData { threshold });
    }

    // Pass 2: fit outlier limits on the provisional ideal, re-apply.
    let provisional_ds = data.subset(&provisional);
    let outliers = OutlierDetector::fit(&provisional_ds, transforms, k);
    let full_detector = GlitchDetector::new(constraints.clone(), Some(outliers));
    let full_matrices = full_detector.detect_dataset(data);

    let mut ideal_indices = Vec::new();
    let mut dirty_indices = Vec::new();
    for i in 0..data.num_series() {
        let m = &full_matrices[i];
        let ok = GlitchType::ALL.iter().all(|&g| rate(m, g) < threshold);
        if ok {
            ideal_indices.push(i);
        } else {
            dirty_indices.push(i);
        }
    }
    if ideal_indices.is_empty() {
        return Err(FrameworkError::NoIdealData { threshold });
    }
    if dirty_indices.is_empty() {
        return Err(FrameworkError::NoDirtyData);
    }
    Ok(IdealPartition {
        ideal_indices,
        dirty_indices,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    /// Two clean series, one filthy series.
    fn mixed() -> Dataset {
        let mut clean1 = TimeSeries::new(NodeId::new(0, 0, 0), 1, 100);
        let mut clean2 = TimeSeries::new(NodeId::new(0, 0, 1), 1, 100);
        let mut filthy = TimeSeries::new(NodeId::new(0, 1, 0), 1, 100);
        for t in 0..100 {
            clean1.set(0, t, 50.0 + (t % 10) as f64);
            clean2.set(0, t, 52.0 + (t % 7) as f64);
            if t % 3 == 0 {
                // leave missing
            } else {
                filthy.set(0, t, 55.0 + (t % 9) as f64);
            }
        }
        Dataset::new(vec!["a"], vec![clean1, clean2, filthy]).unwrap()
    }

    #[test]
    fn partitions_by_missing_rate() {
        let p = partition_ideal(
            &mixed(),
            &ConstraintSet::default(),
            &[AttributeTransform::Identity],
            3.0,
            0.05,
        )
        .unwrap();
        assert_eq!(p.ideal_indices, vec![0, 1]);
        assert_eq!(p.dirty_indices, vec![2]);
        assert_eq!(p.ideal_dataset(&mixed()).num_series(), 2);
        assert_eq!(p.dirty_dataset(&mixed()).num_series(), 1);
    }

    #[test]
    fn outlier_pass_can_demote_series() {
        // A series that is complete and consistent but full of extreme
        // values relative to the provisional ideal.
        let mut spiky = TimeSeries::new(NodeId::new(0, 2, 0), 1, 100);
        for t in 0..100 {
            spiky.set(0, t, if t % 4 == 0 { 1e6 } else { 50.0 });
        }
        let mut data = mixed();
        data.push(spiky).unwrap();
        let p = partition_ideal(
            &data,
            &ConstraintSet::default(),
            &[AttributeTransform::Identity],
            3.0,
            0.05,
        )
        .unwrap();
        assert!(p.dirty_indices.contains(&3), "spiky series must be dirty");
        assert!(p.ideal_indices.contains(&0));
    }

    #[test]
    fn all_dirty_is_an_error() {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 10);
        for t in 0..10 {
            if t % 2 == 0 {
                s.set(0, t, 1.0);
            }
        }
        let data = Dataset::new(vec!["a"], vec![s]).unwrap();
        let err = partition_ideal(
            &data,
            &ConstraintSet::default(),
            &[AttributeTransform::Identity],
            3.0,
            0.05,
        )
        .unwrap_err();
        assert!(matches!(err, FrameworkError::NoIdealData { .. }));
    }

    #[test]
    fn all_clean_is_an_error() {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 10);
        for t in 0..10 {
            s.set(0, t, 5.0 + t as f64 * 0.01);
        }
        let data = Dataset::new(vec!["a"], vec![s]).unwrap();
        let err = partition_ideal(
            &data,
            &ConstraintSet::default(),
            &[AttributeTransform::Identity],
            3.0,
            0.05,
        )
        .unwrap_err();
        assert!(matches!(err, FrameworkError::NoDirtyData));
    }

    #[test]
    fn invalid_threshold_rejected() {
        let err = partition_ideal(
            &mixed(),
            &ConstraintSet::default(),
            &[AttributeTransform::Identity],
            3.0,
            5.0,
        )
        .unwrap_err();
        assert!(matches!(err, FrameworkError::InvalidConfig(_)));
    }
}
