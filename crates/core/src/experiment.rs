use crate::{partition_ideal, statistical_distortion, DistortionMetric, MetricScore, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_cleaning::{CleaningContext, CleaningOutcome, CleaningStrategy, CompositeStrategy};
use sd_data::Dataset;
use sd_glitch::{
    ConstraintSet, GlitchDetector, GlitchIndex, GlitchMatrix, GlitchReport, GlitchWeights,
    OutlierDetector,
};
use sd_sampling::ReplicationSampler;
use sd_stats::AttributeTransform;

/// Configuration of one experimental run (§4).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of replications `R` ("any value of R more than 30 is
    /// sufficient"; the paper uses 50).
    pub replications: usize,
    /// Series per sample `B` (the paper reports 100 and 500).
    pub sample_size: usize,
    /// Base seed for sampling and strategy randomness.
    pub seed: u64,
    /// Glitch-type weights (paper: 0.25 / 0.25 / 0.5).
    pub weights: GlitchWeights,
    /// Whether the natural-log factor is applied to Attribute 1 (§5.3).
    pub log_transform_attr1: bool,
    /// σ multiplier for outlier limits (paper: 3).
    pub sigma_k: f64,
    /// Record-level cleanliness threshold for the ideal rule (paper: 5 %).
    pub ideal_threshold: f64,
    /// Distortion distances. Every requested kernel is scored per
    /// `(replication, strategy)` unit from one cleaning pass; the first
    /// entry is the **primary** metric reported in
    /// [`StrategyOutcome::distortion`]. Must be non-empty.
    pub metrics: Vec<DistortionMetric>,
    /// Inconsistency rules (defaults to the paper's three, §4.1).
    pub constraints: ConstraintSet,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl ExperimentConfig {
    /// The paper's configuration: R = 50 replications, 3-σ limits, 5 %
    /// ideal rule, weights (0.25, 0.25, 0.5), log factor on, EMD metric.
    pub fn paper_default(sample_size: usize, seed: u64) -> Self {
        ExperimentConfig {
            replications: 50,
            sample_size,
            seed,
            weights: GlitchWeights::paper(),
            log_transform_attr1: true,
            sigma_k: 3.0,
            ideal_threshold: 0.05,
            metrics: vec![DistortionMetric::paper_default()],
            constraints: ConstraintSet::paper_rules(0, 2),
            threads: 0,
        }
    }

    /// Per-attribute transforms implied by the log factor.
    pub fn transforms(&self, num_attributes: usize) -> Vec<AttributeTransform> {
        (0..num_attributes)
            .map(|a| {
                if a == 0 && self.log_transform_attr1 {
                    AttributeTransform::log()
                } else {
                    AttributeTransform::Identity
                }
            })
            .collect()
    }
}

/// One `(strategy, replication)` evaluation — a single point in Figure 6.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub strategy: String,
    /// Index of the strategy in the submitted list.
    pub strategy_index: usize,
    /// Replication number.
    pub replication: usize,
    /// Glitch improvement `G(D^i) − G(D^i_C)`.
    pub improvement: f64,
    /// Statistical distortion `d(D^i, D^i_C)` under the **primary**
    /// metric (`metrics[0]`; equal to `distortions[0].value`).
    pub distortion: f64,
    /// Per-metric distortions, in [`ExperimentConfig::metrics`] order —
    /// every requested kernel scored from the same cleaning pass.
    pub distortions: Vec<MetricScore>,
    /// Record-level glitch percentages of the dirty sample.
    pub dirty_report: GlitchReport,
    /// Record-level glitch percentages after treatment.
    pub treated_report: GlitchReport,
    /// What the cleaning pass did.
    pub cleaning: CleaningOutcome,
}

/// All outcomes of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    outcomes: Vec<StrategyOutcome>,
    metrics: Vec<&'static str>,
}

impl ExperimentResult {
    /// Assembles a result from unit outcomes (engine-internal).
    pub(crate) fn from_outcomes(
        outcomes: Vec<StrategyOutcome>,
        metrics: Vec<&'static str>,
    ) -> Self {
        ExperimentResult { outcomes, metrics }
    }

    /// Every `(strategy, replication)` outcome.
    pub fn outcomes(&self) -> &[StrategyOutcome] {
        &self.outcomes
    }

    /// The scored metric names, in [`ExperimentConfig::metrics`] order
    /// (index `i` here matches `distortions[i]` in every outcome).
    pub fn metrics(&self) -> &[&'static str] {
        &self.metrics
    }

    /// Outcomes of one strategy, across replications.
    pub fn for_strategy(&self, strategy_index: usize) -> Vec<&StrategyOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.strategy_index == strategy_index)
            .collect()
    }

    /// Mean `(improvement, distortion)` of one strategy under the primary
    /// metric.
    pub fn mean_point(&self, strategy_index: usize) -> Option<(f64, f64)> {
        self.mean_point_for_metric(strategy_index, 0)
    }

    /// Mean `(improvement, distortion)` of one strategy under the
    /// `metric_index`-th requested metric (see
    /// [`ExperimentResult::metrics`]).
    pub fn mean_point_for_metric(
        &self,
        strategy_index: usize,
        metric_index: usize,
    ) -> Option<(f64, f64)> {
        let points = self.for_strategy(strategy_index);
        if points.is_empty() || metric_index >= self.metrics.len() {
            return None;
        }
        let n = points.len() as f64;
        let imp = points.iter().map(|o| o.improvement).sum::<f64>() / n;
        let dist = points
            .iter()
            .map(|o| o.distortions[metric_index].value)
            .sum::<f64>()
            / n;
        Some((imp, dist))
    }
}

/// Everything calibrated for one replication: the test pair, the fitted
/// detector, the cleaning context, and the dirty sample's annotations.
///
/// Exposed so the figure generators and the cost sweep can reuse the exact
/// replication pipeline without re-implementing it.
#[derive(Debug)]
pub struct ReplicationArtifacts {
    /// Replication number.
    pub replication: usize,
    /// The dirty sample `D^i`.
    pub dirty: Dataset,
    /// The ideal sample `D^i_I`.
    pub ideal: Dataset,
    /// Detector with 3-σ limits fitted on `ideal`.
    pub detector: GlitchDetector,
    /// Cleaning context calibrated on `ideal`.
    pub context: CleaningContext,
    /// Glitch annotations of `dirty`.
    pub dirty_matrices: Vec<GlitchMatrix>,
}

impl ReplicationArtifacts {
    /// Applies a strategy to a fresh copy of the dirty sample and returns
    /// `(cleaned data, cleaning counters)`. Deterministic per
    /// `(experiment seed, replication, strategy_index)`.
    pub fn apply(
        &self,
        strategy: &CompositeStrategy,
        seed: u64,
        strategy_index: usize,
    ) -> (Dataset, CleaningOutcome) {
        let mut cleaned = self.dirty.clone();
        let mut rng = StdRng::seed_from_u64(
            seed ^ (self.replication as u64) << 20 ^ (strategy_index as u64) << 50,
        );
        let outcome = strategy.clean(&mut cleaned, &self.dirty_matrices, &self.context, &mut rng);
        (cleaned, outcome)
    }

    /// Re-detects glitches on a treated data set with the same detector
    /// (limits stay calibrated on the ideal sample).
    pub fn redetect(&self, treated: &Dataset) -> Vec<GlitchMatrix> {
        self.detector.detect_dataset(treated)
    }
}

/// An experiment prepared against a concrete data set: partitioned pools
/// plus everything derived from the configuration.
#[derive(Debug)]
pub struct PreparedExperiment {
    config: ExperimentConfig,
    transforms: Vec<AttributeTransform>,
    dirty_pool: Dataset,
    ideal_pool: Dataset,
    sampler: ReplicationSampler,
}

impl PreparedExperiment {
    /// The dirty pool (non-ideal partition of the input data).
    pub fn dirty_pool(&self) -> &Dataset {
        &self.dirty_pool
    }

    /// The ideal pool `D_I`.
    pub fn ideal_pool(&self) -> &Dataset {
        &self.ideal_pool
    }

    /// The per-attribute transforms in use.
    pub fn transforms(&self) -> &[AttributeTransform] {
        &self.transforms
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Builds the artifacts for replication `i`: sample the test pair, fit
    /// the outlier detector and cleaning context on the ideal sample,
    /// annotate the dirty sample.
    pub fn replication(&self, i: usize) -> ReplicationArtifacts {
        let pair = self
            .sampler
            .sample_pair(&self.dirty_pool, &self.ideal_pool, i);
        let outliers = OutlierDetector::fit(&pair.ideal, &self.transforms, self.config.sigma_k);
        let context = CleaningContext::from_detector(&pair.ideal, &self.transforms, &outliers);
        let detector = GlitchDetector::new(self.config.constraints.clone(), Some(outliers));
        let dirty_matrices = detector.detect_dataset(&pair.dirty);
        ReplicationArtifacts {
            replication: i,
            dirty: pair.dirty,
            ideal: pair.ideal,
            detector,
            context,
            dirty_matrices,
        }
    }

    /// Runs all `R × S` `(replication, strategy)` units of this prepared
    /// experiment on the staged engine (see [`crate::engine`]) with a
    /// caller-supplied executor. [`Experiment::run`] is `prepare` + this.
    pub fn run_with<E: crate::TaskExecutor>(
        &self,
        strategies: &[CompositeStrategy],
        executor: &E,
    ) -> Result<ExperimentResult> {
        crate::engine::run_batch(self, strategies, executor)
    }

    /// Scores one strategy on one replication the pre-engine way: full
    /// clone, full re-detection, and one materialized distortion
    /// evaluation per requested metric (the engine's bit-identity oracle).
    pub fn evaluate(
        &self,
        artifacts: &ReplicationArtifacts,
        strategy: &CompositeStrategy,
        strategy_index: usize,
    ) -> Result<StrategyOutcome> {
        let (cleaned, cleaning) = artifacts.apply(strategy, self.config.seed, strategy_index);
        let treated_matrices = artifacts.redetect(&cleaned);
        let index = GlitchIndex::new(self.config.weights);
        let improvement = index.improvement(&artifacts.dirty_matrices, &treated_matrices);
        // Distortion is measured in the experiment's working space (log
        // space for Attribute 1 when the factor is on): the analyst who
        // chose the transform evaluates distributional damage on that
        // scale, and it is where the Gaussian imputer's spread is visible.
        let mut distortions = Vec::with_capacity(self.config.metrics.len());
        for metric in &self.config.metrics {
            distortions.push(MetricScore {
                metric: metric.name(),
                value: statistical_distortion(
                    &artifacts.dirty,
                    &cleaned,
                    &self.transforms,
                    *metric,
                )?,
            });
        }
        Ok(StrategyOutcome {
            strategy: strategy.name(),
            strategy_index,
            replication: artifacts.replication,
            improvement,
            distortion: distortions[0].value,
            distortions,
            dirty_report: GlitchReport::from_matrices(&artifacts.dirty_matrices),
            treated_report: GlitchReport::from_matrices(&treated_matrices),
            cleaning,
        })
    }
}

/// The experimental framework entry point.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates an experiment from a configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Partitions `data` into pools and precomputes shared state.
    pub fn prepare(&self, data: &Dataset) -> Result<PreparedExperiment> {
        if self.config.replications == 0 || self.config.sample_size == 0 {
            return Err(crate::FrameworkError::InvalidConfig(
                "replications and sample size must be positive".into(),
            ));
        }
        if self.config.metrics.is_empty() {
            return Err(crate::FrameworkError::InvalidConfig(
                "at least one distortion metric is required".into(),
            ));
        }
        let transforms = self.config.transforms(data.num_attributes());
        let partition = partition_ideal(
            data,
            &self.config.constraints,
            &transforms,
            self.config.sigma_k,
            self.config.ideal_threshold,
        )?;
        Ok(PreparedExperiment {
            transforms,
            dirty_pool: partition.dirty_dataset(data),
            ideal_pool: partition.ideal_dataset(data),
            sampler: ReplicationSampler::new(self.config.sample_size, self.config.seed),
            config: self.config.clone(),
        })
    }

    /// Runs the full protocol on the staged engine: a work queue of
    /// `R × S` `(replication, strategy)` units with per-replication
    /// artifacts shared across each replication's strategy units (see
    /// [`crate::engine`]). Outcomes are bit-identical to the historical
    /// replication-granular runner for the same seed.
    pub fn run(
        &self,
        data: &Dataset,
        strategies: &[CompositeStrategy],
    ) -> Result<ExperimentResult> {
        self.run_with(
            data,
            strategies,
            &crate::ThreadPoolExecutor::new(self.config.threads),
        )
    }

    /// Like [`Experiment::run`], on a caller-supplied task executor.
    pub fn run_with<E: crate::TaskExecutor>(
        &self,
        data: &Dataset,
        strategies: &[CompositeStrategy],
        executor: &E,
    ) -> Result<ExperimentResult> {
        self.prepare(data)?.run_with(strategies, executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn small_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default(20, 11);
        c.replications = 4;
        c.threads = 2;
        c
    }

    fn data() -> Dataset {
        generate(&NetsimConfig::small(3)).dataset
    }

    #[test]
    fn transforms_respect_log_factor() {
        let mut c = ExperimentConfig::paper_default(10, 1);
        let t = c.transforms(3);
        assert!(!t[0].is_identity());
        assert!(t[1].is_identity() && t[2].is_identity());
        c.log_transform_attr1 = false;
        assert!(c.transforms(3).iter().all(|x| x.is_identity()));
    }

    #[test]
    fn run_produces_all_outcomes() {
        let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
        let result = Experiment::new(small_config())
            .run(&data(), &strategies)
            .unwrap();
        assert_eq!(result.outcomes().len(), 4 * 5);
        // Every outcome is finite and non-negative in distortion.
        for o in result.outcomes() {
            assert!(o.distortion.is_finite() && o.distortion >= 0.0, "{o:?}");
            assert!(o.improvement.is_finite());
        }
        assert_eq!(result.for_strategy(0).len(), 4);
        assert!(result.mean_point(0).is_some());
        assert!(result.mean_point(9).is_none());
    }

    #[test]
    fn no_op_strategy_has_zero_improvement_and_distortion() {
        let noop = sd_cleaning::CompositeStrategy::new(
            sd_cleaning::MissingTreatment::Ignore,
            sd_cleaning::OutlierTreatment::Ignore,
        );
        let result = Experiment::new(small_config())
            .run(&data(), &[noop])
            .unwrap();
        for o in result.outcomes() {
            assert_eq!(o.improvement, 0.0);
            assert!(o.distortion.abs() < 1e-9);
            assert_eq!(o.cleaning.cells_changed(), 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strategies = [paper_strategy(5)];
        let e = Experiment::new(small_config());
        let d = data();
        let a = e.run(&d, &strategies).unwrap();
        let b = e.run(&d, &strategies).unwrap();
        for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
            assert_eq!(x.improvement, y.improvement);
            assert_eq!(x.distortion, y.distortion);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = small_config();
        c.replications = 0;
        assert!(Experiment::new(c)
            .run(&data(), &[paper_strategy(1)])
            .is_err());
        let mut c = small_config();
        c.metrics = Vec::new();
        assert!(Experiment::new(c)
            .run(&data(), &[paper_strategy(1)])
            .is_err());
    }

    #[test]
    fn full_cleaning_improves_glitch_score() {
        let strategies = [paper_strategy(5)];
        let result = Experiment::new(small_config())
            .run(&data(), &strategies)
            .unwrap();
        for o in result.outcomes() {
            assert!(
                o.improvement > 0.0,
                "strategy 5 must improve the glitch index, got {}",
                o.improvement
            );
            assert!(
                o.distortion > 0.0,
                "cleaning must distort at least a little"
            );
        }
    }
}
