use crate::{FrameworkError, Result};
use sd_data::Dataset;
use sd_emd::{DistanceScaling, GridEmd, PatchedCloud, SignatureCache};
use sd_linalg::MahalanobisMetric;
use sd_stats::{kl_divergence, AttributeTransform, GridHistogram, GridSpec};
use std::collections::BTreeMap;

/// The distance `d(D, D_C)` behind Definition 1.
///
/// The paper names "the Earth Mover's, Kullback-Liebler or Mahalanobis
/// distances" as candidates and uses EMD throughout its experiments; all
/// three are implemented so the `ablation_distance` bench can compare them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistortionMetric {
    /// Earth Mover's Distance between grid-quantized tuple clouds (the
    /// paper's choice, §3.5).
    Emd {
        /// Bins per attribute axis.
        bins: usize,
        /// Ground-distance scaling.
        scaling: DistanceScaling,
    },
    /// KL divergence `KL(dirty ‖ cleaned)` over the shared grid, with
    /// epsilon smoothing for empty cells.
    KlDivergence {
        /// Bins per attribute axis.
        bins: usize,
    },
    /// Mahalanobis distance between the mean tuples, under the dirty
    /// data's covariance.
    Mahalanobis,
}

impl DistortionMetric {
    /// The paper's default: EMD over a 6-per-axis grid with normalized
    /// axis scaling.
    ///
    /// Six bins per axis keeps every occupied-cell product (≤ 216² pairs)
    /// inside the exact transportation-simplex budget, so replication
    /// scores never mix exact and approximate solves.
    pub fn paper_default() -> Self {
        DistortionMetric::Emd {
            bins: 6,
            scaling: DistanceScaling::Normalized,
        }
    }
}

/// Pools a dataset into working-space rows: every record of every series,
/// each attribute pushed through its transform. Records keep NaN for
/// missing cells (downstream consumers decide how to treat them).
pub(crate) fn pooled_working_rows(
    data: &Dataset,
    transforms: &[AttributeTransform],
) -> Vec<Vec<f64>> {
    assert_eq!(
        transforms.len(),
        data.num_attributes(),
        "one transform per attribute"
    );
    let mut rows = Vec::with_capacity(data.num_records());
    for series in data.series() {
        for t in 0..series.len() {
            let row: Vec<f64> = transforms
                .iter()
                .enumerate()
                .map(|(a, tf)| tf.forward(series.get(a, t)))
                .collect();
            rows.push(row);
        }
    }
    rows
}

/// Statistical distortion `S(C, D) = d(D, D_C)` between a dirty data set
/// and its cleaned counterpart (Definition 1).
///
/// Both data sets are pooled "treating each time instance as a separate
/// data point" (§6.1) and mapped into working space by `transforms` before
/// the distance is evaluated.
pub fn statistical_distortion(
    dirty: &Dataset,
    cleaned: &Dataset,
    transforms: &[AttributeTransform],
    metric: DistortionMetric,
) -> Result<f64> {
    let rows_d = pooled_working_rows(dirty, transforms);
    let rows_c = pooled_working_rows(cleaned, transforms);
    distortion_from_rows(&rows_d, &rows_c, metric)
}

/// Distortion between the cached dirty cloud and its cleaned counterpart
/// expressed as sparse working-space row edits (the engine's hot path).
///
/// The EMD arm never materializes the cleaned cloud: sorted columns and
/// the histogram are derived from the cached dirty side plus the edits,
/// bit-identically to the materialized pipeline. The KL and Mahalanobis
/// arms materialize the rows and take the ordinary path.
pub(crate) fn distortion_patched(
    dirty_cache: &SignatureCache,
    edits: Vec<(usize, Vec<f64>)>,
    metric: DistortionMetric,
) -> Result<f64> {
    let patched = PatchedCloud::new(dirty_cache, edits);
    match metric {
        DistortionMetric::Emd { bins, scaling } => {
            let report = GridEmd::new(bins)
                .with_scaling(scaling)
                .with_max_exact_cells(60_000)
                .distance_patched(&patched)
                .map_err(|e| FrameworkError::Distortion(e.to_string()))?;
            Ok(report.emd)
        }
        other => {
            let rows_c = patched.materialize();
            distortion_from_rows(dirty_cache.rows(), &rows_c, other)
        }
    }
}

/// Distortion between already-pooled working-space rows (no cached state;
/// the engine's sparse-edit entry point is [`distortion_patched`]).
pub(crate) fn distortion_from_rows(
    rows_d: &[Vec<f64>],
    rows_c: &[Vec<f64>],
    metric: DistortionMetric,
) -> Result<f64> {
    match metric {
        DistortionMetric::Emd { bins, scaling } => {
            // Guard the exact solver: beyond ~60k occupied-cell pairs the
            // transportation simplex gets slow and GridEmd falls back to
            // Sinkhorn, which preserves the strategy ordering.
            let report = GridEmd::new(bins)
                .with_scaling(scaling)
                .with_max_exact_cells(60_000)
                .distance(rows_d, rows_c)
                .map_err(|e| FrameworkError::Distortion(e.to_string()))?;
            Ok(report.emd)
        }
        DistortionMetric::KlDivergence { bins } => {
            let spec = GridSpec::covering(rows_d, rows_c, bins)
                .ok_or_else(|| FrameworkError::Distortion("empty data".into()))?;
            let hd = GridHistogram::from_points(spec.clone(), rows_d);
            let hc = GridHistogram::from_points(spec, rows_c);
            if hd.total() == 0.0 || hc.total() == 0.0 {
                return Err(FrameworkError::Distortion(
                    "no complete records to compare".into(),
                ));
            }
            // Align the two histograms over the union of occupied cells.
            let mut union: BTreeMap<Vec<u32>, (f64, f64)> = BTreeMap::new();
            for (cell, m) in hd.cell_masses() {
                union.entry(cell).or_insert((0.0, 0.0)).0 = m / hd.total();
            }
            for (cell, m) in hc.cell_masses() {
                union.entry(cell).or_insert((0.0, 0.0)).1 = m / hc.total();
            }
            let p: Vec<f64> = union.values().map(|&(a, _)| a).collect();
            let q: Vec<f64> = union.values().map(|&(_, b)| b).collect();
            Ok(kl_divergence(&p, &q, 1e-9))
        }
        DistortionMetric::Mahalanobis => {
            let complete = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
                rows.iter()
                    .filter(|r| r.iter().all(|x| x.is_finite()))
                    .cloned()
                    .collect()
            };
            let cd = complete(rows_d);
            let cc = complete(rows_c);
            if cd.len() < 3 || cc.len() < 3 {
                return Err(FrameworkError::Distortion(
                    "too few complete records".into(),
                ));
            }
            let metric = MahalanobisMetric::fit(&cd)
                .map_err(|e| FrameworkError::Distortion(e.to_string()))?;
            let mean_c = sd_linalg::mean_vector(&cc)
                .map_err(|e| FrameworkError::Distortion(e.to_string()))?;
            metric
                .distance(&mean_c)
                .map_err(|e| FrameworkError::Distortion(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    fn dataset(offset: f64) -> Dataset {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 2, 64);
        for t in 0..64 {
            let x = (t as f64 * 0.7).sin() * 3.0 + 10.0 + offset;
            s.set(0, t, x);
            s.set(1, t, 0.5 * x + 1.0);
        }
        Dataset::new(vec!["a", "b"], vec![s]).unwrap()
    }

    const ID: [AttributeTransform; 2] =
        [AttributeTransform::Identity, AttributeTransform::Identity];

    #[test]
    fn identical_datasets_have_near_zero_distortion() {
        let d = dataset(0.0);
        for metric in [
            DistortionMetric::paper_default(),
            DistortionMetric::KlDivergence { bins: 8 },
            DistortionMetric::Mahalanobis,
        ] {
            let s = statistical_distortion(&d, &d, &ID, metric).unwrap();
            assert!(s.abs() < 1e-6, "{metric:?} gave {s}");
        }
    }

    #[test]
    fn shifted_dataset_has_positive_distortion() {
        let d = dataset(0.0);
        let c = dataset(5.0);
        for metric in [
            DistortionMetric::paper_default(),
            DistortionMetric::KlDivergence { bins: 8 },
            DistortionMetric::Mahalanobis,
        ] {
            let s = statistical_distortion(&d, &c, &ID, metric).unwrap();
            assert!(s > 0.05, "{metric:?} gave {s}");
        }
    }

    #[test]
    fn distortion_grows_with_shift_under_emd() {
        let d = dataset(0.0);
        let near = statistical_distortion(
            &d,
            &dataset(1.0),
            &ID,
            DistortionMetric::Emd {
                bins: 16,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        let far = statistical_distortion(
            &d,
            &dataset(8.0),
            &ID,
            DistortionMetric::Emd {
                bins: 16,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn transforms_change_the_working_space() {
        let d = dataset(0.0);
        let c = dataset(3.0);
        let raw = statistical_distortion(
            &d,
            &c,
            &ID,
            DistortionMetric::Emd {
                bins: 8,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        let logt = statistical_distortion(
            &d,
            &c,
            &[AttributeTransform::log(), AttributeTransform::Identity],
            DistortionMetric::Emd {
                bins: 8,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        // Log compresses the axis, so the raw-space distance shrinks.
        assert!(logt < raw, "log {logt} vs raw {raw}");
    }

    #[test]
    fn missing_cells_are_tolerated() {
        let d = dataset(0.0);
        let mut c = dataset(0.0);
        c.series_mut()[0].set_missing(0, 5);
        c.series_mut()[0].set_missing(1, 9);
        let s = statistical_distortion(&d, &c, &ID, DistortionMetric::paper_default()).unwrap();
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn emd_distortion_is_symmetric() {
        let d = dataset(0.0);
        let c = dataset(2.5);
        let m = DistortionMetric::paper_default();
        let ab = statistical_distortion(&d, &c, &ID, m).unwrap();
        let ba = statistical_distortion(&c, &d, &ID, m).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn pooled_rows_shape() {
        let d = dataset(0.0);
        let rows = pooled_working_rows(&d, &ID);
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[0].len(), 2);
    }
}
