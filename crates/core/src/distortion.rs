use crate::kernel::{
    CvmKernel, DistortionKernel, EmdKernel, EnergyKernel, KlKernel, KsKernel, MahalanobisKernel,
};
use crate::Result;
use sd_data::Dataset;
use sd_emd::DistanceScaling;
use sd_stats::AttributeTransform;

/// The distance `d(D, D_C)` behind Definition 1.
///
/// The paper names "the Earth Mover's, Kullback-Liebler or Mahalanobis
/// distances" as candidates and uses EMD throughout its experiments. Each
/// variant is a lightweight descriptor; [`DistortionMetric::kernel`] builds
/// the corresponding [`DistortionKernel`], which owns both the materialized
/// reference path and the engine's incremental `score_patch` path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistortionMetric {
    /// Earth Mover's Distance between grid-quantized tuple clouds (the
    /// paper's choice, §3.5).
    Emd {
        /// Bins per attribute axis.
        bins: usize,
        /// Ground-distance scaling.
        scaling: DistanceScaling,
    },
    /// KL divergence `KL(dirty ‖ cleaned)` over the shared grid, with
    /// epsilon smoothing for empty cells ([`crate::KL_EPSILON`]).
    KlDivergence {
        /// Bins per attribute axis.
        bins: usize,
    },
    /// Mahalanobis distance between the mean tuples, under the dirty
    /// data's covariance.
    Mahalanobis,
    /// Worst-axis two-sample Kolmogorov–Smirnov statistic over the
    /// per-attribute marginals.
    KolmogorovSmirnov,
    /// Worst-axis two-sample Cramér–von Mises statistic over the
    /// per-attribute marginals.
    CramerVonMises,
    /// Energy distance between the grid-quantized tuple clouds (robust
    /// cover, normalized axis scaling — the EMD pipeline's defaults).
    Energy {
        /// Bins per attribute axis.
        bins: usize,
    },
}

impl DistortionMetric {
    /// The paper's default: EMD over a 6-per-axis grid with normalized
    /// axis scaling.
    ///
    /// Six bins per axis keeps every occupied-cell product (≤ 216² pairs)
    /// inside the exact transportation-simplex budget, so replication
    /// scores never mix exact and approximate solves.
    pub fn paper_default() -> Self {
        DistortionMetric::Emd {
            bins: 6,
            scaling: DistanceScaling::Normalized,
        }
    }

    /// Every implemented kernel at its default resolution, EMD (the
    /// paper's metric) first — the metric set behind the multi-metric
    /// ablations and the `score_multi` perf row.
    pub fn full_suite() -> Vec<DistortionMetric> {
        vec![
            DistortionMetric::paper_default(),
            DistortionMetric::KlDivergence { bins: 6 },
            DistortionMetric::Mahalanobis,
            DistortionMetric::KolmogorovSmirnov,
            DistortionMetric::CramerVonMises,
            DistortionMetric::Energy { bins: 6 },
        ]
    }

    /// The machine-readable kernel name recorded in results and JSON
    /// artifacts.
    pub fn name(&self) -> &'static str {
        self.kernel().name()
    }

    /// Builds the [`DistortionKernel`] this descriptor denotes.
    pub fn kernel(&self) -> Box<dyn DistortionKernel> {
        match *self {
            DistortionMetric::Emd { bins, scaling } => Box::new(EmdKernel { bins, scaling }),
            DistortionMetric::KlDivergence { bins } => Box::new(KlKernel { bins }),
            DistortionMetric::Mahalanobis => Box::new(MahalanobisKernel),
            DistortionMetric::KolmogorovSmirnov => Box::new(KsKernel),
            DistortionMetric::CramerVonMises => Box::new(CvmKernel),
            DistortionMetric::Energy { bins } => Box::new(EnergyKernel { bins }),
        }
    }
}

/// Pools a dataset into working-space rows: every record of every series,
/// each attribute pushed through its transform. Records keep NaN for
/// missing cells (downstream consumers decide how to treat them).
pub(crate) fn pooled_working_rows(
    data: &Dataset,
    transforms: &[AttributeTransform],
) -> Vec<Vec<f64>> {
    assert_eq!(
        transforms.len(),
        data.num_attributes(),
        "one transform per attribute"
    );
    let mut rows = Vec::with_capacity(data.num_records());
    for series in data.series() {
        for t in 0..series.len() {
            let row: Vec<f64> = transforms
                .iter()
                .enumerate()
                .map(|(a, tf)| tf.forward(series.get(a, t)))
                .collect();
            rows.push(row);
        }
    }
    rows
}

/// Statistical distortion `S(C, D) = d(D, D_C)` between a dirty data set
/// and its cleaned counterpart (Definition 1).
///
/// Both data sets are pooled "treating each time instance as a separate
/// data point" (§6.1) and mapped into working space by `transforms` before
/// the distance is evaluated.
pub fn statistical_distortion(
    dirty: &Dataset,
    cleaned: &Dataset,
    transforms: &[AttributeTransform],
    metric: DistortionMetric,
) -> Result<f64> {
    let rows_d = pooled_working_rows(dirty, transforms);
    let rows_c = pooled_working_rows(cleaned, transforms);
    distortion_from_rows(&rows_d, &rows_c, metric)
}

/// Distortion between already-pooled working-space rows — the materialized
/// reference path ([`DistortionKernel::score_rows`]); the engine's
/// incremental entry point is [`crate::PreparedKernel::score_patch`].
pub(crate) fn distortion_from_rows(
    rows_d: &[Vec<f64>],
    rows_c: &[Vec<f64>],
    metric: DistortionMetric,
) -> Result<f64> {
    metric.kernel().score_rows(rows_d, rows_c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    fn dataset(offset: f64) -> Dataset {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 2, 64);
        for t in 0..64 {
            let x = (t as f64 * 0.7).sin() * 3.0 + 10.0 + offset;
            s.set(0, t, x);
            s.set(1, t, 0.5 * x + 1.0);
        }
        Dataset::new(vec!["a", "b"], vec![s]).unwrap()
    }

    const ID: [AttributeTransform; 2] =
        [AttributeTransform::Identity, AttributeTransform::Identity];

    #[test]
    fn identical_datasets_have_near_zero_distortion() {
        let d = dataset(0.0);
        for metric in DistortionMetric::full_suite() {
            let s = statistical_distortion(&d, &d, &ID, metric).unwrap();
            assert!(s.abs() < 1e-6, "{metric:?} gave {s}");
        }
    }

    #[test]
    fn shifted_dataset_has_positive_distortion() {
        let d = dataset(0.0);
        let c = dataset(5.0);
        for metric in DistortionMetric::full_suite() {
            let s = statistical_distortion(&d, &c, &ID, metric).unwrap();
            assert!(s > 0.01, "{metric:?} gave {s}");
        }
    }

    #[test]
    fn metric_names_are_stable() {
        let names: Vec<&'static str> = DistortionMetric::full_suite()
            .iter()
            .map(DistortionMetric::name)
            .collect();
        assert_eq!(names, ["emd", "kl", "mahalanobis", "ks", "cvm", "energy"]);
    }

    #[test]
    fn distortion_grows_with_shift_under_emd() {
        let d = dataset(0.0);
        let near = statistical_distortion(
            &d,
            &dataset(1.0),
            &ID,
            DistortionMetric::Emd {
                bins: 16,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        let far = statistical_distortion(
            &d,
            &dataset(8.0),
            &ID,
            DistortionMetric::Emd {
                bins: 16,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn transforms_change_the_working_space() {
        let d = dataset(0.0);
        let c = dataset(3.0);
        let raw = statistical_distortion(
            &d,
            &c,
            &ID,
            DistortionMetric::Emd {
                bins: 8,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        let logt = statistical_distortion(
            &d,
            &c,
            &[AttributeTransform::log(), AttributeTransform::Identity],
            DistortionMetric::Emd {
                bins: 8,
                scaling: DistanceScaling::Raw,
            },
        )
        .unwrap();
        // Log compresses the axis, so the raw-space distance shrinks.
        assert!(logt < raw, "log {logt} vs raw {raw}");
    }

    #[test]
    fn missing_cells_are_tolerated() {
        let d = dataset(0.0);
        let mut c = dataset(0.0);
        c.series_mut()[0].set_missing(0, 5);
        c.series_mut()[0].set_missing(1, 9);
        for metric in DistortionMetric::full_suite() {
            let s = statistical_distortion(&d, &c, &ID, metric).unwrap();
            assert!(s.is_finite() && s >= 0.0, "{metric:?} gave {s}");
        }
    }

    #[test]
    fn emd_distortion_is_symmetric() {
        let d = dataset(0.0);
        let c = dataset(2.5);
        let m = DistortionMetric::paper_default();
        let ab = statistical_distortion(&d, &c, &ID, m).unwrap();
        let ba = statistical_distortion(&c, &d, &ID, m).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn pooled_rows_shape() {
        let d = dataset(0.0);
        let rows = pooled_working_rows(&d, &ID);
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[0].len(), 2);
    }
}
