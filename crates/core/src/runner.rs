use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0), f(1), …, f(count − 1)` across `threads` worker threads and
/// returns the results in index order.
///
/// Replications are embarrassingly parallel — each carries its own derived
/// RNG stream — so the experiment runner fans them out with a simple
/// work-stealing counter over a `std::thread::scope`. `threads == 0`
/// selects the machine's available parallelism. Results are reassembled in
/// index order, so the output is independent of the thread count.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(count);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    // One preallocated slot per task, written by index: workers never
    // contend on a shared results vector, and the output needs no sort —
    // slot order *is* index order.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock() = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            // A panicking worker propagates out of the scope join above,
            // so reaching this line proves every slot was written; the
            // signature (plain `Vec<T>`, shared by dozens of callers) has
            // no error channel to thread a structured failure through.
            slot.into_inner()
                .expect("every slot is filled by its worker") // sd-lint: allow(P001, scope join proves every slot was written; Vec signature has no error channel)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_order() {
        let out = parallel_map(100, 4, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn zero_count_is_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn auto_thread_selection() {
        let out = parallel_map(8, 0, |i| i);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn heavier_work_is_distributed() {
        // Verifies completeness under contention rather than scheduling.
        let out = parallel_map(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..1000 {
                acc = acc.wrapping_add((i as u64).wrapping_mul(k));
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
