use std::fmt;

/// Errors surfaced by the experimental framework.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkError {
    /// The ideal partition is empty: no series meets the cleanliness rule.
    NoIdealData {
        /// The record-level threshold that was applied.
        threshold: f64,
    },
    /// The dirty partition is empty: everything met the cleanliness rule.
    NoDirtyData,
    /// A distortion computation failed.
    Distortion(String),
    /// Invalid experiment configuration.
    InvalidConfig(String),
    /// A stochastic draw left the observed sample empty — every value went
    /// missing, so there is nothing to treat or compare against.
    EmptyObserved {
        /// Requested sample size.
        n: usize,
        /// Requested missing fraction.
        missing_fraction: f64,
    },
    /// An internal invariant was violated. These arms were panics before
    /// the sd-lint P001 gate; a long-lived service must surface even
    /// "impossible" states as errors rather than die shard-by-shard.
    /// Seeing one is always a framework bug worth reporting.
    Internal(String),
    /// A streaming ingestion shard terminated abnormally — it panicked or
    /// its channel closed mid-stream. The serving layer surfaces this as a
    /// structured failure of the whole run instead of wedging producers on
    /// a dead channel.
    ShardFailed {
        /// Index of the shard that died.
        shard: usize,
        /// What the service observed.
        detail: String,
    },
    /// A streaming evaluator worker terminated abnormally — it panicked
    /// while calibrating or scoring a window. The serving layer's reorder
    /// stage stops publishing at the gap and `finish` surfaces this
    /// instead of hanging on a window that will never arrive.
    EvaluatorFailed {
        /// Index of the evaluator worker that died.
        evaluator: usize,
        /// What the service observed.
        detail: String,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::NoIdealData { threshold } => write!(
                f,
                "no series meets the ideal rule (< {:.0} % of each glitch type)",
                threshold * 100.0
            ),
            FrameworkError::NoDirtyData => {
                write!(f, "no dirty series to clean — everything is already ideal")
            }
            FrameworkError::Distortion(msg) => write!(f, "distortion computation failed: {msg}"),
            FrameworkError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FrameworkError::EmptyObserved {
                n,
                missing_fraction,
            } => write!(
                f,
                "observed sample is empty: all {n} draws went missing \
                 (missing fraction {missing_fraction})"
            ),
            FrameworkError::Internal(msg) => {
                write!(f, "internal invariant violated (framework bug): {msg}")
            }
            FrameworkError::ShardFailed { shard, detail } => {
                write!(f, "streaming shard {shard} failed: {detail}")
            }
            FrameworkError::EvaluatorFailed { evaluator, detail } => {
                write!(f, "streaming evaluator {evaluator} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FrameworkError::NoIdealData { threshold: 0.05 }
            .to_string()
            .contains("5 %"));
        assert!(FrameworkError::NoDirtyData.to_string().contains("dirty"));
        assert!(FrameworkError::Distortion("x".into())
            .to_string()
            .contains("x"));
        assert!(FrameworkError::InvalidConfig("y".into())
            .to_string()
            .contains("y"));
        assert!(FrameworkError::EmptyObserved {
            n: 12,
            missing_fraction: 0.99
        }
        .to_string()
        .contains("12 draws"));
        assert!(FrameworkError::ShardFailed {
            shard: 3,
            detail: "panicked".into()
        }
        .to_string()
        .contains("shard 3"));
        assert!(FrameworkError::EvaluatorFailed {
            evaluator: 2,
            detail: "panicked".into()
        }
        .to_string()
        .contains("evaluator 2"));
    }
}
