//! Streaming/windowed experiment mode — the §3.3 online formulation as a
//! first-class workload.
//!
//! The paper frames online detection as `f_O(X^t | X^{F^w_t})`: judge each
//! arrival against its `w`-step history. This module promotes that
//! formulation from a detector demo into a full cleaning-evaluation
//! pipeline running on the staged engine ([`crate::engine`]): groups are
//! sliding windows of the stream instead of replications, and every
//! `(window, strategy)` unit scores glitch improvement and statistical
//! distortion **within its window**, yielding per-window trajectories.
//!
//! Per window, calibration is self-contained (no ideal partition exists in
//! a stream):
//!
//! 1. a [`WindowedOutlierDetector`] screens every in-window arrival against
//!    its own history (which extends *before* the window — history is the
//!    stream, not the slice), and constraint/missing checks flag the rest;
//! 2. cells surviving the screen form the window's **pseudo-ideal
//!    reference**, on which 3-σ limits and the cleaning context are fitted
//!    — the windowed analogue of calibrating on `D^i_I`;
//! 3. the window slice is annotated, cleaned by each strategy, re-detected,
//!    and scored exactly like a batch replication (shared artifacts,
//!    cell-patch cleaning, cached EMD signatures).

use crate::engine::{evaluate_unit, run_staged, share_replication, TaskExecutor};
use crate::{
    DistortionMetric, FrameworkError, ReplicationArtifacts, Result, StrategyOutcome,
    ThreadPoolExecutor,
};
use sd_cleaning::{CleaningContext, CleaningOutcome, CompositeStrategy};
use sd_data::Dataset;
use sd_glitch::{
    ConstraintSet, GlitchDetector, GlitchReport, GlitchWeights, OutlierDetector,
    WindowedOutlierDetector,
};
use sd_stats::AttributeTransform;

/// Configuration of a windowed experiment.
#[derive(Debug, Clone)]
pub struct WindowedConfig {
    /// Window length `w` (time steps per window, and the detector's history
    /// depth).
    pub window: usize,
    /// Slide between consecutive window starts.
    pub stride: usize,
    /// σ multiplier for the history screen and the window-fitted limits.
    pub sigma_k: f64,
    /// Minimum history points before the streaming screen flags anything.
    pub min_history: usize,
    /// Base seed for strategy randomness (per-window streams derive from
    /// `(seed, window, strategy)`).
    pub seed: u64,
    /// Glitch-type weights for the improvement score.
    pub weights: GlitchWeights,
    /// Inconsistency rules.
    pub constraints: ConstraintSet,
    /// Whether the natural-log factor applies to Attribute 1.
    pub log_transform_attr1: bool,
    /// Distortion distance.
    pub metric: DistortionMetric,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl WindowedConfig {
    /// Paper-flavoured defaults around a `(window, stride)` geometry:
    /// 3-σ limits, paper glitch weights and constraint rules, log factor
    /// on, EMD metric.
    pub fn paper_default(window: usize, stride: usize, seed: u64) -> Self {
        WindowedConfig {
            window,
            stride,
            sigma_k: 3.0,
            min_history: 5,
            seed,
            weights: GlitchWeights::paper(),
            constraints: ConstraintSet::paper_rules(0, 2),
            log_transform_attr1: true,
            metric: DistortionMetric::paper_default(),
            threads: 0,
        }
    }

    /// Per-attribute transforms implied by the log factor.
    pub fn transforms(&self, num_attributes: usize) -> Vec<AttributeTransform> {
        (0..num_attributes)
            .map(|a| {
                if a == 0 && self.log_transform_attr1 {
                    AttributeTransform::log()
                } else {
                    AttributeTransform::Identity
                }
            })
            .collect()
    }
}

/// One `(window, strategy)` evaluation — a point on a strategy's
/// improvement/distortion trajectory.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// Window number (0-based, in stream order).
    pub window_index: usize,
    /// First time step of the window (inclusive).
    pub start: usize,
    /// One past the last time step.
    pub end: usize,
    /// Strategy display name.
    pub strategy: String,
    /// Index of the strategy in the submitted list.
    pub strategy_index: usize,
    /// Glitch improvement within the window.
    pub improvement: f64,
    /// Statistical distortion within the window.
    pub distortion: f64,
    /// What the cleaning pass did in this window.
    pub cleaning: CleaningOutcome,
    /// Glitch percentages of the window before treatment.
    pub dirty_report: GlitchReport,
    /// Glitch percentages after treatment.
    pub treated_report: GlitchReport,
}

/// All outcomes of a windowed experiment, in `(window, strategy)` order.
#[derive(Debug, Clone)]
pub struct WindowedResult {
    outcomes: Vec<WindowOutcome>,
    num_windows: usize,
}

impl WindowedResult {
    /// Every `(window, strategy)` outcome.
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    /// Number of windows evaluated.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// One strategy's per-window `(window_index, improvement, distortion)`
    /// trajectory, in stream order.
    pub fn trajectory(&self, strategy_index: usize) -> Vec<(usize, f64, f64)> {
        self.outcomes
            .iter()
            .filter(|o| o.strategy_index == strategy_index)
            .map(|o| (o.window_index, o.improvement, o.distortion))
            .collect()
    }
}

/// The windowed experiment entry point.
#[derive(Debug, Clone)]
pub struct WindowedExperiment {
    config: WindowedConfig,
}

impl WindowedExperiment {
    /// Creates a windowed experiment from a configuration.
    pub fn new(config: WindowedConfig) -> Self {
        WindowedExperiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &WindowedConfig {
        &self.config
    }

    /// Number of full windows the data's horizon admits.
    pub fn num_windows(&self, data: &Dataset) -> usize {
        let horizon = data
            .series()
            .iter()
            .map(sd_data::TimeSeries::len)
            .max()
            .unwrap_or(0);
        if self.config.window == 0 || self.config.stride == 0 || horizon < self.config.window {
            0
        } else {
            (horizon - self.config.window) / self.config.stride + 1
        }
    }

    /// Slides the window over `data` and scores every `(window, strategy)`
    /// unit on the staged engine.
    pub fn run(&self, data: &Dataset, strategies: &[CompositeStrategy]) -> Result<WindowedResult> {
        self.run_with(
            data,
            strategies,
            &ThreadPoolExecutor::new(self.config.threads),
        )
    }

    /// Like [`WindowedExperiment::run`], on a caller-supplied executor.
    pub fn run_with<E: TaskExecutor>(
        &self,
        data: &Dataset,
        strategies: &[CompositeStrategy],
        executor: &E,
    ) -> Result<WindowedResult> {
        if self.config.window == 0 || self.config.stride == 0 {
            return Err(FrameworkError::InvalidConfig(
                "window and stride must be positive".into(),
            ));
        }
        let num_windows = self.num_windows(data);
        if num_windows == 0 {
            return Err(FrameworkError::InvalidConfig(
                "data horizon shorter than one window".into(),
            ));
        }
        let transforms = self.config.transforms(data.num_attributes());
        let unit_results = run_staged(
            executor,
            num_windows,
            strategies.len(),
            |w| share_replication(self.window_artifacts(data, w, &transforms), &transforms),
            |shared, w, s| {
                evaluate_unit(
                    shared,
                    &transforms,
                    self.config.metric,
                    self.config.weights,
                    self.config.seed,
                    w,
                    s,
                    &strategies[s],
                )
                .map(|outcome| self.window_outcome(outcome, w))
            },
        );
        let mut outcomes = Vec::with_capacity(unit_results.len());
        for result in unit_results {
            outcomes.push(result?);
        }
        Ok(WindowedResult {
            outcomes,
            num_windows,
        })
    }

    /// Calibrates one window: streaming screen → pseudo-ideal reference →
    /// window-fitted detector/context → annotated slice.
    fn window_artifacts(
        &self,
        data: &Dataset,
        w: usize,
        transforms: &[AttributeTransform],
    ) -> ReplicationArtifacts {
        let start = w * self.config.stride;
        let end = start + self.config.window;
        let slice = data.window_slice(start, end);

        let mut screen = WindowedOutlierDetector::new(self.config.window, self.config.sigma_k);
        screen.min_history = self.config.min_history;
        let structural = GlitchDetector::new(self.config.constraints.clone(), None);

        // Pseudo-ideal reference: in-window cells surviving the missing /
        // constraint / history screens. History windows run on the full
        // stream, so they reach back past the window start.
        let mut reference = slice.clone();
        for (i, window_series) in slice.series().iter().enumerate() {
            let flags = structural.detect_series(window_series);
            let stream_series = data.series_at(i);
            for a in 0..slice.num_attributes() {
                for t in 0..window_series.len() {
                    if flags.any(a, t) || screen.is_outlier(stream_series, &[], a, start + t) {
                        reference.series_mut()[i].set_missing(a, t);
                    }
                }
            }
        }

        let outliers = OutlierDetector::fit(&reference, transforms, self.config.sigma_k);
        let context = CleaningContext::from_detector(&reference, transforms, &outliers);
        let detector = GlitchDetector::new(self.config.constraints.clone(), Some(outliers));
        let dirty_matrices = detector.detect_dataset(&slice);
        ReplicationArtifacts {
            replication: w,
            dirty: slice,
            ideal: reference,
            detector,
            context,
            dirty_matrices,
        }
    }

    fn window_outcome(&self, outcome: StrategyOutcome, w: usize) -> WindowOutcome {
        let start = w * self.config.stride;
        WindowOutcome {
            window_index: w,
            start,
            end: start + self.config.window,
            strategy: outcome.strategy,
            strategy_index: outcome.strategy_index,
            improvement: outcome.improvement,
            distortion: outcome.distortion,
            cleaning: outcome.cleaning,
            dirty_report: outcome.dirty_report,
            treated_report: outcome.treated_report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialExecutor;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn data() -> Dataset {
        generate(&NetsimConfig::small(19)).dataset
    }

    fn config() -> WindowedConfig {
        let mut c = WindowedConfig::paper_default(20, 10, 7);
        c.threads = 2;
        c
    }

    #[test]
    fn window_count_follows_geometry() {
        let d = data(); // small scale: 60 steps
        let e = WindowedExperiment::new(config());
        assert_eq!(e.num_windows(&d), 5); // starts 0,10,20,30,40
        let mut tight = config();
        tight.window = 60;
        assert_eq!(WindowedExperiment::new(tight).num_windows(&d), 1);
        let mut too_long = config();
        too_long.window = 61;
        assert_eq!(WindowedExperiment::new(too_long).num_windows(&d), 0);
    }

    #[test]
    fn emits_one_outcome_per_window_and_strategy() {
        let d = data();
        let strategies = [paper_strategy(3), paper_strategy(5)];
        let result = WindowedExperiment::new(config())
            .run(&d, &strategies)
            .unwrap();
        assert_eq!(result.num_windows(), 5);
        assert_eq!(result.outcomes().len(), 10);
        for o in result.outcomes() {
            assert!(o.improvement.is_finite());
            assert!(o.distortion.is_finite() && o.distortion >= 0.0);
            assert_eq!(o.end - o.start, 20);
            assert!(o.dirty_report.total_records > 0);
        }
        let traj = result.trajectory(1);
        assert_eq!(traj.len(), 5);
        assert_eq!(
            traj.iter().map(|&(w, _, _)| w).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        // Cleaning must do real work in at least one window.
        assert!(result
            .outcomes()
            .iter()
            .any(|o| o.cleaning.cells_changed() > 0));
        assert!(result.outcomes().iter().any(|o| o.improvement > 0.0));
    }

    #[test]
    fn windowed_runs_are_deterministic_across_executors() {
        let d = data();
        let strategies = [paper_strategy(1), paper_strategy(5)];
        let e = WindowedExperiment::new(config());
        let a = e.run(&d, &strategies).unwrap();
        let b = e.run_with(&d, &strategies, &SerialExecutor).unwrap();
        assert_eq!(a.outcomes().len(), b.outcomes().len());
        for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
            assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
            assert_eq!(x.distortion.to_bits(), y.distortion.to_bits());
            assert_eq!(x.cleaning, y.cleaning);
        }
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let d = data();
        let mut c = config();
        c.stride = 0;
        assert!(WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .is_err());
        let mut c = config();
        c.window = 600;
        assert!(WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .is_err());
    }
}
