//! Streaming/windowed experiment mode — the §3.3 online formulation as a
//! first-class workload.
//!
//! The paper frames online detection as `f_O(X^t | X^{F^w_t})`: judge each
//! arrival against its `w`-step history. This module promotes that
//! formulation from a detector demo into a full cleaning-evaluation
//! pipeline running on the staged engine ([`crate::engine`]): groups are
//! sliding windows of the stream instead of replications, and every
//! `(window, strategy)` unit scores glitch improvement and statistical
//! distortion **within its window**, yielding per-window trajectories.
//!
//! Per window, calibration is self-contained (no ideal partition exists in
//! a stream):
//!
//! 1. a [`WindowedOutlierDetector`] screens every in-window arrival against
//!    its own history (which extends *before* the window — history is the
//!    stream, not the slice), and constraint/missing checks flag the rest;
//! 2. cells surviving the screen form the window's **pseudo-ideal
//!    reference**, on which 3-σ limits and the cleaning context are fitted
//!    — the windowed analogue of calibrating on `D^i_I`;
//! 3. the window slice is annotated, cleaned by each strategy, re-detected,
//!    and scored exactly like a batch replication (shared artifacts,
//!    cell-patch cleaning, cached EMD signatures).
//!
//! # Topology neighbour pooling
//!
//! The paper's full online form is `f_O(X^t | X^{F^w_t}, X^{F^w_t}_N)`:
//! the screen may condition on the history of *neighbouring towers*, not
//! just the sector's own past. [`NeighborPooling`] selects how that
//! neighbourhood is assembled from a [`Topology`] ([`WindowedConfig::topology`]):
//! own-history only (the default, bit-identical to the pre-topology
//! behaviour), equal-weight `k`-hop pooling (1 = same tower, 2 = same RNC),
//! or distance-weighted pooling. Neighbour lookups are resolved once per
//! run; the per-window screen results are recorded as [`WindowScreen`]
//! rows so per-node trajectories stay observable (and testable for
//! bit-identity across thread counts).

use crate::engine::{evaluate_unit, run_staged, share_replication, TaskExecutor};
use crate::{
    DistortionMetric, FrameworkError, MetricScore, ReplicationArtifacts, Result, StrategyOutcome,
    ThreadPoolExecutor,
};
use parking_lot::Mutex;
use sd_cleaning::{CleaningContext, CleaningOutcome, CompositeStrategy};
use sd_data::{Dataset, NodeId, NodeState, TimeSeries, Topology};
use sd_glitch::{
    ConstraintSet, GlitchDetector, GlitchReport, GlitchWeights, OutlierDetector,
    WindowedOutlierDetector,
};
use sd_stats::AttributeTransform;

/// How the streaming screen pools history across the network topology
/// (§3.3's neighbour conditioning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborPooling {
    /// Screen every sector against its own history only. This is the
    /// default and is bit-identical to the pre-topology windowed mode.
    OwnOnly,
    /// Pool the history of every sector within `hops` of the screened one
    /// at equal weight: 1 = collocated sectors (same tower), 2 = every
    /// sector under the same RNC, ≥ 3 = the whole network.
    KHop {
        /// Neighbourhood radius in [`Topology::hop_distance`] units.
        hops: u32,
    },
    /// Distance-weighted pooling: own history at weight 1, collocated
    /// (same-tower) sectors at `tower`, same-RNC sectors at `rnc`.
    /// Non-positive weights drop that ring entirely.
    Weighted {
        /// Weight of same-tower neighbour history.
        tower: f64,
        /// Weight of same-RNC (other-tower) neighbour history.
        rnc: f64,
    },
}

/// What one window's calibration screen did, per series — the per-node
/// view of the §3.3 screen (windows × nodes trajectories).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowScreen {
    /// Window number (0-based, in stream order).
    pub window_index: usize,
    /// First time step of the window (inclusive).
    pub start: usize,
    /// One past the last time step.
    pub end: usize,
    /// Per series: in-window cells excluded from the pseudo-ideal by the
    /// streaming history screen (own or pooled neighbour history).
    pub history_flagged: Vec<usize>,
    /// Per series: in-window cells excluded by the structural
    /// missing/constraint checks (these pre-empt the history screen).
    pub structural_flagged: Vec<usize>,
}

/// Configuration of a windowed experiment.
#[derive(Debug, Clone)]
pub struct WindowedConfig {
    /// Window length `w` (time steps per window, and the detector's history
    /// depth).
    pub window: usize,
    /// Slide between consecutive window starts.
    pub stride: usize,
    /// σ multiplier for the history screen and the window-fitted limits.
    pub sigma_k: f64,
    /// Minimum history points before the streaming screen flags anything.
    pub min_history: usize,
    /// Base seed for strategy randomness (per-window streams derive from
    /// `(seed, window, strategy)`).
    pub seed: u64,
    /// Glitch-type weights for the improvement score.
    pub weights: GlitchWeights,
    /// Inconsistency rules.
    pub constraints: ConstraintSet,
    /// Whether the natural-log factor applies to Attribute 1.
    pub log_transform_attr1: bool,
    /// Distortion distances, all scored per `(window, strategy)` unit from
    /// one cleaning pass; `metrics[0]` is the primary metric reported in
    /// [`WindowOutcome::distortion`]. Must be non-empty.
    pub metrics: Vec<DistortionMetric>,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// How the history screen pools neighbour history.
    pub pooling: NeighborPooling,
    /// The network topology behind the pooling policy. Required (and only
    /// consulted) when `pooling` is not [`NeighborPooling::OwnOnly`];
    /// every series' node must lie inside it.
    pub topology: Option<Topology>,
}

impl WindowedConfig {
    /// Paper-flavoured defaults around a `(window, stride)` geometry:
    /// 3-σ limits, paper glitch weights and constraint rules, log factor
    /// on, EMD metric.
    pub fn paper_default(window: usize, stride: usize, seed: u64) -> Self {
        WindowedConfig {
            window,
            stride,
            sigma_k: 3.0,
            min_history: 5,
            seed,
            weights: GlitchWeights::paper(),
            constraints: ConstraintSet::paper_rules(0, 2),
            log_transform_attr1: true,
            metrics: vec![DistortionMetric::paper_default()],
            threads: 0,
            pooling: NeighborPooling::OwnOnly,
            topology: None,
        }
    }

    /// Enables topology neighbour pooling: the history screen conditions
    /// on neighbour history selected by `pooling` over `topology`.
    pub fn with_topology(mut self, topology: Topology, pooling: NeighborPooling) -> Self {
        self.topology = Some(topology);
        self.pooling = pooling;
        self
    }

    /// Per-attribute transforms implied by the log factor.
    pub fn transforms(&self, num_attributes: usize) -> Vec<AttributeTransform> {
        (0..num_attributes)
            .map(|a| {
                if a == 0 && self.log_transform_attr1 {
                    AttributeTransform::log()
                } else {
                    AttributeTransform::Identity
                }
            })
            .collect()
    }
}

/// One `(window, strategy)` evaluation — a point on a strategy's
/// improvement/distortion trajectory.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// Window number (0-based, in stream order).
    pub window_index: usize,
    /// First time step of the window (inclusive).
    pub start: usize,
    /// One past the last time step.
    pub end: usize,
    /// Strategy display name.
    pub strategy: String,
    /// Index of the strategy in the submitted list.
    pub strategy_index: usize,
    /// Glitch improvement within the window.
    pub improvement: f64,
    /// Statistical distortion within the window under the primary metric
    /// (`metrics[0]`; equal to `distortions[0].value`).
    pub distortion: f64,
    /// Per-metric distortions, in [`WindowedConfig::metrics`] order.
    pub distortions: Vec<MetricScore>,
    /// What the cleaning pass did in this window.
    pub cleaning: CleaningOutcome,
    /// Glitch percentages of the window before treatment.
    pub dirty_report: GlitchReport,
    /// Glitch percentages after treatment.
    pub treated_report: GlitchReport,
}

/// All outcomes of a windowed experiment, in `(window, strategy)` order.
#[derive(Debug, Clone)]
pub struct WindowedResult {
    outcomes: Vec<WindowOutcome>,
    screens: Vec<WindowScreen>,
    num_windows: usize,
    metrics: Vec<&'static str>,
}

impl WindowedResult {
    /// Every `(window, strategy)` outcome.
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    /// Number of windows evaluated.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// The scored metric names, in [`WindowedConfig::metrics`] order
    /// (index `i` here matches `distortions[i]` in every outcome).
    pub fn metrics(&self) -> &[&'static str] {
        &self.metrics
    }

    /// Per-window calibration screen results, in stream order.
    pub fn screens(&self) -> &[WindowScreen] {
        &self.screens
    }

    /// One strategy's per-window `(window_index, improvement, distortion)`
    /// trajectory under the primary metric, in stream order.
    pub fn trajectory(&self, strategy_index: usize) -> Vec<(usize, f64, f64)> {
        self.trajectory_for_metric(strategy_index, 0)
    }

    /// One strategy's per-window trajectory under the `metric_index`-th
    /// requested metric (see [`WindowedResult::metrics`]), in stream
    /// order. Empty for an unknown strategy or metric index (matching
    /// [`crate::ExperimentResult::mean_point_for_metric`]'s `None`).
    pub fn trajectory_for_metric(
        &self,
        strategy_index: usize,
        metric_index: usize,
    ) -> Vec<(usize, f64, f64)> {
        if metric_index >= self.metrics.len() {
            return Vec::new();
        }
        self.outcomes
            .iter()
            .filter(|o| o.strategy_index == strategy_index)
            .map(|o| {
                (
                    o.window_index,
                    o.improvement,
                    o.distortions[metric_index].value,
                )
            })
            .collect()
    }

    /// One node's per-window `(window_index, history_flagged,
    /// structural_flagged)` screen trajectory, in stream order.
    pub fn node_trajectory(&self, series_index: usize) -> Vec<(usize, usize, usize)> {
        self.screens
            .iter()
            .map(|s| {
                (
                    s.window_index,
                    s.history_flagged[series_index],
                    s.structural_flagged[series_index],
                )
            })
            .collect()
    }
}

/// The windowed experiment entry point.
///
/// ```
/// use sd_core::{NeighborPooling, WindowedConfig, WindowedExperiment};
/// use sd_cleaning::paper_strategy;
/// use sd_netsim::{generate, NetsimConfig};
///
/// // 100 sectors × 60 steps; screen each arrival against the pooled
/// // history of its tower (§3.3's neighbour conditioning).
/// let config = NetsimConfig::small(7);
/// let data = generate(&config).dataset;
/// let windowed = WindowedConfig::paper_default(30, 30, 7)
///     .with_topology(config.topology, NeighborPooling::KHop { hops: 1 });
/// let result = WindowedExperiment::new(windowed)
///     .run(&data, &[paper_strategy(5)])
///     .unwrap();
/// assert_eq!(result.num_windows(), 2);
/// // One (improvement, distortion) point per window, and a per-node
/// // screen trajectory for every sector.
/// assert_eq!(result.trajectory(0).len(), 2);
/// assert_eq!(result.node_trajectory(0).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedExperiment {
    config: WindowedConfig,
}

impl WindowedExperiment {
    /// Creates a windowed experiment from a configuration.
    pub fn new(config: WindowedConfig) -> Self {
        WindowedExperiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &WindowedConfig {
        &self.config
    }

    /// Number of full windows the data's horizon admits.
    pub fn num_windows(&self, data: &Dataset) -> usize {
        let horizon = data
            .series()
            .iter()
            .map(sd_data::TimeSeries::len)
            .max()
            .unwrap_or(0);
        if self.config.window == 0 || self.config.stride == 0 || horizon < self.config.window {
            0
        } else {
            (horizon - self.config.window) / self.config.stride + 1
        }
    }

    /// Slides the window over `data` and scores every `(window, strategy)`
    /// unit on the staged engine.
    pub fn run(&self, data: &Dataset, strategies: &[CompositeStrategy]) -> Result<WindowedResult> {
        self.run_with(
            data,
            strategies,
            &ThreadPoolExecutor::new(self.config.threads),
        )
    }

    /// Like [`WindowedExperiment::run`], on a caller-supplied executor.
    pub fn run_with<E: TaskExecutor>(
        &self,
        data: &Dataset,
        strategies: &[CompositeStrategy],
        executor: &E,
    ) -> Result<WindowedResult> {
        if self.config.window == 0 || self.config.stride == 0 {
            return Err(FrameworkError::InvalidConfig(
                "window and stride must be positive".into(),
            ));
        }
        if self.config.metrics.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "at least one distortion metric is required".into(),
            ));
        }
        let metric_names: Vec<&'static str> = self
            .config
            .metrics
            .iter()
            .map(DistortionMetric::name)
            .collect();
        let num_windows = self.num_windows(data);
        if num_windows == 0 {
            return Err(FrameworkError::InvalidConfig(
                "data horizon shorter than one window".into(),
            ));
        }
        if strategies.is_empty() {
            // No units means no window group ever builds (and no screens);
            // keep the historical Ok-with-no-outcomes contract.
            return Ok(WindowedResult {
                outcomes: Vec::new(),
                screens: Vec::new(),
                num_windows,
                metrics: metric_names,
            });
        }
        let transforms = self.config.transforms(data.num_attributes());
        let attribute_names: Vec<String> =
            data.attributes().iter().map(|a| a.name.clone()).collect();
        let neighbors = self.neighbor_views(data)?;
        // The per-window screen is a pure function of the window, computed
        // inside the group-slot build (once per window, whichever unit
        // arrives first); the slots publish it here so scheduling cannot
        // reorder or duplicate rows.
        let screens: Mutex<Vec<Option<WindowScreen>>> =
            Mutex::new((0..num_windows).map(|_| None).collect());
        let unit_results = run_staged(
            executor,
            num_windows,
            strategies.len(),
            |w| {
                let calibrated = window_segments(&self.config, data, w).and_then(|segments| {
                    calibrate_window(&self.config, &attribute_names, w, &segments, &neighbors)
                });
                calibrated.map(|(artifacts, screen)| {
                    screens.lock()[w] = Some(screen);
                    share_replication(artifacts, &transforms, &self.config.metrics)
                })
            },
            |shared, w, s| match shared {
                Ok(shared) => evaluate_unit(
                    shared,
                    &transforms,
                    self.config.weights,
                    self.config.seed,
                    w,
                    s,
                    &strategies[s],
                )
                .map(|outcome| window_outcome(&self.config, outcome, w)),
                Err(e) => Err(e.clone()),
            },
        );
        let mut outcomes = Vec::with_capacity(unit_results.len());
        for result in unit_results {
            outcomes.push(result?);
        }
        let mut built_screens = Vec::with_capacity(num_windows);
        for slot in screens.into_inner() {
            built_screens.push(slot.ok_or_else(|| {
                FrameworkError::Internal(
                    "a window group finished without building its screen slot".into(),
                )
            })?);
        }
        let screens = built_screens;
        Ok(WindowedResult {
            outcomes,
            screens,
            num_windows,
            metrics: metric_names,
        })
    }

    /// Resolves the pooling policy into per-series neighbour views. See
    /// [`resolve_neighbor_views`] — this merely collects the data's node
    /// order.
    fn neighbor_views(&self, data: &Dataset) -> Result<Vec<Vec<(usize, f64)>>> {
        let nodes: Vec<NodeId> = data.series().iter().map(TimeSeries::node).collect();
        resolve_neighbor_views(self.config.pooling, self.config.topology.as_ref(), &nodes)
    }
}

/// Resolves a pooling policy into per-series neighbour views:
/// `(series index, weight)` pairs, indices into `nodes` order.
///
/// Resolved once per run — every window reuses the same views, since
/// topology (unlike history) does not change along the stream. The batch
/// [`WindowedExperiment`] and the `sd-serve` streaming service both call
/// this, so a stream and its batch replay screen against identical
/// neighbourhoods.
pub fn resolve_neighbor_views(
    pooling: NeighborPooling,
    topology: Option<&Topology>,
    nodes: &[NodeId],
) -> Result<Vec<Vec<(usize, f64)>>> {
    if matches!(pooling, NeighborPooling::OwnOnly) {
        return Ok(vec![Vec::new(); nodes.len()]);
    }
    let topology = topology.ok_or_else(|| {
        FrameworkError::InvalidConfig(
            "neighbour pooling requires a topology (WindowedConfig::topology)".into(),
        )
    })?;
    // Node → series index, so neighbour NodeIds resolve to data series.
    let mut index_of = vec![usize::MAX; topology.num_sectors()];
    for (i, &node) in nodes.iter().enumerate() {
        if !topology.contains(node) {
            return Err(FrameworkError::InvalidConfig(format!(
                "series {i} ({node}) lies outside the configured topology"
            )));
        }
        let slot = &mut index_of[topology.sector_index(node)];
        if *slot != usize::MAX {
            return Err(FrameworkError::InvalidConfig(format!(
                "series {i} and {} both claim node {node}; neighbour \
                 pooling needs one series per sector",
                *slot
            )));
        }
        *slot = i;
    }
    let mut views = Vec::with_capacity(nodes.len());
    for &node in nodes {
        let view: Vec<(usize, f64)> = match pooling {
            NeighborPooling::OwnOnly => {
                // Early-returned at the top of this function; surfaced
                // as a structured error rather than a panic (P001).
                return Err(FrameworkError::Internal(
                    "own-only pooling reached neighbour resolution".into(),
                ));
            }
            NeighborPooling::KHop { hops } => topology
                .khop_neighbors(node, hops)
                .into_iter()
                .filter_map(|m| {
                    let j = index_of[topology.sector_index(m)];
                    (j != usize::MAX).then_some((j, 1.0))
                })
                .collect(),
            NeighborPooling::Weighted { tower, rnc } => topology
                .khop_neighbors(node, 2)
                .into_iter()
                .filter_map(|m| {
                    let w = match topology.hop_distance(node, m) {
                        1 => tower,
                        _ => rnc,
                    };
                    if w <= 0.0 {
                        return None;
                    }
                    let j = index_of[topology.sector_index(m)];
                    (j != usize::MAX).then_some((j, w))
                })
                .collect(),
        };
        views.push(view);
    }
    Ok(views)
}

/// The retained-history segment `[base, end)` every series must supply to
/// [`calibrate_window`] for window `w`: `base` reaches one window length
/// before the window start (the screen's history depth), clipped at the
/// stream origin. Returns `(start, end, base)`.
pub fn window_bounds(config: &WindowedConfig, w: usize) -> (usize, usize, usize) {
    let start = w * config.stride;
    let end = start + config.window;
    (start, end, start.saturating_sub(config.window))
}

/// Replays each series of `data` through a bounded [`NodeState`] ring and
/// materializes window `w`'s `[base, end)` segment — the batch path's
/// segment source, shared byte-for-byte with the streaming shards.
fn window_segments(config: &WindowedConfig, data: &Dataset, w: usize) -> Result<Vec<TimeSeries>> {
    let (_, end, base) = window_bounds(config, w);
    let capacity = 2 * config.window;
    data.series()
        .iter()
        .map(|series| {
            NodeState::from_series(series, capacity, base, end)
                .materialize(base, end)
                .map_err(|e| FrameworkError::Internal(format!("window {w} segment: {e}")))
        })
        .collect()
}

/// Calibrates one window from per-series history segments: streaming
/// screen → pseudo-ideal reference → window-fitted detector/context →
/// annotated slice. Also reports what the screen did per series
/// ([`WindowScreen`]).
///
/// `segments[i]` must cover the retained stream `[base, end)` of series
/// `i` (see [`window_bounds`]; shorter series clip exactly like
/// [`TimeSeries::slice`]). Because the history screen looks back at most
/// one window length, calibrating on these bounded segments is
/// bit-identical to screening against the full stream — the property the
/// streaming service's ring buffers rely on. A sector that last reported
/// more than one window length before `start` contributes only its
/// retained tail under neighbour pooling.
pub fn calibrate_window(
    config: &WindowedConfig,
    attribute_names: &[String],
    w: usize,
    segments: &[TimeSeries],
    neighbors: &[Vec<(usize, f64)>],
) -> Result<(ReplicationArtifacts, WindowScreen)> {
    let (start, end, base) = window_bounds(config, w);
    let offset = start - base; // window start in segment-local time
    let slice_series: Vec<TimeSeries> = segments
        .iter()
        .map(|seg| seg.slice(offset, end - base))
        .collect();
    let slice = Dataset::new(attribute_names.to_vec(), slice_series)
        .map_err(|e| FrameworkError::Internal(format!("window {w} slice: {e}")))?;
    let transforms = config.transforms(slice.num_attributes());

    let mut screen = WindowedOutlierDetector::new(config.window, config.sigma_k);
    screen.min_history = config.min_history;
    let structural = GlitchDetector::new(config.constraints.clone(), None);
    let weighted = matches!(config.pooling, NeighborPooling::Weighted { .. });

    // Pseudo-ideal reference: in-window cells surviving the missing /
    // constraint / history screens. History windows run on the retained
    // segment, so they reach back past the window start — and, under
    // neighbour pooling, across collocated sectors.
    let mut reference = slice.clone();
    let mut history_flagged = vec![0usize; slice.num_series()];
    let mut structural_flagged = vec![0usize; slice.num_series()];
    for (i, window_series) in slice.series().iter().enumerate() {
        let flags = structural.detect_series(window_series);
        let segment = &segments[i];
        let pooled: Vec<(&TimeSeries, f64)> = neighbors[i]
            .iter()
            .map(|&(j, wt)| (&segments[j], wt))
            .collect();
        let unweighted: Vec<&TimeSeries> = if weighted {
            Vec::new()
        } else {
            pooled.iter().map(|&(s, _)| s).collect()
        };
        for a in 0..slice.num_attributes() {
            for t in 0..window_series.len() {
                if flags.any(a, t) {
                    structural_flagged[i] += 1;
                    reference.series_mut()[i].set_missing(a, t);
                } else {
                    let hit = if weighted {
                        screen.is_outlier_weighted(segment, &pooled, a, offset + t)
                    } else {
                        screen.is_outlier(segment, &unweighted, a, offset + t)
                    };
                    if hit {
                        history_flagged[i] += 1;
                        reference.series_mut()[i].set_missing(a, t);
                    }
                }
            }
        }
    }
    let window_screen = WindowScreen {
        window_index: w,
        start,
        end,
        history_flagged,
        structural_flagged,
    };

    let outliers = OutlierDetector::fit(&reference, &transforms, config.sigma_k);
    let context = CleaningContext::from_detector(&reference, &transforms, &outliers);
    let detector = GlitchDetector::new(config.constraints.clone(), Some(outliers));
    let dirty_matrices = detector.detect_dataset(&slice);
    let artifacts = ReplicationArtifacts {
        replication: w,
        dirty: slice,
        ideal: reference,
        detector,
        context,
        dirty_matrices,
    };
    Ok((artifacts, window_screen))
}

/// Scores every strategy on one calibrated window via the engine's
/// group-slot machinery (one group, `strategies.len()` units), returning
/// outcomes in strategy order.
///
/// The window index is `artifacts.replication` (as produced by
/// [`calibrate_window`]); RNG streams derive from `(config.seed, window,
/// strategy)` exactly as in [`WindowedExperiment::run`], so a stream
/// evaluated window-at-a-time is bit-identical to the batch run.
pub fn evaluate_window_artifacts<E: TaskExecutor>(
    config: &WindowedConfig,
    strategies: &[CompositeStrategy],
    executor: &E,
    artifacts: ReplicationArtifacts,
) -> Result<Vec<WindowOutcome>> {
    if config.metrics.is_empty() {
        return Err(FrameworkError::InvalidConfig(
            "at least one distortion metric is required".into(),
        ));
    }
    let w = artifacts.replication;
    let transforms = config.transforms(artifacts.dirty.num_attributes());
    // `run_staged` builds each group at most once; the slot hands the
    // artifacts to that single build without cloning them.
    let slot: Mutex<Option<ReplicationArtifacts>> = Mutex::new(Some(artifacts));
    let unit_results = run_staged(
        executor,
        1,
        strategies.len(),
        |_| {
            slot.lock()
                .take()
                .map(|a| share_replication(a, &transforms, &config.metrics))
        },
        |shared, _, s| match shared {
            Some(shared) => evaluate_unit(
                shared,
                &transforms,
                config.weights,
                config.seed,
                w,
                s,
                &strategies[s],
            )
            .map(|outcome| window_outcome(config, outcome, w)),
            None => Err(FrameworkError::Internal(
                "window artifacts were consumed by an earlier group build".into(),
            )),
        },
    );
    unit_results.into_iter().collect()
}

fn window_outcome(config: &WindowedConfig, outcome: StrategyOutcome, w: usize) -> WindowOutcome {
    let start = w * config.stride;
    WindowOutcome {
        window_index: w,
        start,
        end: start + config.window,
        strategy: outcome.strategy,
        strategy_index: outcome.strategy_index,
        improvement: outcome.improvement,
        distortion: outcome.distortion,
        distortions: outcome.distortions,
        cleaning: outcome.cleaning,
        dirty_report: outcome.dirty_report,
        treated_report: outcome.treated_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialExecutor;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn data() -> Dataset {
        generate(&NetsimConfig::small(19)).dataset
    }

    fn config() -> WindowedConfig {
        let mut c = WindowedConfig::paper_default(20, 10, 7);
        c.threads = 2;
        c
    }

    #[test]
    fn window_count_follows_geometry() {
        let d = data(); // small scale: 60 steps
        let e = WindowedExperiment::new(config());
        assert_eq!(e.num_windows(&d), 5); // starts 0,10,20,30,40
        let mut tight = config();
        tight.window = 60;
        assert_eq!(WindowedExperiment::new(tight).num_windows(&d), 1);
        let mut too_long = config();
        too_long.window = 61;
        assert_eq!(WindowedExperiment::new(too_long).num_windows(&d), 0);
    }

    #[test]
    fn emits_one_outcome_per_window_and_strategy() {
        let d = data();
        let strategies = [paper_strategy(3), paper_strategy(5)];
        let result = WindowedExperiment::new(config())
            .run(&d, &strategies)
            .unwrap();
        assert_eq!(result.num_windows(), 5);
        assert_eq!(result.outcomes().len(), 10);
        for o in result.outcomes() {
            assert!(o.improvement.is_finite());
            assert!(o.distortion.is_finite() && o.distortion >= 0.0);
            assert_eq!(o.end - o.start, 20);
            assert!(o.dirty_report.total_records > 0);
        }
        let traj = result.trajectory(1);
        assert_eq!(traj.len(), 5);
        assert_eq!(
            traj.iter().map(|&(w, _, _)| w).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        // Cleaning must do real work in at least one window.
        assert!(result
            .outcomes()
            .iter()
            .any(|o| o.cleaning.cells_changed() > 0));
        assert!(result.outcomes().iter().any(|o| o.improvement > 0.0));
    }

    #[test]
    fn windowed_runs_are_deterministic_across_executors() {
        let d = data();
        let strategies = [paper_strategy(1), paper_strategy(5)];
        let e = WindowedExperiment::new(config());
        let a = e.run(&d, &strategies).unwrap();
        let b = e.run_with(&d, &strategies, &SerialExecutor).unwrap();
        assert_eq!(a.outcomes().len(), b.outcomes().len());
        for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
            assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
            assert_eq!(x.distortion.to_bits(), y.distortion.to_bits());
            assert_eq!(x.cleaning, y.cleaning);
        }
    }

    #[test]
    fn screens_are_recorded_per_window_and_series() {
        let d = data();
        let result = WindowedExperiment::new(config())
            .run(&d, &[paper_strategy(5)])
            .unwrap();
        assert_eq!(result.screens().len(), 5);
        for (w, s) in result.screens().iter().enumerate() {
            assert_eq!(s.window_index, w);
            assert_eq!(s.history_flagged.len(), d.num_series());
            assert_eq!(s.structural_flagged.len(), d.num_series());
        }
        // The netsim stream always has structurally flagged cells.
        assert!(result
            .screens()
            .iter()
            .any(|s| s.structural_flagged.iter().sum::<usize>() > 0));
        let traj = result.node_trajectory(3);
        assert_eq!(
            traj.iter().map(|&(w, _, _)| w).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn tower_pooling_changes_the_screen_but_not_determinism() {
        let d = data();
        let topology = NetsimConfig::small(19).topology;
        let strategies = [paper_strategy(5)];
        let own = WindowedExperiment::new(config())
            .run(&d, &strategies)
            .unwrap();
        let mut pooled_config = config();
        pooled_config = pooled_config.with_topology(topology, NeighborPooling::KHop { hops: 1 });
        let e = WindowedExperiment::new(pooled_config);
        let pooled = e.run(&d, &strategies).unwrap();
        let serial = e.run_with(&d, &strategies, &SerialExecutor).unwrap();
        // Bit-identical across executors, screens included.
        assert_eq!(pooled.screens(), serial.screens());
        for (x, y) in pooled.outcomes().iter().zip(serial.outcomes()) {
            assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
            assert_eq!(x.distortion.to_bits(), y.distortion.to_bits());
        }
        // Pooling must actually change what the screen sees somewhere.
        let flags = |r: &WindowedResult| -> Vec<usize> {
            r.screens()
                .iter()
                .flat_map(|s| s.history_flagged.iter().copied())
                .collect()
        };
        assert_ne!(flags(&own), flags(&pooled), "tower pooling is a no-op");
    }

    #[test]
    fn weighted_pooling_interpolates_between_rings() {
        let d = data();
        let topology = NetsimConfig::small(19).topology;
        let strategies = [paper_strategy(3)];
        let mut c = config();
        c = c.with_topology(
            topology,
            NeighborPooling::Weighted {
                tower: 1.0,
                rnc: 0.25,
            },
        );
        let weighted = WindowedExperiment::new(c).run(&d, &strategies).unwrap();
        assert_eq!(weighted.outcomes().len(), 5);
        for o in weighted.outcomes() {
            assert!(o.improvement.is_finite());
            assert!(o.distortion.is_finite() && o.distortion >= 0.0);
        }
    }

    #[test]
    fn multi_metric_windows_score_every_kernel_per_unit() {
        let d = data();
        let mut c = config();
        c.metrics = DistortionMetric::full_suite();
        let e = WindowedExperiment::new(c.clone());
        let result = e.run(&d, &[paper_strategy(5)]).unwrap();
        assert_eq!(
            result.metrics(),
            ["emd", "kl", "mahalanobis", "ks", "cvm", "energy"]
        );
        for o in result.outcomes() {
            assert_eq!(o.distortions.len(), 6);
            assert_eq!(o.distortion.to_bits(), o.distortions[0].value.to_bits());
            for s in &o.distortions {
                assert!(s.value.is_finite() && s.value >= 0.0, "{s:?}");
            }
        }
        // Metric-indexed trajectories line up with the primary one; an
        // out-of-range metric index yields an empty trajectory, not a
        // panic.
        assert_eq!(result.trajectory(0), result.trajectory_for_metric(0, 0));
        assert_eq!(result.trajectory_for_metric(0, 3).len(), 5);
        assert!(result.trajectory_for_metric(0, 6).is_empty());
        // The primary column matches a dedicated single-metric run bit for
        // bit, and the whole multi-metric run is executor-deterministic.
        let mut single = c.clone();
        single.metrics = vec![DistortionMetric::paper_default()];
        let solo = WindowedExperiment::new(single)
            .run(&d, &[paper_strategy(5)])
            .unwrap();
        for (m, s) in result.outcomes().iter().zip(solo.outcomes()) {
            assert_eq!(m.distortion.to_bits(), s.distortion.to_bits());
        }
        let serial = WindowedExperiment::new(c)
            .run_with(&d, &[paper_strategy(5)], &SerialExecutor)
            .unwrap();
        for (a, b) in result.outcomes().iter().zip(serial.outcomes()) {
            for (x, y) in a.distortions.iter().zip(&b.distortions) {
                assert_eq!(x.value.to_bits(), y.value.to_bits());
            }
        }
    }

    #[test]
    fn empty_metric_list_is_rejected() {
        let d = data();
        let mut c = config();
        c.metrics = Vec::new();
        let err = WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .unwrap_err();
        assert!(err.to_string().contains("metric"));
    }

    #[test]
    fn empty_strategy_list_yields_empty_result() {
        let d = data();
        let result = WindowedExperiment::new(config()).run(&d, &[]).unwrap();
        assert!(result.outcomes().is_empty());
        assert!(result.screens().is_empty());
        assert_eq!(result.num_windows(), 5);
    }

    #[test]
    fn duplicate_nodes_are_rejected_under_pooling() {
        let mut d = data();
        let dup = d.series_at(0).clone();
        d.push(dup).unwrap();
        let c = config().with_topology(
            NetsimConfig::small(19).topology,
            NeighborPooling::KHop { hops: 1 },
        );
        let err = WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .unwrap_err();
        assert!(err.to_string().contains("claim node"));
    }

    #[test]
    fn pooling_without_topology_is_rejected() {
        let d = data();
        let mut c = config();
        c.pooling = NeighborPooling::KHop { hops: 1 };
        let err = WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .unwrap_err();
        assert!(err.to_string().contains("topology"));
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let d = data();
        let mut c = config();
        c.stride = 0;
        assert!(WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .is_err());
        let mut c = config();
        c.window = 600;
        assert!(WindowedExperiment::new(c)
            .run(&d, &[paper_strategy(1)])
            .is_err());
    }
}
