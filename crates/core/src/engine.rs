//! The staged experiment execution engine.
//!
//! # Unit granularity
//!
//! The paper's protocol is `R` replications × `S` strategies. The previous
//! runner scheduled at replication granularity: one task per replication,
//! each serially evaluating all `S` strategies and re-deriving per-strategy
//! state that is invariant within the replication. This engine schedules at
//! `(replication, strategy)` granularity instead: a flat work queue of
//! `R × S` units drained by a generic [`TaskExecutor`], so load balances
//! across strategy units (model-imputing strategies cost ~25× a winsorize
//! pass) and the parallel width is `R × S` rather than `R`.
//!
//! # Artifact sharing
//!
//! Everything a replication's strategy units have in common is computed by
//! the first unit that needs it and shared via `Arc` ([`run_staged`]'s
//! group slots):
//!
//! * [`ReplicationArtifacts`] — test pair, fitted detector, cleaning
//!   context, dirty annotations — built once per replication (previously
//!   amortized inside the per-replication task; now shared across units);
//! * the dirty sample's pooled working rows and per-axis **signature
//!   cache** ([`sd_emd::SignatureCache`]), so every distortion evaluation
//!   reuses the dirty side's sorted columns and grid signatures instead of
//!   rebuilding them per strategy;
//! * one **prepared distortion kernel** per requested metric
//!   ([`crate::DistortionKernel::prepare`]): the cleaning pass runs once
//!   per unit and every kernel scores the same sparse patch incrementally
//!   ([`crate::PreparedKernel::score_patch`]);
//! * the MVN **imputation model** ([`sd_cleaning::ModelFit`]), fitted
//!   lazily by the first model-imputing unit of the replication (the fit is
//!   RNG-free and strategy-invariant);
//! * the dirty [`GlitchReport`], identical across the replication's
//!   outcomes.
//!
//! Strategy application itself records a sparse cell patch against the
//! shared dirty sample ([`CompositeStrategy::clean_patch`]): touched series
//! are materialized copy-on-write, untouched series are borrowed, and the
//! engine re-detects glitches only on touched series while deriving the
//! cleaned pooled rows by patching a copy of the shared dirty rows.
//!
//! Group slots drop their shared state as soon as the last unit of the
//! group completes, so peak memory stays proportional to the number of
//! in-flight replications, not `R`.
//!
//! # Determinism
//!
//! Batch outcomes are bit-identical to the pre-engine
//! [`crate::Experiment::run`] for a fixed seed (a regression test enforces
//! this): every RNG stream is derived from `(seed, replication,
//! strategy_index)`, never from scheduling; the cell-patch path executes
//! the same monomorphized cleaning pass as the in-place path; and every
//! cached artifact is a pure function of the replication, so hit/miss
//! order cannot change bits.
//!
//! Exact EMD transports inside unit scoring ride a **thread-local cold
//! scratch arena** ([`sd_emd::BatchTransport`]): allocations (basis tree,
//! flow matrix, pricing scratch) are reused across solves, but every solve
//! replays the exact cold pivot sequence, so results stay bit-identical
//! regardless of which thread scored which unit. Warm-started transports —
//! which trade bit-identity for a documented `1e-9` objective tolerance —
//! are opt-in ([`crate::TransportMode::Warm`]) and confined to the
//! provably sequential chains: the budget optimizer's planning sweep and
//! the cost sweep's per-strategy fraction ladder, each of which checks one
//! [`sd_emd::BatchTransport`] arena out of the replication's signature
//! cache and threads it through `score_view_with`.
//!
//! # Windowed mode
//!
//! [`crate::WindowedExperiment`] runs the §3.3 online formulation on the
//! same engine: groups are sliding windows instead of replications, with
//! per-window artifacts calibrated by a
//! [`sd_glitch::WindowedOutlierDetector`] screen over each arrival's
//! history. See [`crate::windowed`]'s docs.
//!
//! # Cost-sweep and budget-optimizer workloads
//!
//! [`crate::cost_sweep`] drains `(replication, strategy × fraction)` units
//! over the same groups, and [`crate::budget_optimize`] drains
//! `(replication, strategy × budget)` units: both reuse the replication's
//! `SharedReplication` slot and score through `score_view`-style
//! incremental kernels. The optimizer additionally shares each
//! `(replication, strategy)` purchase trajectory across its budget units —
//! see [`crate::optimize`]'s docs for the unit shape.

use crate::distortion::pooled_working_rows;
use crate::experiment::{PreparedExperiment, ReplicationArtifacts, StrategyOutcome};
use crate::kernel::PreparedKernel;
use crate::{parallel_map, DistortionMetric, ExperimentResult, MetricScore, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_cleaning::{CleaningStrategy, CompositeStrategy, MissingTreatment, ModelFit};
use sd_data::CleanedView;
use sd_emd::{BatchTransport, PatchedCloud, SignatureCache};
use sd_glitch::{GlitchIndex, GlitchMatrix, GlitchReport, GlitchWeights};
use sd_stats::AttributeTransform;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Something that can drain a queue of `count` independent tasks and
/// return their results in index order.
///
/// The engine is generic over this so the same staged pipeline runs on the
/// in-process thread pool, serially (tests, deterministic profiling), or on
/// future backends without touching the scheduling logic.
pub trait TaskExecutor: Sync {
    /// Runs `f(0), …, f(count − 1)` and returns results in index order.
    fn execute<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;
}

/// The default executor: a work-stealing scoped thread pool
/// ([`parallel_map`]). `threads == 0` selects the machine's available
/// parallelism.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoolExecutor {
    threads: usize,
}

impl ThreadPoolExecutor {
    /// Creates a pool executor with the given worker count (0 = auto).
    pub fn new(threads: usize) -> Self {
        ThreadPoolExecutor { threads }
    }
}

impl TaskExecutor for ThreadPoolExecutor {
    fn execute<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        parallel_map(count, self.threads, f)
    }
}

/// An executor that runs every task inline on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl TaskExecutor for SerialExecutor {
    fn execute<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..count).map(f).collect()
    }
}

/// One group's shared-state slot: built by the first unit that acquires
/// it, dropped when the last unit releases it.
struct Slot<G> {
    shared: Mutex<Option<Arc<G>>>,
    remaining: AtomicUsize,
}

impl<G> Slot<G> {
    fn new(units: usize) -> Self {
        Slot {
            shared: Mutex::new(None),
            remaining: AtomicUsize::new(units),
        }
    }

    fn acquire(&self, build: impl FnOnce() -> G) -> Arc<G> {
        let mut guard = self.shared.lock();
        if let Some(shared) = guard.as_ref() {
            return Arc::clone(shared);
        }
        let built = Arc::new(build());
        *guard = Some(Arc::clone(&built));
        built
    }

    fn release(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.shared.lock() = None;
        }
    }
}

/// Runs `groups × units_per_group` units over `executor`, building each
/// group's shared state at most once (first unit to arrive builds under the
/// group lock; later units reuse the `Arc`) and dropping it as soon as the
/// group's last unit finishes.
///
/// Unit `u` maps to group `u / units_per_group`, member `u % units_per_group`;
/// results come back in that flat order regardless of scheduling.
pub fn run_staged<G, T, E, B, U>(
    executor: &E,
    groups: usize,
    units_per_group: usize,
    build: B,
    eval: U,
) -> Vec<T>
where
    G: Send + Sync,
    T: Send,
    E: TaskExecutor,
    B: Fn(usize) -> G + Sync,
    U: Fn(&G, usize, usize) -> T + Sync,
{
    if groups == 0 || units_per_group == 0 {
        return Vec::new();
    }
    let slots: Vec<Slot<G>> = (0..groups).map(|_| Slot::new(units_per_group)).collect();
    executor.execute(groups * units_per_group, |u| {
        let group = u / units_per_group;
        let unit = u % units_per_group;
        let shared = slots[group].acquire(|| build(group));
        let out = eval(&shared, group, unit);
        slots[group].release();
        out
    })
}

/// One requested metric's engine-side state: its name (for result rows)
/// and its dirty-side prepared kernel.
pub(crate) struct PreparedMetric {
    /// Kernel name, recorded in every [`MetricScore`].
    pub name: &'static str,
    /// The kernel's prepared dirty-side state.
    pub prepared: Box<dyn PreparedKernel>,
}

/// Everything one replication's strategy units share, behind one `Arc`.
pub(crate) struct SharedReplication {
    /// The calibrated replication pipeline state.
    pub artifacts: ReplicationArtifacts,
    /// Signature cache over the dirty sample's pooled working rows.
    pub cache: SignatureCache,
    /// One prepared distortion kernel per requested metric, in config
    /// order — built alongside the cache in the group-slot build, so every
    /// unit of the replication scores all metrics against shared
    /// dirty-side state.
    pub kernels: Vec<PreparedMetric>,
    /// Pooled-row offset of each series (series `i`'s record at time `t`
    /// is row `row_offsets[i] + t`).
    pub row_offsets: Vec<usize>,
    /// Glitch percentages of the dirty sample (outcome field, identical
    /// across the replication's strategies).
    pub dirty_report: GlitchReport,
    /// Lazily fitted strategy-invariant imputation model.
    model: OnceLock<ModelFit>,
}

impl SharedReplication {
    /// The replication's shared MVN imputation model, fitted by the first
    /// caller (on the full dirty sample, no missingness mask) and reused by
    /// every later unit of the group. Strategy- and schedule-invariant, so
    /// sharing cannot change bits.
    pub(crate) fn model_fit(&self) -> &ModelFit {
        self.model.get_or_init(|| {
            ModelFit::fit(
                &self.artifacts.dirty,
                &self.artifacts.dirty_matrices,
                &self.artifacts.context,
                None,
            )
        })
    }
}

/// Builds the shared per-replication state from calibrated artifacts:
/// pooled dirty rows, the signature cache, and every requested kernel's
/// prepared dirty side.
pub(crate) fn share_replication(
    artifacts: ReplicationArtifacts,
    transforms: &[AttributeTransform],
    metrics: &[DistortionMetric],
) -> SharedReplication {
    let rows = pooled_working_rows(&artifacts.dirty, transforms);
    let mut row_offsets = Vec::with_capacity(artifacts.dirty.num_series());
    let mut offset = 0;
    for series in artifacts.dirty.series() {
        row_offsets.push(offset);
        offset += series.len();
    }
    let dirty_report = GlitchReport::from_matrices(&artifacts.dirty_matrices);
    let cache = SignatureCache::new(rows);
    let kernels = metrics
        .iter()
        .map(|metric| {
            let kernel = metric.kernel();
            PreparedMetric {
                name: kernel.name(),
                prepared: kernel.prepare(&cache),
            }
        })
        .collect();
    SharedReplication {
        artifacts,
        cache,
        kernels,
        row_offsets,
        dirty_report,
        model: OnceLock::new(),
    }
}

/// Scores one `(group, strategy)` unit against shared replication state:
/// patch-clean, incremental re-detection, kernel-scored distortion for
/// every requested metric.
///
/// `group` is the replication number in batch mode and the window index in
/// windowed mode; it feeds both the outcome's `replication` field and the
/// RNG derivation, which matches [`ReplicationArtifacts::apply`] exactly.
pub(crate) fn evaluate_unit(
    shared: &SharedReplication,
    transforms: &[AttributeTransform],
    weights: GlitchWeights,
    seed: u64,
    group: usize,
    strategy_index: usize,
    strategy: &CompositeStrategy,
) -> Result<StrategyOutcome> {
    let artifacts = &shared.artifacts;
    let model = if strategy.missing_treatment() == MissingTreatment::ModelImpute {
        Some(shared.model_fit())
    } else {
        None
    };

    let mut rng =
        StdRng::seed_from_u64(seed ^ ((group as u64) << 20) ^ ((strategy_index as u64) << 50));
    let (view, cleaning) = strategy.clean_patch(
        &artifacts.dirty,
        &artifacts.dirty_matrices,
        &artifacts.context,
        &mut rng,
        model,
    );
    let (improvement, distortions, treated_report) =
        score_view(shared, transforms, weights, &view)?;

    Ok(StrategyOutcome {
        strategy: strategy.name(),
        strategy_index,
        replication: group,
        improvement,
        distortion: distortions[0].value,
        distortions,
        dirty_report: shared.dirty_report.clone(),
        treated_report,
        cleaning,
    })
}

/// Scores one cleaned [`CleanedView`] against its replication's shared
/// state: incremental re-detection on touched series, glitch improvement,
/// and one incremental `score_patch` per prepared kernel — the cleaning
/// pass happens once, the patched cloud is derived once, and every
/// requested metric scores it. Returns
/// `(improvement, per-metric distortions, treated report)`.
///
/// Shared by the batch/windowed strategy units and the cost-sweep budget
/// units — every engine workload scores through this one path.
pub(crate) fn score_view(
    shared: &SharedReplication,
    transforms: &[AttributeTransform],
    weights: GlitchWeights,
    view: &CleanedView<'_>,
) -> Result<(f64, Vec<MetricScore>, GlitchReport)> {
    score_view_inner(shared, transforms, weights, view, None)
}

/// Like [`score_view`] but with a caller-owned [`BatchTransport`] arena
/// threaded into every transport-solving kernel (`score_patch_with`) —
/// the warm-chain entry point for sequential unit ladders
/// ([`crate::TransportMode::Warm`]). Non-transport kernels are unaffected
/// and stay bit-identical; the EMD value obeys the warm-vs-cold objective
/// contract instead.
pub(crate) fn score_view_with(
    shared: &SharedReplication,
    transforms: &[AttributeTransform],
    weights: GlitchWeights,
    view: &CleanedView<'_>,
    transport: &mut BatchTransport,
) -> Result<(f64, Vec<MetricScore>, GlitchReport)> {
    score_view_inner(shared, transforms, weights, view, Some(transport))
}

fn score_view_inner(
    shared: &SharedReplication,
    transforms: &[AttributeTransform],
    weights: GlitchWeights,
    view: &CleanedView<'_>,
    mut transport: Option<&mut BatchTransport>,
) -> Result<(f64, Vec<MetricScore>, GlitchReport)> {
    let artifacts = &shared.artifacts;
    // Re-detect only touched series; untouched series keep their dirty
    // annotations (detection is a pure per-series function).
    let treated_matrices: Vec<GlitchMatrix> = (0..view.num_series())
        .map(|i| {
            if view.is_patched(i) {
                artifacts.detector.detect_series(view.series_at(i))
            } else {
                artifacts.dirty_matrices[i].clone()
            }
        })
        .collect();
    let index = GlitchIndex::new(weights);
    let improvement = index.improvement(&artifacts.dirty_matrices, &treated_matrices);

    // The cleaned cloud as sparse row edits against the shared dirty rows:
    // cell edits grouped by pooled-row index, replayed in order in working
    // space (bit-identical to pooling the materialized dataset). The
    // cleaning pass emits edits record by record, so edits to one row are
    // adjacent and ascending in `t` — grouping is a linear walk.
    let mut row_edits: Vec<(usize, Vec<f64>)> = Vec::new();
    for i in view.patch().touched_series() {
        let offset = shared.row_offsets[i];
        for e in view.patch().series_edits(i) {
            let row = offset + e.t as usize;
            if row_edits.last().is_none_or(|(r, _)| *r != row) {
                row_edits.push((row, shared.cache.rows()[row].clone()));
            }
            // The push above guarantees a last element; `if let` keeps the
            // path panic-free instead of asserting it with `expect`.
            if let Some((_, new_row)) = row_edits.last_mut() {
                let a = e.attr as usize;
                new_row[a] = transforms[a].forward(e.value);
            }
        }
    }
    let patched = PatchedCloud::new(&shared.cache, row_edits);
    let mut distortions = Vec::with_capacity(shared.kernels.len());
    for kernel in &shared.kernels {
        let value = match transport.as_deref_mut() {
            Some(arena) => kernel.prepared.score_patch_with(&patched, arena)?,
            None => kernel.prepared.score_patch(&patched)?,
        };
        distortions.push(MetricScore {
            metric: kernel.name,
            value,
        });
    }
    Ok((
        improvement,
        distortions,
        GlitchReport::from_matrices(&treated_matrices),
    ))
}

/// Runs the full batch protocol on the staged engine: a work queue of
/// `R × S` `(replication, strategy)` units with per-replication shared
/// artifacts.
pub(crate) fn run_batch<E: TaskExecutor>(
    prepared: &PreparedExperiment,
    strategies: &[CompositeStrategy],
    executor: &E,
) -> Result<ExperimentResult> {
    let config = prepared.config();
    let transforms = prepared.transforms();
    let unit_results = run_staged(
        executor,
        config.replications,
        strategies.len(),
        |r| share_replication(prepared.replication(r), transforms, &config.metrics),
        |shared, r, s| {
            evaluate_unit(
                shared,
                transforms,
                config.weights,
                config.seed,
                r,
                s,
                &strategies[s],
            )
        },
    );
    let mut outcomes = Vec::with_capacity(unit_results.len());
    for result in unit_results {
        outcomes.push(result?);
    }
    Ok(ExperimentResult::from_outcomes(
        outcomes,
        config.metrics.iter().map(DistortionMetric::name).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_staged_builds_each_group_once() {
        let builds = AtomicUsize::new(0);
        let out = run_staged(
            &ThreadPoolExecutor::new(4),
            6,
            5,
            |g| {
                builds.fetch_add(1, Ordering::SeqCst);
                g * 100
            },
            |shared, g, u| shared + g + u,
        );
        assert_eq!(builds.load(Ordering::SeqCst), 6);
        assert_eq!(out.len(), 30);
        for (i, v) in out.iter().enumerate() {
            let (g, u) = (i / 5, i % 5);
            assert_eq!(*v, g * 101 + u);
        }
    }

    #[test]
    fn run_staged_serial_matches_parallel() {
        let serial = run_staged(&SerialExecutor, 4, 3, |g| g * 7, |s, g, u| s + g + u);
        let parallel = run_staged(
            &ThreadPoolExecutor::new(3),
            4,
            3,
            |g| g * 7,
            |s, g, u| s + g + u,
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_staged_drops_shared_state_after_last_unit() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slots: Vec<Slot<Probe>> = (0..1).map(|_| Slot::new(2)).collect();
        let p = slots[0].acquire(|| Probe(Arc::clone(&drops)));
        slots[0].release();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "one unit still holds it");
        drop(p);
        let p2 = slots[0].acquire(|| unreachable!("slot cleared only at zero"));
        drop(p2);
        slots[0].release();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "cleared with the last unit"
        );
    }

    #[test]
    fn panicking_unit_does_not_poison_shared_cache() {
        // Regression for the std::sync → parking_lot Mutex switch in
        // `SignatureCache`: one unit panicking mid-queue must neither stop
        // the surviving workers from finishing their units nor leave the
        // shared memo lock poisoned for later users.
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![i as f64, (i * 7 % 5) as f64])
            .collect();
        let spec = sd_stats::GridSpec::covering(&rows, &rows, 4).expect("non-degenerate grid");
        let cache = SignatureCache::new(rows);
        let completed = AtomicUsize::new(0);

        // The panic is deliberate; silence its report while it unwinds.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_staged(
                &ThreadPoolExecutor::new(2),
                1,
                8,
                |_| (),
                |(), _, u| {
                    let side = cache.side_for(&spec, &[1.0, 1.0]).expect("cacheable side");
                    assert!(side.occupied > 0);
                    if u == 3 {
                        panic!("unit 3 dies mid-queue");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                },
            )
        }));
        std::panic::set_hook(default_hook);

        assert!(
            outcome.is_err(),
            "the unit panic must propagate to the caller"
        );
        assert_eq!(
            completed.load(Ordering::SeqCst),
            7,
            "surviving workers drain every other unit"
        );
        // The memoized side survives the panic: the lock is not poisoned
        // and the entry built before the crash is still served.
        assert!(cache.memoized() >= 1);
        assert!(cache.side_for(&spec, &[1.0, 1.0]).is_ok());
    }

    #[test]
    fn empty_queues_are_empty() {
        let none: Vec<usize> = run_staged(&SerialExecutor, 0, 5, |_| 0, |_, _, _| 0);
        assert!(none.is_empty());
        let none: Vec<usize> = run_staged(&SerialExecutor, 5, 0, |_| 0, |_, _, _| 0);
        assert!(none.is_empty());
    }
}
