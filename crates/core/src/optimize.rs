//! Budget-constrained cleaning optimization, run as a first-class engine
//! workload.
//!
//! The paper's §5.2 cost axis cleans a *fraction* of the data, dirtiest
//! first ([`crate::cost_sweep`]). This module asks the sharper operational
//! question behind Figure 2: given a concrete cleaning budget in dollars —
//! where different glitch types cost different amounts to repair
//! ([`CostModel`]) — *which* series should be cleaned, and in what order,
//! to buy the most glitch improvement per unit of statistical distortion?
//!
//! # Candidate repairs and the greedy policy
//!
//! Every glitched series of a replication is one candidate purchase: its
//! repair is the strategy's cleaning pass restricted to that series alone
//! (deterministic per `(seed, replication, strategy, series)`), its price
//! comes from the [`CostModel`], and its glitch payoff is the series'
//! contribution to the normalized glitch-index improvement. The
//! [`SelectionPolicy::Greedy`] optimizer walks the knapsack greedily: at
//! every step it scores, for each still-affordable candidate, the
//! *marginal* objective gain
//!
//! ```text
//! gain(c | S) = Δimprovement(c) − λ · [ D(S ∪ {c}) − D(S) ]
//! ```
//!
//! where `D` is the primary metric's distortion of the combined sparse
//! patch (scored incrementally through the replication's prepared kernel,
//! [`crate::PreparedKernel::score_edits`], against the shared
//! [`sd_emd::SignatureCache`]) and `λ` is
//! [`BudgetOptimizerConfig::distortion_weight`]. It buys the affordable
//! candidate with the best gain-per-dollar (ties broken toward the lower
//! series index), skips candidates it cannot afford, and stops when no
//! affordable candidate has positive gain. The
//! [`SelectionPolicy::DirtiestFirst`] baseline is the paper's §5.2
//! ordering under the same prices; [`SelectionPolicy::Random`] is the
//! uninformed control.
//!
//! # Engine mapping
//!
//! [`budget_optimize`] drains `R × (S × B)` units over the staged engine
//! ([`crate::engine::run_staged`]): groups are replications sharing one
//! `SharedReplication` slot (artifacts, signature cache,
//! prepared kernels, lazily fitted imputation model), and each group's
//! `S × B` units map unit `u` to `(strategy u / B, budget u % B)`. The
//! purchase *trajectory* of a `(replication, strategy)` pair is computed
//! once — by the first of its budget units, shared through a per-strategy
//! `OnceLock` — and every budget point fills its selection from that
//! trajectory's purchase order (**order semantics**: walk the planned
//! purchases in order, buy each one the remaining budget affords, skip
//! the rest). The order itself is planned at the *maximum* requested
//! budget, so greedy's adaptive marginal scoring runs once per
//! `(replication, strategy)` rather than once per budget; at the maximum
//! budget the walk reproduces the planned purchases exactly.
//!
//! Unlike the cost sweep's per-fraction mask-matched fits, candidate
//! repairs are scored against the replication-level imputation model
//! (fitted once on the full dirty sample, no mask —
//! `SharedReplication::model_fit`): candidate artifacts
//! must be selection-independent, or the marginal score of a candidate
//! would change with the budget that buys it. This is a deliberate,
//! documented deviation from `PROC MI` semantics.
//!
//! [`budget_optimize`] is bit-identical to [`budget_optimize_reference`] —
//! a preserved replication-granular path that materializes the full
//! cleaned cloud and scores it through
//! [`crate::DistortionKernel::score_rows`] for every trajectory step and
//! frontier point (the optimizer's bit-identity oracle and the baseline
//! the perf bin's `budget_opt_ref` row measures).

use crate::cost::dirtiest_ranking;
use crate::distortion::pooled_working_rows;
use crate::engine::{run_staged, share_replication, SharedReplication, TaskExecutor};
use crate::experiment::ReplicationArtifacts;
use crate::{
    Experiment, ExperimentConfig, FrameworkError, MetricScore, Result, ThreadPoolExecutor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_cleaning::{CleaningStrategy, CompositeStrategy, MissingTreatment, ModelFit};
use sd_data::Dataset;
use sd_emd::PatchedCloud;
use sd_glitch::{GlitchIndex, GlitchMatrix, GlitchReport, GlitchType};
use sd_stats::AttributeTransform;
use std::sync::OnceLock;

/// Per-repair pricing: what one series costs to clean, as a function of
/// its glitch annotations and the strategy doing the cleaning.
///
/// The price of cleaning series `i` with strategy `s` is
///
/// ```text
/// price = factor(s) · ( base_per_series + Σ_kind per_cell(kind) · cells(i, kind) )
/// ```
///
/// generalizing Figure 2's scenarios, where a fixed budget buys repairs
/// whose per-glitch cost is the reciprocal of the scenario's coverage
/// ([`CostModel::scenario`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of touching a series at all (setup, locating the node).
    pub base_per_series: f64,
    /// Price of repairing one missing cell.
    pub per_missing_cell: f64,
    /// Price of repairing one inconsistent cell.
    pub per_inconsistent_cell: f64,
    /// Price of repairing one outlier cell.
    pub per_outlier_cell: f64,
    /// Per-strategy price multipliers, indexed like the submitted strategy
    /// list; strategies beyond the end multiply by 1.
    pub strategy_factors: Vec<f64>,
}

impl CostModel {
    /// Every glitch cell costs one unit, touching a series is free: the
    /// price of a series is its glitch-cell count.
    pub fn uniform() -> Self {
        CostModel {
            base_per_series: 0.0,
            per_missing_cell: 1.0,
            per_inconsistent_cell: 1.0,
            per_outlier_cell: 1.0,
            strategy_factors: Vec::new(),
        }
    }

    /// The Figure 2 scenario as a cost model: a budget of `1` fixes
    /// `coverage` glitches, so one glitch cell costs `1 / coverage`
    /// (cheap constant 1.0, simulate 2.5, re-measure 3.33…).
    pub fn scenario(scenario: crate::BudgetScenario) -> Self {
        let per_cell = 1.0 / scenario.coverage();
        CostModel {
            base_per_series: 0.0,
            per_missing_cell: per_cell,
            per_inconsistent_cell: per_cell,
            per_outlier_cell: per_cell,
            strategy_factors: Vec::new(),
        }
    }

    /// The per-cell price of one glitch kind.
    pub fn per_cell(&self, kind: GlitchType) -> f64 {
        match kind {
            GlitchType::Missing => self.per_missing_cell,
            GlitchType::Inconsistent => self.per_inconsistent_cell,
            GlitchType::Outlier => self.per_outlier_cell,
        }
    }

    /// Prices cleaning one series (annotated by `glitches`) with the
    /// `strategy_index`-th strategy.
    pub fn price(&self, strategy_index: usize, glitches: &GlitchMatrix) -> f64 {
        let factor = self
            .strategy_factors
            .get(strategy_index)
            .copied()
            .unwrap_or(1.0);
        let cells: f64 = GlitchType::ALL
            .iter()
            .map(|&kind| self.per_cell(kind) * glitches.count_cells(kind) as f64)
            .sum();
        factor * (self.base_per_series + cells)
    }

    /// Rejects non-finite or negative prices.
    pub fn validate(&self) -> Result<()> {
        let scalars = [
            ("base_per_series", self.base_per_series),
            ("per_missing_cell", self.per_missing_cell),
            ("per_inconsistent_cell", self.per_inconsistent_cell),
            ("per_outlier_cell", self.per_outlier_cell),
        ];
        for (name, x) in scalars {
            if !x.is_finite() || x < 0.0 {
                return Err(FrameworkError::InvalidConfig(format!(
                    "cost model {name} must be finite and non-negative, got {x}"
                )));
            }
        }
        for (i, &f) in self.strategy_factors.iter().enumerate() {
            if !f.is_finite() || f < 0.0 {
                return Err(FrameworkError::InvalidConfig(format!(
                    "cost model strategy factor {i} must be finite and non-negative, got {f}"
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the model's JSON schema (see [`CostModel::from_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "base_per_series": self.base_per_series,
            "per_missing_cell": self.per_missing_cell,
            "per_inconsistent_cell": self.per_inconsistent_cell,
            "per_outlier_cell": self.per_outlier_cell,
            "strategy_factors": self.strategy_factors,
        })
    }

    /// Deserializes the schema written by [`CostModel::to_json`]: an
    /// object with the four scalar prices (required, numeric) and an
    /// optional `strategy_factors` number array.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::InvalidConfig`] on missing or mistyped fields, or
    /// when the resulting model fails [`CostModel::validate`].
    pub fn from_json(value: &serde_json::Value) -> Result<Self> {
        let field = |name: &str| -> Result<f64> {
            value
                .get(name)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| {
                    FrameworkError::InvalidConfig(format!(
                        "cost model field `{name}` must be a number"
                    ))
                })
        };
        let strategy_factors = match value.get("strategy_factors") {
            None => Vec::new(),
            Some(factors) => factors
                .as_array()
                .ok_or_else(|| {
                    FrameworkError::InvalidConfig(
                        "cost model `strategy_factors` must be an array".into(),
                    )
                })?
                .iter()
                .map(|f| {
                    f.as_f64().ok_or_else(|| {
                        FrameworkError::InvalidConfig(
                            "cost model `strategy_factors` entries must be numbers".into(),
                        )
                    })
                })
                .collect::<Result<Vec<f64>>>()?,
        };
        let model = CostModel {
            base_per_series: field("base_per_series")?,
            per_missing_cell: field("per_missing_cell")?,
            per_inconsistent_cell: field("per_inconsistent_cell")?,
            per_outlier_cell: field("per_outlier_cell")?,
            strategy_factors,
        };
        model.validate()?;
        Ok(model)
    }

    /// Parses a JSON document and deserializes it
    /// ([`CostModel::from_json`]).
    pub fn from_json_str(text: &str) -> Result<Self> {
        let value = serde_json::from_str(text)
            .map_err(|e| FrameworkError::InvalidConfig(format!("cost model JSON: {e}")))?;
        CostModel::from_json(&value)
    }
}

/// How the optimizer picks the next series to clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Marginal gain-per-dollar, scored incrementally against the current
    /// selection (the optimizer; see the module docs).
    Greedy,
    /// The paper's §5.2 ordering: normalized glitch score, dirtiest first.
    DirtiestFirst,
    /// Seeded uniform shuffle — the uninformed control.
    Random,
}

impl SelectionPolicy {
    /// Machine-readable label recorded in results and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            SelectionPolicy::Greedy => "greedy",
            SelectionPolicy::DirtiestFirst => "dirtiest_first",
            SelectionPolicy::Random => "random",
        }
    }
}

/// How a sequential unit chain's exact EMD transports are solved — the
/// budget optimizer's per-candidate planning sweep
/// ([`BudgetOptimizerConfig::transport`]) and the cost sweep's
/// per-strategy fraction ladder
/// ([`crate::CostSweepConfig::transport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportMode {
    /// Every exact transport is solved from a fresh north-west-corner
    /// basis (on a thread-local scratch arena, so allocation is still
    /// amortized). The default: scores are bit-identical to the
    /// materialized reference path, enforced by this module's tests.
    #[default]
    Cold,
    /// Consecutive scores within one chain — candidate re-scores of a
    /// trajectory plan, or the fractions of one cost-sweep ladder — reuse
    /// a [`sd_emd::BatchTransport`] checked out from the replication's
    /// signature cache, warm-starting each solve from the previous
    /// optimum's basis. Objectives agree with cold solves to
    /// `1e-9 · (1 + |cold|)` (pivot order may legitimately differ);
    /// greedy tie-breaks can therefore flip on exactly-tied gains, so
    /// this mode trades the bit-identity guarantee for throughput.
    Warm,
}

/// Configuration of a budget-optimization run.
#[derive(Debug, Clone)]
pub struct BudgetOptimizerConfig {
    /// The base experiment configuration (`metrics[0]` is the primary
    /// metric the greedy objective penalizes).
    pub experiment: ExperimentConfig,
    /// The candidate cleaning strategies (each gets its own trajectory).
    pub strategies: Vec<CompositeStrategy>,
    /// The budgets to trace the frontier at, e.g. `[0.0, 50.0, 200.0]`.
    pub budgets: Vec<f64>,
    /// Per-repair pricing.
    pub cost_model: CostModel,
    /// Selection policy.
    pub policy: SelectionPolicy,
    /// The greedy objective's distortion penalty `λ` (≥ 0; ignored by the
    /// baseline policies).
    pub distortion_weight: f64,
    /// How the planner's exact EMD transports are solved (see
    /// [`TransportMode`]); ignored by kernels that solve no transport.
    pub transport: TransportMode,
}

impl BudgetOptimizerConfig {
    fn validate(&self) -> Result<()> {
        if self.strategies.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "budget optimizer needs at least one strategy".into(),
            ));
        }
        if self.budgets.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "budget optimizer needs at least one budget".into(),
            ));
        }
        for &b in &self.budgets {
            if !b.is_finite() || b < 0.0 {
                return Err(FrameworkError::InvalidConfig(format!(
                    "budgets must be finite and non-negative, got {b}"
                )));
            }
        }
        if !self.distortion_weight.is_finite() || self.distortion_weight < 0.0 {
            return Err(FrameworkError::InvalidConfig(format!(
                "distortion weight must be finite and non-negative, got {}",
                self.distortion_weight
            )));
        }
        self.cost_model.validate()
    }
}

/// One `(budget, strategy, replication)` point of the cleaning frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// The budget this point was read at.
    pub budget: f64,
    /// Replication number.
    pub replication: usize,
    /// Strategy display name.
    pub strategy: String,
    /// Index of the strategy in the submitted list.
    pub strategy_index: usize,
    /// The selection policy that produced the trajectory.
    pub policy: SelectionPolicy,
    /// What the selection actually cost (≤ `budget`).
    pub spent: f64,
    /// Number of series cleaned.
    pub series_cleaned: usize,
    /// Glitch improvement of the selection.
    pub improvement: f64,
    /// Statistical distortion under the primary metric
    /// (`experiment.metrics[0]`; equal to `distortions[0].value`).
    pub distortion: f64,
    /// Per-metric distortions, in `experiment.metrics` order.
    pub distortions: Vec<MetricScore>,
    /// Treated glitch percentages of the selection.
    pub treated_report: GlitchReport,
}

/// RNG stream of one candidate repair. The `series + 1` term keeps
/// series 0 distinct from the batch-unit stream at the same
/// `(replication, strategy)`.
fn candidate_seed(seed: u64, replication: usize, strategy_index: usize, series: usize) -> u64 {
    seed ^ ((replication as u64) << 24)
        ^ ((strategy_index as u64) << 44)
        ^ (((series as u64) + 1) << 8)
}

/// RNG stream of the [`SelectionPolicy::Random`] shuffle.
fn shuffle_seed(seed: u64, replication: usize, strategy_index: usize) -> u64 {
    seed ^ ((replication as u64) << 24) ^ ((strategy_index as u64) << 44) ^ (1 << 63)
}

/// One purchasable repair: a single series cleaned in isolation.
struct Candidate {
    /// Series index in the replication's dirty sample.
    series: usize,
    /// [`CostModel`] price of this repair.
    price: f64,
    /// The series' contribution to the normalized glitch-index
    /// improvement (the greedy payoff term; the reported improvement is
    /// recomputed from the full selection).
    delta_improvement: f64,
    /// The repair as working-space row edits against the pooled dirty
    /// rows (ascending row order).
    row_edits: Vec<(usize, Vec<f64>)>,
    /// Re-detected annotations of the repaired series.
    treated: GlitchMatrix,
}

/// The shared `(replication, strategy)` plan every budget unit fills its
/// selection from: the candidate set plus the policy's purchase order
/// (candidate indices, planned at the maximum requested budget).
struct StrategyPlan {
    candidates: Vec<Candidate>,
    order: Vec<usize>,
}

/// Builds every candidate repair of one `(replication, strategy)` pair:
/// clean each glitched series in isolation, re-detect it, price it, and
/// record its sparse working-space edits. Pure in
/// `(artifacts, strategy, seed)` — shared verbatim by the engine and
/// reference paths, so their candidate sets are bit-identical.
#[allow(clippy::too_many_arguments)]
fn build_candidates(
    artifacts: &ReplicationArtifacts,
    transforms: &[AttributeTransform],
    index: &GlitchIndex,
    cost_model: &CostModel,
    strategy: &CompositeStrategy,
    strategy_index: usize,
    seed: u64,
    model: Option<&ModelFit>,
    base_rows: &[Vec<f64>],
    row_offsets: &[usize],
) -> Vec<Candidate> {
    let num_series = artifacts.dirty.num_series();
    let mut candidates = Vec::new();
    for i in 0..num_series {
        if index.node_score(&artifacts.dirty_matrices[i]) <= 0.0 {
            continue;
        }
        let mut mask = vec![false; num_series];
        mask[i] = true;
        let mut rng = StdRng::seed_from_u64(candidate_seed(
            seed,
            artifacts.replication,
            strategy_index,
            i,
        ));
        let (view, _) = strategy.clean_patch_filtered(
            &artifacts.dirty,
            &artifacts.dirty_matrices,
            &artifacts.context,
            &mut rng,
            Some(&mask),
            model,
        );
        let treated = if view.is_patched(i) {
            artifacts.detector.detect_series(view.series_at(i))
        } else {
            artifacts.dirty_matrices[i].clone()
        };
        let delta_improvement =
            (index.node_score(&artifacts.dirty_matrices[i]) - index.node_score(&treated)) * 100.0
                / num_series as f64;
        // The repair's cell edits, grouped into working-space row edits
        // exactly like the engine's `score_view` (edits to one row are
        // adjacent and ascending in `t`).
        let mut row_edits: Vec<(usize, Vec<f64>)> = Vec::new();
        let offset = row_offsets[i];
        for e in view.patch().series_edits(i) {
            let row = offset + e.t as usize;
            if row_edits.last().is_none_or(|(r, _)| *r != row) {
                row_edits.push((row, base_rows[row].clone()));
            }
            // The push above guarantees a last element; `if let` keeps the
            // path panic-free instead of asserting it with `expect`.
            if let Some((_, new_row)) = row_edits.last_mut() {
                let a = e.attr as usize;
                new_row[a] = transforms[a].forward(e.value);
            }
        }
        candidates.push(Candidate {
            series: i,
            price: cost_model.price(strategy_index, &artifacts.dirty_matrices[i]),
            delta_improvement,
            row_edits,
            treated,
        });
    }
    candidates
}

/// The baseline policies' fixed purchase order (candidate indices);
/// empty for [`SelectionPolicy::Greedy`], which orders adaptively.
fn baseline_order(
    policy: SelectionPolicy,
    candidates: &[Candidate],
    index: &GlitchIndex,
    dirty_matrices: &[GlitchMatrix],
    shuffle_seed: u64,
) -> Vec<usize> {
    match policy {
        SelectionPolicy::Greedy => Vec::new(),
        SelectionPolicy::DirtiestFirst => {
            let num_series = dirty_matrices.len();
            let mut candidate_of_series = vec![usize::MAX; num_series];
            for (ci, c) in candidates.iter().enumerate() {
                candidate_of_series[c.series] = ci;
            }
            dirtiest_ranking(index, dirty_matrices)
                .into_iter()
                .map(|s| candidate_of_series[s])
                .filter(|&ci| ci != usize::MAX)
                .collect()
        }
        SelectionPolicy::Random => {
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            // Fisher–Yates (the vendored rand shim has no SliceRandom).
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                order.swap(i, j);
            }
            order
        }
    }
}

/// Merges two row-ascending, row-disjoint edit sets into one.
fn merge_edits(a: &[(usize, Vec<f64>)], b: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 < b[j].0 {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Plans the purchase trajectory up to `max_budget` under one policy.
///
/// `score_union` scores the primary metric's distortion of an edit set —
/// the engine path scores it incrementally
/// ([`crate::PreparedKernel::score_edits`]), the reference path
/// materializes; both are bit-identical by the kernel contract, so the
/// greedy decisions cannot diverge between paths.
fn plan_trajectory(
    candidates: &[Candidate],
    policy: SelectionPolicy,
    order: &[usize],
    distortion_weight: f64,
    max_budget: f64,
    mut score_union: impl FnMut(Vec<(usize, Vec<f64>)>) -> Result<f64>,
) -> Result<Vec<usize>> {
    if policy != SelectionPolicy::Greedy {
        // The baseline order is budget-independent; affordability is
        // decided per budget point by [`fill_from_order`].
        return Ok(order.to_vec());
    }
    let mut steps = Vec::new();
    let mut spent = 0.0;

    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut selected_edits: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut current_d = score_union(selected_edits.clone())?;
    loop {
        // Best affordable candidate by marginal gain per dollar, compared
        // by cross-multiplication so zero prices and negative gains order
        // correctly; strict `>` keeps ties on the earlier (lower-index)
        // candidate.
        let mut best: Option<(usize, f64, f64)> = None; // (position, gain, d_after)
        for (pos, &c) in remaining.iter().enumerate() {
            let cand = &candidates[c];
            if spent + cand.price > max_budget {
                continue;
            }
            let d_after = score_union(merge_edits(&selected_edits, &cand.row_edits))?;
            let gain = cand.delta_improvement - distortion_weight * (d_after - current_d);
            let better = match best {
                None => true,
                Some((bpos, bgain, _)) => {
                    gain * candidates[remaining[bpos]].price > bgain * cand.price
                }
            };
            if better {
                best = Some((pos, gain, d_after));
            }
        }
        let Some((pos, gain, d_after)) = best else {
            break; // nothing affordable remains
        };
        if gain <= 0.0 {
            break; // spending more only hurts the objective
        }
        let c = remaining.swap_remove(pos);
        selected_edits = merge_edits(&selected_edits, &candidates[c].row_edits);
        current_d = d_after;
        spent += candidates[c].price;
        steps.push(c);
    }
    Ok(steps)
}

/// Fills one budget point's selection from a trajectory's purchase
/// order: walk the planned purchases in order, buy each one the
/// remaining budget affords, skip the rest. Returns the selected
/// candidate indices (purchase order) and the actual spend. At the
/// maximum requested budget this reproduces the planned purchases
/// exactly; at smaller budgets a too-expensive early purchase is skipped
/// rather than truncating the whole trajectory.
fn fill_from_order(candidates: &[Candidate], order: &[usize], budget: f64) -> (Vec<usize>, f64) {
    let mut selected = Vec::new();
    let mut spent = 0.0;
    for &c in order {
        if spent + candidates[c].price > budget {
            continue;
        }
        spent += candidates[c].price;
        selected.push(c);
    }
    (selected, spent)
}

/// The selection's combined row edits, concatenated in series order (the
/// series blocks are disjoint and row offsets ascend with the series
/// index, so this is row-ascending).
fn selection_edits(candidates: &[Candidate], selected: &[usize]) -> Vec<(usize, Vec<f64>)> {
    let mut by_series: Vec<usize> = selected.to_vec();
    by_series.sort_by_key(|&c| candidates[c].series);
    let mut merged = Vec::new();
    for &c in &by_series {
        merged.extend_from_slice(&candidates[c].row_edits);
    }
    merged
}

/// The selection's treated annotations: dirty annotations with every
/// selected series replaced by its repaired re-detection.
fn selection_matrices(
    candidates: &[Candidate],
    selected: &[usize],
    dirty_matrices: &[GlitchMatrix],
) -> Vec<GlitchMatrix> {
    let mut treated: Vec<GlitchMatrix> = dirty_matrices.to_vec();
    for &c in selected {
        treated[candidates[c].series] = candidates[c].treated.clone();
    }
    treated
}

/// Everything one replication's budget units share, behind the engine's
/// group slot.
struct SharedOptimizer {
    shared: SharedReplication,
    /// Per strategy: the lazily planned purchase trajectory, built by the
    /// first `(strategy, budget)` unit to arrive.
    plans: Vec<OnceLock<Result<StrategyPlan>>>,
}

/// Runs the budget optimizer on the staged engine (see the module docs).
/// Bit-identical to [`budget_optimize_reference`].
///
/// Points come back replication-major, then strategy, then budget.
pub fn budget_optimize(
    data: &Dataset,
    config: &BudgetOptimizerConfig,
) -> Result<Vec<FrontierPoint>> {
    budget_optimize_with(
        data,
        config,
        &ThreadPoolExecutor::new(config.experiment.threads),
    )
}

/// Like [`budget_optimize`], on a caller-supplied executor.
pub fn budget_optimize_with<E: TaskExecutor>(
    data: &Dataset,
    config: &BudgetOptimizerConfig,
    executor: &E,
) -> Result<Vec<FrontierPoint>> {
    config.validate()?;
    let experiment = Experiment::new(config.experiment.clone());
    let prepared = experiment.prepare(data)?;
    let transforms = prepared.transforms();
    let index = GlitchIndex::new(config.experiment.weights);
    let nb = config.budgets.len();
    let max_budget = config.budgets.iter().copied().fold(0.0, f64::max);
    let seed = config.experiment.seed;

    let unit_results = run_staged(
        executor,
        config.experiment.replications,
        config.strategies.len() * nb,
        |r| SharedOptimizer {
            shared: share_replication(
                prepared.replication(r),
                transforms,
                &config.experiment.metrics,
            ),
            plans: (0..config.strategies.len())
                .map(|_| OnceLock::new())
                .collect(),
        },
        |opt, r, u| -> Result<FrontierPoint> {
            let (si, bi) = (u / nb, u % nb);
            let strategy = &config.strategies[si];
            let plan = opt.plans[si].get_or_init(|| {
                let model = if strategy.missing_treatment() == MissingTreatment::ModelImpute {
                    Some(opt.shared.model_fit())
                } else {
                    None
                };
                let candidates = build_candidates(
                    &opt.shared.artifacts,
                    transforms,
                    &index,
                    &config.cost_model,
                    strategy,
                    si,
                    seed,
                    model,
                    opt.shared.cache.rows(),
                    &opt.shared.row_offsets,
                );
                let order = baseline_order(
                    config.policy,
                    &candidates,
                    &index,
                    &opt.shared.artifacts.dirty_matrices,
                    shuffle_seed(seed, r, si),
                );
                let primary = &opt.shared.kernels[0].prepared;
                let steps = match config.transport {
                    TransportMode::Cold => plan_trajectory(
                        &candidates,
                        config.policy,
                        &order,
                        config.distortion_weight,
                        max_budget,
                        |edits| primary.score_edits(&opt.shared.cache, edits),
                    ),
                    // The plan runs once per strategy (under the
                    // `OnceLock`), sequentially, so one checked-out batch
                    // arena sees the whole candidate sweep in a
                    // deterministic order — exactly the shape warm starts
                    // want: same dirty signature, same support, perturbed
                    // cleaned masses.
                    TransportMode::Warm => opt.shared.cache.with_transport(|batch| {
                        plan_trajectory(
                            &candidates,
                            config.policy,
                            &order,
                            config.distortion_weight,
                            max_budget,
                            |edits| primary.score_edits_with(&opt.shared.cache, edits, batch),
                        )
                    }),
                }?;
                Ok(StrategyPlan {
                    candidates,
                    order: steps,
                })
            });
            let plan = match plan {
                Ok(plan) => plan,
                Err(e) => return Err(e.clone()),
            };

            let budget = config.budgets[bi];
            let (selected, spent) = fill_from_order(&plan.candidates, &plan.order, budget);
            let merged = selection_edits(&plan.candidates, &selected);
            let patched = PatchedCloud::new(&opt.shared.cache, merged);
            let mut distortions = Vec::with_capacity(opt.shared.kernels.len());
            for kernel in &opt.shared.kernels {
                distortions.push(MetricScore {
                    metric: kernel.name,
                    value: kernel.prepared.score_patch(&patched)?,
                });
            }
            let treated = selection_matrices(
                &plan.candidates,
                &selected,
                &opt.shared.artifacts.dirty_matrices,
            );
            Ok(FrontierPoint {
                budget,
                replication: r,
                strategy: strategy.name(),
                strategy_index: si,
                policy: config.policy,
                spent,
                series_cleaned: selected.len(),
                improvement: index.improvement(&opt.shared.artifacts.dirty_matrices, &treated),
                distortion: distortions[0].value,
                distortions,
                treated_report: GlitchReport::from_matrices(&treated),
            })
        },
    );

    let mut out = Vec::with_capacity(unit_results.len());
    for point in unit_results {
        out.push(point?);
    }
    Ok(out)
}

/// The preserved replication-granular reference path: one task per
/// replication, fully materializing the cleaned cloud for every trajectory
/// step and frontier point and scoring it through
/// [`crate::DistortionKernel::score_rows`].
///
/// Kept in-tree as [`budget_optimize`]'s bit-identity oracle (enforced by
/// the tests in this module) and as the baseline the perf bin's
/// `budget_opt_ref` row measures.
pub fn budget_optimize_reference(
    data: &Dataset,
    config: &BudgetOptimizerConfig,
) -> Result<Vec<FrontierPoint>> {
    config.validate()?;
    let experiment = Experiment::new(config.experiment.clone());
    let prepared = experiment.prepare(data)?;
    let transforms = prepared.transforms();
    let index = GlitchIndex::new(config.experiment.weights);
    let max_budget = config.budgets.iter().copied().fold(0.0, f64::max);
    let seed = config.experiment.seed;
    let kernels: Vec<_> = config
        .experiment
        .metrics
        .iter()
        .map(|m| m.kernel())
        .collect();

    let apply_edits = |base_rows: &[Vec<f64>], edits: &[(usize, Vec<f64>)]| -> Vec<Vec<f64>> {
        let mut rows = base_rows.to_vec();
        for (row, values) in edits {
            rows[*row] = values.clone();
        }
        rows
    };

    let per_replication: Vec<Result<Vec<FrontierPoint>>> = crate::parallel_map(
        config.experiment.replications,
        config.experiment.threads,
        |r| -> Result<Vec<FrontierPoint>> {
            let artifacts = prepared.replication(r);
            let base_rows = pooled_working_rows(&artifacts.dirty, transforms);
            let mut row_offsets = Vec::with_capacity(artifacts.dirty.num_series());
            let mut offset = 0;
            for series in artifacts.dirty.series() {
                row_offsets.push(offset);
                offset += series.len();
            }
            // Same replication-level (maskless) fit as the engine path's
            // `SharedReplication::model_fit`, shared across strategies.
            let model_slot: OnceLock<ModelFit> = OnceLock::new();

            let mut points = Vec::new();
            for (si, strategy) in config.strategies.iter().enumerate() {
                let model = if strategy.missing_treatment() == MissingTreatment::ModelImpute {
                    Some(model_slot.get_or_init(|| {
                        ModelFit::fit(
                            &artifacts.dirty,
                            &artifacts.dirty_matrices,
                            &artifacts.context,
                            None,
                        )
                    }))
                } else {
                    None
                };
                let candidates = build_candidates(
                    &artifacts,
                    transforms,
                    &index,
                    &config.cost_model,
                    strategy,
                    si,
                    seed,
                    model,
                    &base_rows,
                    &row_offsets,
                );
                let order = baseline_order(
                    config.policy,
                    &candidates,
                    &index,
                    &artifacts.dirty_matrices,
                    shuffle_seed(seed, r, si),
                );
                let steps = plan_trajectory(
                    &candidates,
                    config.policy,
                    &order,
                    config.distortion_weight,
                    max_budget,
                    |edits| kernels[0].score_rows(&base_rows, &apply_edits(&base_rows, &edits)),
                )?;
                for &budget in &config.budgets {
                    let (selected, spent) = fill_from_order(&candidates, &steps, budget);
                    let merged = selection_edits(&candidates, &selected);
                    let cleaned_rows = apply_edits(&base_rows, &merged);
                    let mut distortions = Vec::with_capacity(kernels.len());
                    for kernel in &kernels {
                        distortions.push(MetricScore {
                            metric: kernel.name(),
                            value: kernel.score_rows(&base_rows, &cleaned_rows)?,
                        });
                    }
                    let treated =
                        selection_matrices(&candidates, &selected, &artifacts.dirty_matrices);
                    points.push(FrontierPoint {
                        budget,
                        replication: r,
                        strategy: strategy.name(),
                        strategy_index: si,
                        policy: config.policy,
                        spent,
                        series_cleaned: selected.len(),
                        improvement: index.improvement(&artifacts.dirty_matrices, &treated),
                        distortion: distortions[0].value,
                        distortions,
                        treated_report: GlitchReport::from_matrices(&treated),
                    });
                }
            }
            Ok(points)
        },
    );

    let mut out = Vec::new();
    for r in per_replication {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialExecutor;
    use sd_cleaning::paper_strategy;
    use sd_netsim::{generate, NetsimConfig};

    fn optimizer_config(policy: SelectionPolicy) -> BudgetOptimizerConfig {
        let mut experiment = ExperimentConfig::paper_default(12, 5);
        experiment.replications = 2;
        experiment.threads = 2;
        BudgetOptimizerConfig {
            experiment,
            strategies: vec![paper_strategy(1)],
            budgets: vec![0.0, 10.0, 40.0, 1e6],
            cost_model: CostModel::uniform(),
            policy,
            distortion_weight: 0.0,
            transport: TransportMode::Cold,
        }
    }

    fn data() -> Dataset {
        generate(&NetsimConfig::small(9)).dataset
    }

    #[test]
    fn cost_model_prices_by_glitch_kind_and_strategy() {
        let mut glitches = GlitchMatrix::new(2, 10);
        glitches.set(0, GlitchType::Missing, 1);
        glitches.set(1, GlitchType::Missing, 2);
        glitches.set(0, GlitchType::Outlier, 3);
        let model = CostModel {
            base_per_series: 5.0,
            per_missing_cell: 2.0,
            per_inconsistent_cell: 7.0,
            per_outlier_cell: 1.0,
            strategy_factors: vec![1.0, 3.0],
        };
        // 5 + 2·2 + 0·7 + 1·1 = 10, tripled for strategy 1.
        assert_eq!(model.price(0, &glitches), 10.0);
        assert_eq!(model.price(1, &glitches), 30.0);
        // Beyond the factor list the multiplier defaults to 1.
        assert_eq!(model.price(7, &glitches), 10.0);
        // The uniform model prices a series at its glitch-cell count.
        assert_eq!(CostModel::uniform().price(0, &glitches), 3.0);
        // Figure 2 coverage reciprocals.
        let re = CostModel::scenario(crate::BudgetScenario::Remeasure);
        assert!((re.per_missing_cell - 1.0 / 0.3).abs() < 1e-12);
    }

    #[test]
    fn cost_model_json_round_trips() {
        let model = CostModel {
            base_per_series: 1.5,
            per_missing_cell: 2.0,
            per_inconsistent_cell: 0.0,
            per_outlier_cell: 4.25,
            strategy_factors: vec![1.0, 0.5],
        };
        let text = serde_json::to_string_pretty(&model.to_json()).unwrap();
        assert_eq!(CostModel::from_json_str(&text).unwrap(), model);
        // `strategy_factors` is optional.
        let bare = CostModel::from_json_str(
            "{\"base_per_series\": 0, \"per_missing_cell\": 1, \
             \"per_inconsistent_cell\": 1, \"per_outlier_cell\": 1}",
        )
        .unwrap();
        assert_eq!(bare, CostModel::uniform());
    }

    #[test]
    fn cost_model_json_rejects_bad_documents() {
        for bad in [
            "not json",
            "{\"per_missing_cell\": 1}",
            "{\"base_per_series\": \"free\", \"per_missing_cell\": 1, \
             \"per_inconsistent_cell\": 1, \"per_outlier_cell\": 1}",
            "{\"base_per_series\": -2, \"per_missing_cell\": 1, \
             \"per_inconsistent_cell\": 1, \"per_outlier_cell\": 1}",
            "{\"base_per_series\": 0, \"per_missing_cell\": 1, \
             \"per_inconsistent_cell\": 1, \"per_outlier_cell\": 1, \
             \"strategy_factors\": [1, \"x\"]}",
        ] {
            assert!(
                matches!(
                    CostModel::from_json_str(bad),
                    Err(FrameworkError::InvalidConfig(_))
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = optimizer_config(SelectionPolicy::Greedy);
        c.budgets.clear();
        assert!(budget_optimize(&data(), &c).is_err());
        let mut c = optimizer_config(SelectionPolicy::Greedy);
        c.budgets = vec![f64::INFINITY];
        assert!(budget_optimize(&data(), &c).is_err());
        let mut c = optimizer_config(SelectionPolicy::Greedy);
        c.strategies.clear();
        assert!(budget_optimize(&data(), &c).is_err());
        let mut c = optimizer_config(SelectionPolicy::Greedy);
        c.distortion_weight = -1.0;
        assert!(budget_optimize(&data(), &c).is_err());
        let mut c = optimizer_config(SelectionPolicy::Greedy);
        c.cost_model.per_missing_cell = f64::NAN;
        assert!(budget_optimize(&data(), &c).is_err());
    }

    #[test]
    fn frontier_fills_from_planned_order() {
        let data = data();
        for policy in [
            SelectionPolicy::Greedy,
            SelectionPolicy::DirtiestFirst,
            SelectionPolicy::Random,
        ] {
            let config = optimizer_config(policy);
            let points = budget_optimize(&data, &config).unwrap();
            // 2 replications × 1 strategy × 4 budgets.
            assert_eq!(points.len(), 8, "{policy:?}");
            for (k, p) in points.iter().enumerate() {
                assert_eq!(p.replication, k / 4);
                assert_eq!(p.budget, config.budgets[k % 4]);
                assert_eq!(p.policy, policy);
                assert!(p.spent <= p.budget + 1e-12, "{policy:?}: {p:?}");
                assert!(p.distortion.is_finite() && p.distortion >= 0.0);
            }
            // Budget 0 buys nothing. Fill-from-order is not monotone in
            // general (a larger budget can afford an expensive early
            // purchase that crowds out later cheap ones), but on this
            // instance growing budgets grow the selection.
            for r in 0..2 {
                let by_budget: Vec<&FrontierPoint> =
                    points.iter().filter(|p| p.replication == r).collect();
                assert_eq!(by_budget[0].series_cleaned, 0);
                assert_eq!(by_budget[0].improvement, 0.0);
                assert!(by_budget[0].distortion.abs() < 1e-9);
                for w in by_budget.windows(2) {
                    assert!(w[1].series_cleaned >= w[0].series_cleaned);
                    assert!(w[1].spent >= w[0].spent);
                    assert!(w[1].improvement >= w[0].improvement - 1e-12);
                }
                // The unbounded budget cleans every glitched series under
                // a pure-improvement objective (λ = 0).
                let last = by_budget.last().unwrap();
                assert!(last.series_cleaned > 0, "{policy:?}");
            }
        }
    }

    #[test]
    fn engine_is_bit_identical_to_reference_across_kernels_and_policies() {
        let data = data();
        for policy in [
            SelectionPolicy::Greedy,
            SelectionPolicy::DirtiestFirst,
            SelectionPolicy::Random,
        ] {
            let mut config = optimizer_config(policy);
            config.experiment.metrics = crate::DistortionMetric::full_suite();
            config.distortion_weight = 0.5;
            let reference = budget_optimize_reference(&data, &config).unwrap();
            let engine = budget_optimize(&data, &config).unwrap();
            assert_eq!(reference.len(), engine.len());
            for (a, b) in reference.iter().zip(&engine) {
                assert_eq!(a.budget, b.budget);
                assert_eq!(a.replication, b.replication);
                assert_eq!(a.strategy_index, b.strategy_index);
                assert_eq!(a.series_cleaned, b.series_cleaned, "{policy:?}");
                assert_eq!(a.spent.to_bits(), b.spent.to_bits());
                assert_eq!(
                    a.improvement.to_bits(),
                    b.improvement.to_bits(),
                    "improvement diverged under {policy:?} at r={} b={}",
                    a.replication,
                    a.budget
                );
                assert_eq!(a.distortions.len(), 6);
                for (x, y) in a.distortions.iter().zip(&b.distortions) {
                    assert_eq!(x.metric, y.metric);
                    assert_eq!(
                        x.value.to_bits(),
                        y.value.to_bits(),
                        "{} diverged under {policy:?} at r={} b={}",
                        x.metric,
                        a.replication,
                        a.budget
                    );
                }
                assert_eq!(a.treated_report, b.treated_report);
            }
        }
    }

    #[test]
    fn warm_transport_matches_cold_within_contract() {
        // `TransportMode::Warm` reuses one batch arena per trajectory
        // plan, warm-starting the greedy sweep's EMD transports. Pivot
        // order may legitimately differ from cold solves, so the contract
        // is the batch layer's relative tolerance on objectives — and on
        // this fixed seed the greedy decisions (purchases, spend) come
        // out identical, which pins the frontier points together.
        let data = data();
        let mut cold_config = optimizer_config(SelectionPolicy::Greedy);
        cold_config.distortion_weight = 0.5;
        let mut warm_config = cold_config.clone();
        warm_config.transport = TransportMode::Warm;
        let cold = budget_optimize(&data, &cold_config).unwrap();
        let warm = budget_optimize(&data, &warm_config).unwrap();
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.budget, w.budget);
            assert_eq!(c.replication, w.replication);
            assert_eq!(c.series_cleaned, w.series_cleaned);
            assert_eq!(c.spent.to_bits(), w.spent.to_bits());
            assert!(
                (c.distortion - w.distortion).abs() <= 1e-9 * (1.0 + c.distortion.abs()),
                "distortion out of contract at r={} b={}: cold {} vs warm {}",
                c.replication,
                c.budget,
                c.distortion,
                w.distortion
            );
        }
        // Warm mode is deterministic: the plan runs once, sequentially,
        // on a chain-reset arena, so re-running reproduces every bit.
        let again = budget_optimize(&data, &warm_config).unwrap();
        for (a, b) in warm.iter().zip(&again) {
            assert_eq!(a.spent.to_bits(), b.spent.to_bits());
            assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
        }
    }

    #[test]
    fn deterministic_across_executors_and_thread_counts() {
        let data = data();
        let mut config = optimizer_config(SelectionPolicy::Greedy);
        config.strategies = vec![paper_strategy(1), paper_strategy(3)];
        config.distortion_weight = 0.2;
        let serial = budget_optimize_with(&data, &config, &SerialExecutor).unwrap();
        let one = budget_optimize_with(&data, &config, &ThreadPoolExecutor::new(1)).unwrap();
        let two = budget_optimize_with(&data, &config, &ThreadPoolExecutor::new(2)).unwrap();
        assert_eq!(serial.len(), 2 * 2 * 4);
        for (a, b) in serial.iter().zip(&one).chain(serial.iter().zip(&two)) {
            assert_eq!(a.series_cleaned, b.series_cleaned);
            assert_eq!(a.spent.to_bits(), b.spent.to_bits());
            assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
            assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
        }
    }

    #[test]
    fn greedy_dominates_dirtiest_first_at_equal_spend() {
        // The greedy policy picks by improvement-per-dollar, so at every
        // budget its *objective* (λ = 0: pure improvement) is at least the
        // dirtiest-first baseline's on this instance. Greedy is a knapsack
        // heuristic, not an optimum — this is an empirical pin on the
        // fixed seed, not a theorem; a regression here means the policy
        // changed, not that the sky fell.
        let data = data();
        let greedy = budget_optimize(&data, &optimizer_config(SelectionPolicy::Greedy)).unwrap();
        let dirtiest =
            budget_optimize(&data, &optimizer_config(SelectionPolicy::DirtiestFirst)).unwrap();
        let mut strictly_better = 0;
        for (g, d) in greedy.iter().zip(&dirtiest) {
            assert_eq!(g.budget, d.budget);
            assert!(
                g.improvement >= d.improvement - 1e-9,
                "greedy lost at r={} budget={}: {} < {}",
                g.replication,
                g.budget,
                g.improvement,
                d.improvement
            );
            if g.improvement > d.improvement + 1e-9 {
                strictly_better += 1;
            }
        }
        assert!(
            strictly_better > 0,
            "greedy should beat the baseline somewhere on constrained budgets"
        );
    }

    #[test]
    fn distortion_weight_trades_improvement_for_distortion() {
        // A heavily penalized greedy run never distorts more than the
        // unpenalized one at the same budget (it stops buying earlier or
        // picks gentler repairs).
        let data = data();
        let free = budget_optimize(&data, &optimizer_config(SelectionPolicy::Greedy)).unwrap();
        let mut config = optimizer_config(SelectionPolicy::Greedy);
        config.distortion_weight = 1e6;
        let taxed = budget_optimize(&data, &config).unwrap();
        for (f, t) in free.iter().zip(&taxed) {
            assert!(t.distortion <= f.distortion + 1e-9);
            assert!(t.series_cleaned <= f.series_cleaned);
        }
    }
}
