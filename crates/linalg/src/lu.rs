use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// Fallback solver for square systems that are not symmetric positive
/// definite (the Cholesky path covers the common covariance case).
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined storage: `L` below the diagonal (unit diagonal implied),
    /// `U` on and above it.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now in row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    sign: f64,
}

impl LuFactor {
    /// Pivot magnitudes below this threshold are treated as zero.
    const SINGULAR_TOL: f64 = 1e-300;

    /// Factorizes a square matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if a.rows() == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let mag = lu[(i, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag < Self::SINGULAR_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let sub = factor * lu[(k, j)];
                    lu[(i, j)] -= sub;
                }
            }
        }
        Ok(LuFactor { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                got: format!("length {}", b.len()),
            });
        }
        // Apply permutation, then forward substitution with unit-diagonal L.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Explicit inverse; prefer [`LuFactor::solve`] for single systems.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_general_system() {
        let a = Matrix::from_rows(&[
            &[0.0, 2.0, 1.0], // zero pivot forces a row swap
            &[1.0, -1.0, 3.0],
            &[2.0, 4.0, -2.0],
        ])
        .unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let b = vec![3.0, 2.0, 1.0];
        let x = lu.solve(&b).unwrap();
        let back = a.mat_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10, "got {back:?}");
        }
    }

    #[test]
    fn determinant_matches_closed_form() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.determinant() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_row_swaps() {
        // Permutation matrix with det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(LuFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            LuFactor::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::INFINITY;
        assert!(matches!(LuFactor::new(&a), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = LuFactor::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
