use crate::{LinalgError, Matrix, Result};

/// Column means of a set of observation rows.
///
/// `rows` is a slice of observations, each of identical length `v`.
pub fn mean_vector(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    if rows.is_empty() {
        return Err(LinalgError::Empty);
    }
    let v = rows[0].len();
    if v == 0 {
        return Err(LinalgError::Empty);
    }
    let mut mean = vec![0.0; v];
    for (i, row) in rows.iter().enumerate() {
        if row.len() != v {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("row of length {v}"),
                got: format!("row {i} of length {}", row.len()),
            });
        }
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    let n = rows.len() as f64;
    for m in &mut mean {
        *m /= n;
    }
    Ok(mean)
}

/// Sample covariance matrix (denominator `n - 1`) over complete rows.
///
/// Rows containing NaN are rejected with [`LinalgError::NonFinite`]; use
/// [`pairwise_covariance_matrix`] when missing values must be tolerated.
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Result<Matrix> {
    if rows.len() < 2 {
        return Err(LinalgError::Empty);
    }
    for row in rows {
        if row.iter().any(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
    }
    let mean = mean_vector(rows)?;
    let v = mean.len();
    let mut cov = Matrix::zeros(v, v);
    for row in rows {
        for i in 0..v {
            let di = row[i] - mean[i];
            for j in i..v {
                cov[(i, j)] += di * (row[j] - mean[j]);
            }
        }
    }
    let denom = (rows.len() - 1) as f64;
    for i in 0..v {
        for j in i..v {
            let c = cov[(i, j)] / denom;
            cov[(i, j)] = c;
            cov[(j, i)] = c;
        }
    }
    Ok(cov)
}

/// Pairwise-complete covariance matrix for rows that may contain NaN
/// (missing) entries.
///
/// Each entry `(i, j)` is estimated over the rows where *both* attributes
/// are present, centred on pairwise means. This is the standard starting
/// estimate for EM over multivariate-normal data with missing values; the
/// result is symmetric but not guaranteed positive definite, so downstream
/// consumers should factor it with
/// [`CholeskyFactor::new_regularized`](crate::CholeskyFactor::new_regularized).
///
/// Returns the covariance matrix together with the vector of per-attribute
/// means over present values.
pub fn pairwise_covariance_matrix(rows: &[Vec<f64>]) -> Result<(Matrix, Vec<f64>)> {
    if rows.is_empty() {
        return Err(LinalgError::Empty);
    }
    let v = rows[0].len();
    if v == 0 {
        return Err(LinalgError::Empty);
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != v {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("row of length {v}"),
                got: format!("row {i} of length {}", row.len()),
            });
        }
    }

    // Per-attribute means over present (non-NaN) values.
    let mut mean = vec![0.0; v];
    let mut count = vec![0usize; v];
    for row in rows {
        for (k, &x) in row.iter().enumerate() {
            if x.is_finite() {
                mean[k] += x;
                count[k] += 1;
            }
        }
    }
    for k in 0..v {
        if count[k] == 0 {
            // Attribute entirely missing: mean defaults to 0 so callers can
            // still regularize; variance will be 0 on the diagonal.
            mean[k] = 0.0;
        } else {
            mean[k] /= count[k] as f64;
        }
    }

    let mut cov = Matrix::zeros(v, v);
    let mut pair_n = vec![0usize; v * v];
    for row in rows {
        for i in 0..v {
            let xi = row[i];
            if !xi.is_finite() {
                continue;
            }
            for j in i..v {
                let xj = row[j];
                if !xj.is_finite() {
                    continue;
                }
                cov[(i, j)] += (xi - mean[i]) * (xj - mean[j]);
                pair_n[i * v + j] += 1;
            }
        }
    }
    for i in 0..v {
        for j in i..v {
            let n = pair_n[i * v + j];
            let c = if n >= 2 {
                cov[(i, j)] / (n as f64 - 1.0)
            } else {
                0.0
            };
            cov[(i, j)] = c;
            cov[(j, i)] = c;
        }
    }
    Ok((cov, mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_rows() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0]];
        assert_eq!(mean_vector(&rows).unwrap(), vec![2.0, 15.0]);
    }

    #[test]
    fn mean_rejects_empty_and_ragged() {
        assert!(mean_vector(&[]).is_err());
        assert!(mean_vector(&[vec![]]).is_err());
        assert!(mean_vector(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn covariance_of_perfectly_correlated_data() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let cov = covariance_matrix(&rows).unwrap();
        // var(x) of 0..9 is 55/6; cov(x, 2x) = 2 var(x); var(2x) = 4 var(x).
        let var_x = cov[(0, 0)];
        assert!((cov[(0, 1)] - 2.0 * var_x).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0 * var_x).abs() < 1e-12);
        assert!(cov.is_symmetric(1e-15));
    }

    #[test]
    fn covariance_rejects_nan_and_short_input() {
        assert!(covariance_matrix(&[vec![1.0]]).is_err());
        assert!(matches!(
            covariance_matrix(&[vec![1.0], vec![f64::NAN]]),
            Err(LinalgError::NonFinite)
        ));
    }

    #[test]
    fn pairwise_matches_complete_case_when_no_missing() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x = i as f64;
                vec![x, x * x / 10.0, 3.0 - x]
            })
            .collect();
        let full = covariance_matrix(&rows).unwrap();
        let (pair, mean) = pairwise_covariance_matrix(&rows).unwrap();
        assert!(full.max_abs_diff(&pair).unwrap() < 1e-12);
        let direct_mean = mean_vector(&rows).unwrap();
        for (a, b) in mean.iter().zip(&direct_mean) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_tolerates_missing_values() {
        let rows = vec![
            vec![1.0, f64::NAN],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
            vec![f64::NAN, 8.0],
        ];
        let (cov, mean) = pairwise_covariance_matrix(&rows).unwrap();
        // Attribute 0 mean over {1,2,3} = 2; attribute 1 over {4,6,8} = 6.
        assert!((mean[0] - 2.0).abs() < 1e-12);
        assert!((mean[1] - 6.0).abs() < 1e-12);
        // Cross term uses only rows 1 and 2.
        assert!(cov[(0, 1)].is_finite());
        assert!(cov.is_symmetric(1e-15));
    }

    #[test]
    fn pairwise_with_entirely_missing_attribute() {
        let rows = vec![vec![1.0, f64::NAN], vec![2.0, f64::NAN]];
        let (cov, mean) = pairwise_covariance_matrix(&rows).unwrap();
        assert_eq!(mean[1], 0.0);
        assert_eq!(cov[(1, 1)], 0.0);
    }

    #[test]
    fn pairwise_rejects_empty() {
        assert!(pairwise_covariance_matrix(&[]).is_err());
        assert!(pairwise_covariance_matrix(&[vec![]]).is_err());
    }
}
