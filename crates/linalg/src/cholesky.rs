use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
///
/// Used by the model-based imputer to (a) sample from a multivariate
/// Gaussian (`x = μ + L z` with `z ~ N(0, I)`) and (b) solve `A x = b`
/// for conditional means, and by the Mahalanobis metric to whiten
/// difference vectors.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle carries rounding noise. Returns
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Factorizes `a + ridge * I`, growing `ridge` geometrically until the
    /// factorization succeeds (up to `max_tries` doublings).
    ///
    /// This is the standard regularization used when a sample covariance is
    /// rank-deficient — e.g. when an attribute is constant within the
    /// observed part of a replication sample.
    pub fn new_regularized(a: &Matrix, initial_ridge: f64, max_tries: u32) -> Result<Self> {
        match CholeskyFactor::new(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let n = a.rows();
        let mut ridge = initial_ridge.max(f64::MIN_POSITIVE);
        let mut last = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries {
            let mut reg = a.clone();
            for i in 0..n {
                reg[(i, i)] += ridge;
            }
            match CholeskyFactor::new(&reg) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => last = e,
                Err(e) => return Err(e),
            }
            ridge *= 10.0;
        }
        Err(last)
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` by forward substitution.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                got: format!("length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` by back substitution.
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                got: format!("length {}", y.len()),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Computes `L z` — the correlated-noise transform used when sampling
    /// `N(μ, A)` as `μ + L z`.
    pub fn lower_mul(&self, z: &[f64]) -> Vec<f64> {
        self.l.mat_vec(z)
    }

    /// Determinant of the original matrix `A = L Lᵀ`
    /// (the product of squared diagonal entries of `L`).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.l[(i, i)];
            det *= d * d;
        }
        det
    }

    /// Log-determinant of `A`; numerically preferable to `determinant().ln()`.
    pub fn log_determinant(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.dim() {
            acc += self.l[(i, i)].ln();
        }
        2.0 * acc
    }

    /// Explicit inverse of `A`. Only sensible for the tiny matrices this
    /// crate targets; prefer [`CholeskyFactor::solve`] where possible.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]]).unwrap()
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = spd3();
        let c = CholeskyFactor::new(&a).unwrap();
        let rec = c.l().mat_mul(&c.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let c = CholeskyFactor::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve(&b).unwrap();
        let back = a.mat_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalue -1
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty_and_nan() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            CholeskyFactor::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NonFinite)
        ));
    }

    #[test]
    fn regularization_rescues_singular_covariance() {
        // Rank-1 matrix: constant attribute within the sample.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(CholeskyFactor::new(&a).is_err());
        let c = CholeskyFactor::new_regularized(&a, 1e-9, 20).unwrap();
        assert_eq!(c.dim(), 2);
        // The regularized factor should still be close to the original.
        let rec = c.l().mat_mul(&c.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-3);
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::from_diagonal(&[4.0, 9.0]);
        let c = CholeskyFactor::new(&a).unwrap();
        assert!((c.determinant() - 36.0).abs() < 1e-12);
        assert!((c.log_determinant() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = CholeskyFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn lower_mul_matches_matrix_product() {
        let a = spd3();
        let c = CholeskyFactor::new(&a).unwrap();
        let z = vec![0.3, -1.2, 2.0];
        assert_eq!(c.lower_mul(&z), c.l().mat_vec(&z));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let c = CholeskyFactor::new(&spd3()).unwrap();
        assert!(c.solve(&[1.0]).is_err());
        assert!(c.solve_lower(&[1.0]).is_err());
        assert!(c.solve_upper(&[1.0]).is_err());
    }
}
