use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64`.
///
/// This is deliberately minimal: the statistical-distortion framework only
/// needs small matrices (covariances over a handful of attributes), so the
/// type optimizes for clarity and bounds-checked safety rather than raw
/// throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices. All rows must have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    got: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    pub fn mat_mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                got: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`. Panics if `v.len() != cols`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mat_vec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Extracts the square submatrix with the given row/column indices
    /// (used to marginalize a covariance matrix onto a subset of attributes).
    pub fn select(&self, idx: &[usize]) -> Result<Matrix> {
        self.select_rect(idx, idx)
    }

    /// Extracts the submatrix with rows from `row_idx` and columns from
    /// `col_idx`, in the given order.
    pub fn select_rect(&self, row_idx: &[usize], col_idx: &[usize]) -> Result<Matrix> {
        for &i in row_idx {
            if i >= self.rows {
                return Err(LinalgError::DimensionMismatch {
                    expected: format!("row index < {}", self.rows),
                    got: format!("{i}"),
                });
            }
        }
        for &j in col_idx {
            if j >= self.cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: format!("col index < {}", self.cols),
                    got: format!("{j}"),
                });
            }
        }
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Maximum absolute difference to another matrix of identical shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(self.shape_mismatch(other));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Whether the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(self.shape_mismatch(other));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    fn shape_mismatch(&self, other: &Matrix) -> LinalgError {
        LinalgError::DimensionMismatch {
            expected: format!("{}x{}", self.rows, self.cols),
            got: format!("{}x{}", other.rows, other.cols),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_checks_raggedness() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(matches!(err, Err(LinalgError::DimensionMismatch { .. })));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mat_mul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn mat_mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mat_mul(&b).is_err());
    }

    #[test]
    fn mat_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn select_marginalizes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let s = m.select(&[0, 2]).unwrap();
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 3.0], &[7.0, 9.0]]).unwrap());

        let r = m.select_rect(&[1], &[0, 2]).unwrap();
        assert_eq!(r, Matrix::from_rows(&[&[4.0, 6.0]]).unwrap());
    }

    #[test]
    fn select_rejects_out_of_range() {
        let m = Matrix::identity(2);
        assert!(m.select(&[2]).is_err());
        assert!(m.select_rect(&[0], &[5]).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Matrix::identity(2);
        let b = a.scale(1.5);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-15);
        assert!(a.max_abs_diff(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
