use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix dimensions do not match what the operation requires.
    DimensionMismatch {
        /// What the operation expected, e.g. `"square matrix"`.
        expected: String,
        /// What it got, e.g. `"3x4"`.
        got: String,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where the failure was detected.
        pivot: usize,
    },
    /// LU factorization failed: the matrix is singular (or numerically so).
    Singular {
        /// Index of the pivot where the failure was detected.
        pivot: usize,
    },
    /// The input was empty where at least one element was required.
    Empty,
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot})")
            }
            LinalgError::Empty => write!(f, "empty input"),
            LinalgError::NonFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: "square matrix".into(),
            got: "3x4".into(),
        };
        assert!(e.to_string().contains("3x4"));
        assert!(LinalgError::NotPositiveDefinite { pivot: 2 }
            .to_string()
            .contains("pivot 2"));
        assert!(LinalgError::Singular { pivot: 0 }
            .to_string()
            .contains("singular"));
        assert_eq!(LinalgError::Empty.to_string(), "empty input");
        assert!(LinalgError::NonFinite.to_string().contains("NaN"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Empty, LinalgError::Empty);
        assert_ne!(
            LinalgError::Singular { pivot: 0 },
            LinalgError::Singular { pivot: 1 }
        );
    }
}
