use crate::{CholeskyFactor, LinalgError, Matrix, Result};

/// Squared Mahalanobis distance `(x - μ)ᵀ Σ⁻¹ (x - μ)`.
///
/// `chol` must be the Cholesky factor of the covariance `Σ`. Computed by
/// whitening: solve `L y = (x - μ)` and return `‖y‖²`, which avoids forming
/// the explicit inverse.
pub fn mahalanobis_distance_sq(x: &[f64], mean: &[f64], chol: &CholeskyFactor) -> Result<f64> {
    if x.len() != mean.len() || x.len() != chol.dim() {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("vectors of length {}", chol.dim()),
            got: format!("x: {}, mean: {}", x.len(), mean.len()),
        });
    }
    let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
    let y = chol.solve_lower(&diff)?;
    Ok(y.iter().map(|v| v * v).sum())
}

/// Mahalanobis distance — square root of [`mahalanobis_distance_sq`].
pub fn mahalanobis_distance(x: &[f64], mean: &[f64], chol: &CholeskyFactor) -> Result<f64> {
    Ok(mahalanobis_distance_sq(x, mean, chol)?.sqrt())
}

/// A reusable Mahalanobis metric: a mean vector plus a factored covariance.
///
/// The statistical-distortion framework uses this as one of the alternative
/// distances named in Definition 1 of the paper: the distortion between a
/// dirty set `D` and its cleaned version `D_C` is summarized as the
/// Mahalanobis distance between their mean vectors under `D`'s covariance.
#[derive(Debug, Clone)]
pub struct MahalanobisMetric {
    mean: Vec<f64>,
    chol: CholeskyFactor,
}

impl MahalanobisMetric {
    /// Builds the metric from a mean and covariance. The covariance is
    /// regularized if necessary (sample covariances of small replications
    /// can be rank-deficient).
    pub fn new(mean: Vec<f64>, covariance: &Matrix) -> Result<Self> {
        if covariance.rows() != mean.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{0}x{0} covariance", mean.len()),
                got: format!("{}x{}", covariance.rows(), covariance.cols()),
            });
        }
        let chol = CholeskyFactor::new_regularized(covariance, 1e-9, 30)?;
        Ok(MahalanobisMetric { mean, chol })
    }

    /// Fits the metric to complete observation rows.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        let cov = crate::covariance_matrix(rows)?;
        let mean = crate::mean_vector(rows)?;
        MahalanobisMetric::new(mean, &cov)
    }

    /// Dimensionality of the metric.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The centre of the metric.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Distance from the fitted mean to `x`.
    pub fn distance(&self, x: &[f64]) -> Result<f64> {
        mahalanobis_distance(x, &self.mean, &self.chol)
    }

    /// Distance between two arbitrary points under the fitted covariance.
    pub fn distance_between(&self, a: &[f64], b: &[f64]) -> Result<f64> {
        mahalanobis_distance(a, b, &self.chol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covariance_reduces_to_euclidean() {
        let chol = CholeskyFactor::new(&Matrix::identity(3)).unwrap();
        let d = mahalanobis_distance(&[1.0, 2.0, 2.0], &[0.0, 0.0, 0.0], &chol).unwrap();
        assert!((d - 3.0).abs() < 1e-12); // sqrt(1 + 4 + 4)
    }

    #[test]
    fn scaling_covariance_shrinks_distance() {
        let wide = CholeskyFactor::new(&Matrix::from_diagonal(&[4.0, 4.0])).unwrap();
        let narrow = CholeskyFactor::new(&Matrix::identity(2)).unwrap();
        let x = [2.0, 0.0];
        let mu = [0.0, 0.0];
        let d_wide = mahalanobis_distance(&x, &mu, &wide).unwrap();
        let d_narrow = mahalanobis_distance(&x, &mu, &narrow).unwrap();
        assert!((d_wide - 1.0).abs() < 1e-12);
        assert!((d_narrow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_covariance_matches_explicit_inverse() {
        let cov = Matrix::from_rows(&[&[2.0, 0.8], &[0.8, 1.0]]).unwrap();
        let chol = CholeskyFactor::new(&cov).unwrap();
        let inv = chol.inverse().unwrap();
        let x = [1.5, -0.5];
        let mu = [0.2, 0.1];
        let diff = [x[0] - mu[0], x[1] - mu[1]];
        let tmp = inv.mat_vec(&diff);
        let explicit: f64 = diff.iter().zip(&tmp).map(|(a, b)| a * b).sum();
        let via_chol = mahalanobis_distance_sq(&x, &mu, &chol).unwrap();
        assert!((explicit - via_chol).abs() < 1e-10);
    }

    #[test]
    fn metric_fit_and_distance() {
        // Cloud with distinct variances along the axes.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = (i as f64) / 10.0;
                vec![t.sin() * 10.0, t.cos()]
            })
            .collect();
        let metric = MahalanobisMetric::fit(&rows).unwrap();
        assert_eq!(metric.dim(), 2);
        // A deviation along the high-variance axis scores lower than the
        // same deviation along the low-variance axis.
        let m = metric.mean().to_vec();
        let d_high = metric.distance(&[m[0] + 5.0, m[1]]).unwrap();
        let d_low = metric.distance(&[m[0], m[1] + 5.0]).unwrap();
        assert!(d_high < d_low);
    }

    #[test]
    fn metric_rejects_mismatched_dimensions() {
        let cov = Matrix::identity(2);
        assert!(MahalanobisMetric::new(vec![0.0; 3], &cov).is_err());
        let metric = MahalanobisMetric::new(vec![0.0; 2], &cov).unwrap();
        assert!(metric.distance(&[0.0; 3]).is_err());
    }

    #[test]
    fn distance_between_is_symmetric() {
        let metric = MahalanobisMetric::new(
            vec![0.0, 0.0],
            &Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 2.0]]).unwrap(),
        )
        .unwrap();
        let a = [1.0, 2.0];
        let b = [-1.0, 0.5];
        let d1 = metric.distance_between(&a, &b).unwrap();
        let d2 = metric.distance_between(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
        assert!(metric.distance_between(&a, &a).unwrap() < 1e-12);
    }
}
