//! Small dense linear-algebra substrate for the statistical-distortion
//! framework.
//!
//! The paper's model-based imputer (an emulation of SAS `PROC MI`) and the
//! Mahalanobis distortion distance both need multivariate-Gaussian machinery:
//! covariance estimation, Cholesky factorization for sampling and solving,
//! and LU factorization with partial pivoting as a fallback for matrices
//! that are not positive definite.
//!
//! The dimensionality in this system is tiny (the paper's data has `v = 3`
//! attributes), so the implementations favour clarity and numerical
//! robustness over asymptotic cleverness: plain row-major storage, no
//! blocking, no unsafe code.
//!
//! # Example
//!
//! ```
//! use sd_linalg::{Matrix, CholeskyFactor};
//!
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
//! let chol = CholeskyFactor::new(&a).unwrap();
//! let x = chol.solve(&[2.0, 3.0]).unwrap();
//! // A * x == b
//! let b = a.mat_vec(&x);
//! assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 3.0).abs() < 1e-12);
//! ```

// Index-based loops are the clearer idiom in the dense numeric kernels
// of this crate.
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod covariance;
mod error;
mod lu;
mod mahalanobis;
mod matrix;

pub use cholesky::CholeskyFactor;
pub use covariance::{covariance_matrix, mean_vector, pairwise_covariance_matrix};
pub use error::LinalgError;
pub use lu::LuFactor;
pub use mahalanobis::{mahalanobis_distance, mahalanobis_distance_sq, MahalanobisMetric};
pub use matrix::Matrix;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
