//! Warm-started batch transportation solves on one reused scratch arena.
//!
//! The experiment engine scores every cleaning strategy of a replication
//! against the *same* dirty signature, so consecutive transportation
//! problems share their supply vector and (usually) their cost matrix —
//! only the demand side moves. [`BatchTransport`] exploits both facts:
//!
//! * **arena reuse** — the flow matrix, basis-tree arrays, dual vectors,
//!   adjacency scratch and marginal working copies are allocated once and
//!   recycled across solves ([`BatchTransport::solve_cold`] is this mode
//!   alone: it replays exactly the pivot sequence of a standalone
//!   [`crate::TransportProblem::solve`], so its results are
//!   **bit-identical** and safe anywhere the engine needs determinism);
//! * **warm starts** — when a solve shares the previous solve's shape,
//!   supply bits and cost bits, [`BatchTransport::solve`] keeps the
//!   previous optimal basis tree, recomputes the unique basic flows for
//!   the new demand vector by leaf elimination
//!   ([`BasisTree::flows_from_marginals`]), **repairs** any negative arcs
//!   with dual network-simplex pivots ([`BasisTree::dual_repair`] — the
//!   inherited basis stays dual-feasible because the costs are
//!   unchanged), and resumes primal pivoting from there. Near-identical
//!   demands (the common case: a cleaning strategy moves a few percent of
//!   rows) re-verify optimality in a handful of pivots instead of
//!   re-running the NW-corner staircase from scratch.
//!
//! A warm start whose repair stalls (no crossing candidate under heavy
//! degeneracy, pivot budget exhausted) or whose resumed pricing fails
//! falls back to the cold path on the same arena — counted in
//! [`BatchStats::fallbacks`] — so `solve` never errors where a cold solve
//! would have succeeded.
//!
//! [`BatchTransport::solve_chained`] extends warm starts across a
//! fraction ladder, where the *cost matrix drifts* link to link: an
//! unchanged shape with changed cost bits is repaired under the old
//! costs, repriced, and resumed ([`BatchStats::drift_hits`]). The grid
//! pipeline keeps even the *shape* stable across a ladder by embedding
//! each link into a [`ChainFrame`] slot roster with exactly-zero padding
//! — see that type's docs for the padding-soundness argument.
//!
//! **Objective contract.** Warm and cold solves both terminate at an
//! optimal basis of the same linear program, so their objectives agree
//! mathematically; the *pivot sequences* differ, so the floating-point
//! results may differ in the last bits when the optimum is degenerate
//! (alternative optimal bases). The enforced contract, tested here and in
//! the workspace property suite, is
//! `|warm − cold| ≤ 1e-9 · (1 + |cold|)`. Paths that must be
//! bit-identical (everything the engine compares against preserved
//! references) use `solve_cold` exclusively.

use crate::basis_tree::{BasisTree, BuildScratch};
use crate::transport::{northwest_corner_into, run_simplex, validate_balanced};
use crate::{EmdError, Result};
use std::cell::RefCell;

/// Basic flows inherited by a warm start below
/// `−WARM_FEASIBILITY_TOL × total mass` count as primal infeasibilities
/// and trigger the dual repair; flows in `[−tol, 0)` are degenerate
/// rounding residue and clamp to zero.
const WARM_FEASIBILITY_TOL: f64 = 1e-9;

/// Caller-managed cell frames for *padded* chained solves.
///
/// The grid pipeline's chained path ([`crate::GridEmd`]'s fraction-ladder
/// entry point) embeds every link's signature into a fixed roster of
/// *slots*, one roster per marginal, padding every slot whose anchor cell
/// the link does not occupy with exactly-zero mass. Zero-mass nodes force
/// zero flow in every feasible solution, so the padded optimum equals the
/// unpadded one; what padding buys is a *stable shape*: consecutive links
/// present the same `(n, m)` to [`BatchTransport::solve_chained`] even as
/// their occupied-cell sets drift, which is what lets the warm basis
/// survive the ladder.
///
/// When a link occupies a cell the roster has not seen, the frame first
/// tries to **re-anchor** a slot whose old cell the link vacated: a
/// zero-mass slot's ground position is arbitrary, so moving it to the new
/// cell is an ordinary cost perturbation — absorbed by the drifted warm
/// path without a shape change. The roster only grows (shape change →
/// cold restart, chain re-seeded) when the link occupies more cells than
/// the roster holds slots, which in a cleaning ladder happens on the few
/// early links where occupancy still rises.
///
/// The frame is opaque to the solver; it lives on the arena so
/// [`BatchTransport::reset_chain`] clears it together with the warm flag
/// at every pool checkout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainFrame {
    /// Slot roster framing the supply marginal.
    pub side_a: SideFrame,
    /// Slot roster framing the demand marginal.
    pub side_b: SideFrame,
}

impl ChainFrame {
    /// Covers both ascending cell lists, re-anchoring vacated slots where
    /// possible. Returns `true` when either link occupies more cells than
    /// its roster holds slots: the shape must change, so **both** rosters
    /// are rebuilt as exactly the link's cells — the forced cold restart
    /// then solves the *unpadded* instance (zero-mass padding makes the
    /// NW-corner start pathologically degenerate, so padded cold solves
    /// are avoided entirely) and re-seeds the chain from it.
    pub fn ensure_covers(&mut self, a: &[usize], b: &[usize]) -> bool {
        if a.len() > self.side_a.slot_cells.len() || b.len() > self.side_b.slot_cells.len() {
            self.side_a.rebuild(a);
            self.side_b.rebuild(b);
            return true;
        }
        self.side_a.cover(a);
        self.side_b.cover(b);
        false
    }
}

/// One marginal's slot roster (see [`ChainFrame`]): `slot_cells[s]` is
/// the grid cell slot `s` is anchored to. Anchors are pairwise distinct —
/// every anchored cell maps back to exactly one slot — but the roster is
/// *not* sorted: re-anchoring and growth append or overwrite in coverage
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideFrame {
    slot_cells: Vec<usize>,
    /// Inverse map: anchor cell → slot.
    index: std::collections::BTreeMap<usize, usize>,
}

impl SideFrame {
    /// Anchor cells by slot. The embedded marginal has length
    /// `slots().len()`; slot `s` carries the link's mass for cell
    /// `slots()[s]` when the link occupies it, and exact zero otherwise.
    pub fn slots(&self) -> &[usize] {
        &self.slot_cells
    }

    /// Anchors every cell of the ascending `cells` list to a slot:
    /// already-anchored cells keep their slot, new cells re-anchor slots
    /// whose old cell this link vacated (ascending victim order, so the
    /// assignment is deterministic). The caller guarantees
    /// `cells.len() ≤ slots().len()` (rosters are bijectively anchored,
    /// so that bound means enough vacated slots exist).
    fn cover(&mut self, cells: &[usize]) {
        debug_assert!(cells.windows(2).all(|w| w[0] < w[1]), "cells not sorted");
        let fresh: Vec<usize> = cells
            .iter()
            .copied()
            .filter(|c| !self.index.contains_key(c))
            .collect();
        if fresh.is_empty() {
            return;
        }
        // Slots whose anchor the link vacated, in ascending anchor order.
        let victims: Vec<usize> = self
            .index
            .iter()
            .filter(|(c, _)| cells.binary_search(c).is_err())
            .map(|(&c, _)| c)
            .collect();
        if victims.len() < fresh.len() {
            // Unreachable while the roster is bijective and the caller
            // checked `cells.len() ≤ slots().len()`; rebuilding keeps the
            // roster coherent regardless (the solver sees a new shape and
            // cold-restarts, which is always correct — just not warm).
            self.rebuild(cells);
            return;
        }
        for (c, vc) in fresh.into_iter().zip(victims) {
            if let Some(s) = self.index.remove(&vc) {
                self.slot_cells[s] = c;
                self.index.insert(c, s);
            }
        }
    }

    /// Resets the roster to exactly `cells` (ascending), slot `s`
    /// anchored to `cells[s]` — the unpadded embedding.
    fn rebuild(&mut self, cells: &[usize]) {
        self.clear();
        self.slot_cells.extend_from_slice(cells);
        self.index
            .extend(cells.iter().copied().enumerate().map(|(s, c)| (c, s)));
    }

    fn clear(&mut self) {
        self.slot_cells.clear();
        self.index.clear();
    }
}

/// Counters describing how a [`BatchTransport`] arena has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Total solves attempted (cold and warm entry points).
    pub solves: u64,
    /// Solves completed from the inherited warm basis.
    pub warm_hits: u64,
    /// Warm hits that needed dual-repair pivots to restore primal
    /// feasibility first (a subset of `warm_hits`).
    pub repairs: u64,
    /// Warm hits completed although the chain's cost matrix had drifted
    /// (the chained-unit mode of [`BatchTransport::solve_chained`]; a
    /// subset of `warm_hits`).
    pub drift_hits: u64,
    /// Warm attempts that fell back to a cold solve (repair stalled or a
    /// resumed pivot failed).
    pub fallbacks: u64,
}

/// Reusable transportation-solve arena with optional warm starts.
///
/// All simplex scratch (flow matrix, basis-tree arrays, dual vectors,
/// pricing blocks) is allocated once and recycled across solves.
/// [`solve`](Self::solve) warm-starts from the previous solve's optimal
/// basis whenever the shape, supply bits and cost bits match, repairing
/// primal infeasibilities with dual network-simplex pivots and falling
/// back to a cold solve when the repair stalls.
///
/// **Objective contract.** Warm and cold solves terminate at an optimal
/// basis of the same linear program, so their objectives agree
/// mathematically; the pivot sequences differ, so under degeneracy
/// (alternative optimal bases) the floating-point results may differ in
/// the last bits. The enforced contract is
/// `|warm − cold| ≤ 1e-9 · (1 + |cold|)`.
/// [`solve_cold`](Self::solve_cold) replays a standalone
/// [`crate::TransportProblem::solve`] exactly and is **bit-identical**
/// to it — use it anywhere the engine compares against preserved
/// references.
#[derive(Debug)]
pub struct BatchTransport {
    n: usize,
    m: usize,
    /// Supply vector of the warm chain (bit-compared on each solve).
    chain_supply: Vec<f64>,
    /// Cost matrix of the warm chain (bit-compared on each solve).
    chain_cost: Vec<f64>,
    /// Whether `tree` holds an optimal basis for the chain problem.
    warm: bool,
    /// Rescaled demand of the current solve.
    demand: Vec<f64>,
    flow: Vec<f64>,
    tree: BasisTree,
    build: BuildScratch,
    s: Vec<f64>,
    d: Vec<f64>,
    basis: Vec<u32>,
    balance: Vec<f64>,
    order: Vec<u32>,
    /// Subtree marks for the dual-repair cut scan.
    in_subtree: Vec<bool>,
    /// Cell frames for padded chained solves (see [`ChainFrame`]).
    frame: ChainFrame,
    stats: BatchStats,
}

impl Default for BatchTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchTransport {
    /// An empty arena; buffers grow to the first solve's size and are
    /// reused afterwards.
    pub fn new() -> Self {
        BatchTransport {
            n: 0,
            m: 0,
            chain_supply: Vec::new(),
            chain_cost: Vec::new(),
            warm: false,
            demand: Vec::new(),
            flow: Vec::new(),
            tree: BasisTree::new_empty(),
            build: BuildScratch::default(),
            s: Vec::new(),
            d: Vec::new(),
            basis: Vec::new(),
            balance: Vec::new(),
            order: Vec::new(),
            in_subtree: Vec::new(),
            frame: ChainFrame::default(),
            stats: BatchStats::default(),
        }
    }

    /// Usage counters since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Zeroes the usage counters.
    pub fn reset_stats(&mut self) {
        self.stats = BatchStats::default();
    }

    /// Forgets the warm-start chain (allocations and stats are kept).
    /// The next [`solve`](Self::solve) runs cold and starts a new chain.
    pub fn reset_chain(&mut self) {
        self.warm = false;
        self.frame.side_a.clear();
        self.frame.side_b.clear();
    }

    /// Moves the padded-chain cell frame out of the arena (so a caller
    /// can read and extend it while also mutably borrowing the arena for
    /// the solve itself). Pair with
    /// [`restore_chain_frame`](Self::restore_chain_frame).
    pub fn take_chain_frame(&mut self) -> ChainFrame {
        std::mem::take(&mut self.frame)
    }

    /// Returns a frame taken with
    /// [`take_chain_frame`](Self::take_chain_frame) so the next link of
    /// the chain sees it.
    pub fn restore_chain_frame(&mut self, frame: ChainFrame) {
        self.frame = frame;
    }

    /// The optimal flow matrix of the most recent successful solve
    /// (row-major `n × m`).
    pub fn flow(&self) -> &[f64] {
        &self.flow
    }

    /// Solves a balanced transportation instance, warm-starting from the
    /// previous solve's optimal basis when the shape, supply bits and
    /// cost bits all match (the engine's strategy-batch pattern: same
    /// dirty signature, different cleaned demands). Returns the
    /// normalized EMD `objective / total mass`; see [`BatchTransport`]'s
    /// docs for the warm-vs-cold objective contract.
    pub fn solve(&mut self, supply: &[f64], demand: &[f64], cost: &[f64]) -> Result<f64> {
        let scale = validate_balanced(supply, demand, cost)?;
        self.stats.solves += 1;
        self.demand.clear();
        self.demand.extend(demand.iter().map(|&x| x * scale));
        let total: f64 = supply.iter().sum();
        let warm_ok = self.warm
            && self.n == supply.len()
            && self.m == demand.len()
            && bits_equal(&self.chain_supply, supply)
            && bits_equal(&self.chain_cost, cost);
        if warm_ok {
            match self.try_warm(supply, cost, total) {
                Some(value) => {
                    self.stats.warm_hits += 1;
                    return Ok(value);
                }
                None => self.stats.fallbacks += 1,
            }
        }
        // Cold (re)start: the warm flag is cleared first so an error exit
        // cannot leave a half-built tree marked reusable.
        self.warm = false;
        let objective = self.cold_inner(supply, cost)?;
        self.remember(supply, cost);
        Ok(objective / total)
    }

    /// Solves the next link of a *chained-unit* sequence — the cost
    /// sweep's fraction ladder, where consecutive instances are
    /// re-quantizations of one dirty cloud against progressively cleaner
    /// counterparts: masses drift on **both** marginals (the cover rule
    /// re-grids, perturbing even the dirty side's weights) and the
    /// ground-cost matrix drifts as cleaning moves mass between grid
    /// cells. Warm-starts whenever the *shape* `(n, m)` matches the chain
    /// head — the basis tree is a spanning structure over the node sets,
    /// so it survives any marginal or cost perturbation of the same
    /// shape:
    ///
    /// * unchanged cost bits — exactly the [`solve`](Self::solve) warm
    ///   path: the inherited duals stay feasible, so supply *and* demand
    ///   drift is the textbook RHS re-optimization (flows from the new
    ///   marginals, dual repair of negative arcs, resumed pricing);
    /// * drifted cost bits — the inherited spanning tree is re-priced
    ///   against the new costs and, if its implied basic flows for the new
    ///   marginals are already primal-feasible, primal pivoting resumes
    ///   directly (classic re-optimization after a cost perturbation).
    ///   The dual repair is **not** available here — its correctness
    ///   argument needs unchanged costs — so an infeasible inheritance
    ///   falls back to a cold solve on the same arena.
    ///
    /// Either way the solve terminates at an optimal basis of the *new*
    /// program, so the objective contract is [`solve`](Self::solve)'s:
    /// `|warm − cold| ≤ 1e-9 · (1 + |cold|)`.
    pub fn solve_chained(&mut self, supply: &[f64], demand: &[f64], cost: &[f64]) -> Result<f64> {
        let scale = validate_balanced(supply, demand, cost)?;
        self.stats.solves += 1;
        self.demand.clear();
        self.demand.extend(demand.iter().map(|&x| x * scale));
        let total: f64 = supply.iter().sum();
        let chain_ok = self.warm && self.n == supply.len() && self.m == demand.len();
        if chain_ok {
            let drifted = !bits_equal(&self.chain_cost, cost);
            let attempt = if drifted {
                self.try_warm_drifted(supply, cost, total)
            } else {
                // Costs are bit-equal to the chain head's, so the
                // inherited duals stay feasible and supply/demand drift
                // is the textbook RHS re-optimization `try_warm` runs
                // (flows from the new marginals, dual repair, resume).
                self.try_warm(supply, cost, total)
            };
            match attempt {
                Some(value) => {
                    self.stats.warm_hits += 1;
                    if drifted {
                        self.stats.drift_hits += 1;
                    }
                    // The tree is optimal for the new instance: it is the
                    // chain head for the next link.
                    self.chain_supply.clear();
                    self.chain_supply.extend_from_slice(supply);
                    self.chain_cost.clear();
                    self.chain_cost.extend_from_slice(cost);
                    return Ok(value);
                }
                None => self.stats.fallbacks += 1,
            }
        }
        self.warm = false;
        let objective = self.cold_inner(supply, cost)?;
        self.remember(supply, cost);
        Ok(objective / total)
    }

    /// Solves on the reused arena **without** warm-starting: replays the
    /// exact NW-corner + pivot sequence of a standalone
    /// [`crate::TransportProblem::solve`], so the result is bit-identical
    /// to it. Seeds the warm chain for a following [`solve`](Self::solve).
    pub fn solve_cold(&mut self, supply: &[f64], demand: &[f64], cost: &[f64]) -> Result<f64> {
        let scale = validate_balanced(supply, demand, cost)?;
        self.stats.solves += 1;
        self.demand.clear();
        self.demand.extend(demand.iter().map(|&x| x * scale));
        let total: f64 = supply.iter().sum();
        self.warm = false;
        let objective = self.cold_inner(supply, cost)?;
        self.remember(supply, cost);
        Ok(objective / total)
    }

    /// Attempts to finish the current instance from the inherited basis.
    /// `None` means the dual repair stalled or a resumed pivot failed —
    /// the caller falls back to a cold solve (which rebuilds the tree, so
    /// partially-written state here is harmless).
    fn try_warm(&mut self, supply: &[f64], cost: &[f64], total: f64) -> Option<f64> {
        let tol = WARM_FEASIBILITY_TOL * total;
        let n = self.n;
        let m = self.m;
        self.flow.resize(n * m, 0.0);
        // Costs are unchanged (bit-compared), so the inherited duals are
        // still tree-consistent; recompute first to clear incremental
        // drift deterministically before the repair prices reduced costs.
        self.tree.recompute_potentials(cost);
        let repaired = if !self.tree.flows_from_marginals(
            supply,
            &self.demand,
            &mut self.flow,
            &mut self.balance,
            &mut self.order,
            tol,
        ) {
            if !self
                .tree
                .dual_repair(cost, &mut self.flow, &mut self.in_subtree, tol)
            {
                return None;
            }
            true
        } else {
            false
        };
        run_simplex(n, m, cost, &mut self.tree, &mut self.flow).ok()?;
        if repaired {
            self.stats.repairs += 1;
        }
        Some(objective_of(&self.flow, cost) / total)
    }

    /// The cost-drift warm attempt of [`solve_chained`]
    /// (`Self::solve_chained`), in two stages that each keep a valid
    /// invariant:
    ///
    /// 1. **RHS re-optimization under the chain head's costs** — the
    ///    inherited duals are feasible for those costs, so the basic
    ///    flows for the new marginals can be repaired with dual pivots
    ///    exactly as in [`try_warm`](Self::try_warm). This ends at a
    ///    primal-feasible basis.
    /// 2. **Cost re-optimization** — from a primal-feasible basis, primal
    ///    pivoting under the *new* costs needs no feasibility argument at
    ///    all; re-price the tree and resume.
    ///
    /// `None` (repair stalled or a pivot failed) falls back to a cold
    /// solve on the same arena.
    fn try_warm_drifted(&mut self, supply: &[f64], cost: &[f64], total: f64) -> Option<f64> {
        let tol = WARM_FEASIBILITY_TOL * total;
        let n = self.n;
        let m = self.m;
        self.flow.resize(n * m, 0.0);
        self.tree.recompute_potentials(&self.chain_cost);
        if !self.tree.flows_from_marginals(
            supply,
            &self.demand,
            &mut self.flow,
            &mut self.balance,
            &mut self.order,
            tol,
        ) && !self
            .tree
            .dual_repair(&self.chain_cost, &mut self.flow, &mut self.in_subtree, tol)
        {
            return None;
        }
        self.tree.recompute_potentials(cost);
        run_simplex(n, m, cost, &mut self.tree, &mut self.flow).ok()?;
        Some(objective_of(&self.flow, cost) / total)
    }

    /// NW-corner + MODI on the arena buffers; returns the raw objective.
    fn cold_inner(&mut self, supply: &[f64], cost: &[f64]) -> Result<f64> {
        let n = supply.len();
        let m = self.demand.len();
        self.flow.clear();
        self.flow.resize(n * m, 0.0);
        northwest_corner_into(
            n,
            m,
            supply,
            &self.demand,
            &mut self.s,
            &mut self.d,
            &mut self.flow,
            &mut self.basis,
        );
        if !self.tree.rebuild(n, m, &self.basis, cost, &mut self.build) {
            return Err(EmdError::NoConvergence { iterations: 0 });
        }
        run_simplex(n, m, cost, &mut self.tree, &mut self.flow)?;
        Ok(objective_of(&self.flow, cost))
    }

    /// Records the solved instance as the warm chain head.
    fn remember(&mut self, supply: &[f64], cost: &[f64]) {
        self.n = supply.len();
        self.m = self.demand.len();
        self.chain_supply.clear();
        self.chain_supply.extend_from_slice(supply);
        self.chain_cost.clear();
        self.chain_cost.extend_from_slice(cost);
        self.warm = true;
    }
}

/// `Σ f_ij c_ij` in the same iteration order as
/// [`crate::TransportProblem::objective`] (bit-identity matters).
fn objective_of(flow: &[f64], cost: &[f64]) -> f64 {
    flow.iter().zip(cost).map(|(f, c)| f * c).sum()
}

/// Bitwise slice equality — the warm-start key comparison (`==` on f64
/// would treat `-0.0 == 0.0` and `NaN != NaN`; the chain must be exact).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

thread_local! {
    /// Per-thread cold arena for the `GridEmd` exact branch: every engine
    /// unit on a worker thread reuses one allocation set. Cold-only, so
    /// results stay bit-identical regardless of which thread (or how many
    /// prior solves) served a given distance call.
    static COLD_ARENA: RefCell<BatchTransport> = RefCell::new(BatchTransport::new());
}

/// Runs `f` against this thread's shared cold arena. Re-entrant callers
/// (the arena is already borrowed further up the stack) get a fresh
/// arena — pure allocation reuse, so the result is identical either way.
pub(crate) fn with_cold_arena<R>(f: impl FnOnce(&mut BatchTransport) -> R) -> R {
    COLD_ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut BatchTransport::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportProblem;

    /// Deterministic pseudo-random stream (same LCG as the solver tests).
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    /// A random balanced instance: unit-mass marginals, costs in [0, 10).
    fn instance(
        n: usize,
        m: usize,
        next: &mut impl FnMut() -> f64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut supply: Vec<f64> = (0..n).map(|_| 0.01 + next()).collect();
        let mut demand: Vec<f64> = (0..m).map(|_| 0.01 + next()).collect();
        let st: f64 = supply.iter().sum();
        let dt: f64 = demand.iter().sum();
        supply.iter_mut().for_each(|x| *x /= st);
        demand.iter_mut().for_each(|x| *x /= dt);
        let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
        (supply, demand, cost)
    }

    #[test]
    fn cold_solve_is_bit_identical_to_transport_problem() {
        let mut next = lcg(0xC01D);
        let mut arena = BatchTransport::new();
        for trial in 0..12 {
            let n = 3 + (trial * 5) % 20;
            let m = 2 + (trial * 7) % 23;
            let (supply, demand, cost) = instance(n, m, &mut next);
            let standalone = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            let batched = arena.solve_cold(&supply, &demand, &cost).unwrap();
            assert_eq!(
                standalone.to_bits(),
                batched.to_bits(),
                "trial {trial} ({n}x{m}): {standalone} vs {batched}"
            );
        }
        assert_eq!(arena.stats().warm_hits, 0);
        assert_eq!(arena.stats().fallbacks, 0);
        assert_eq!(arena.stats().solves, 12);
    }

    #[test]
    fn warm_chain_matches_cold_solves_within_contract() {
        // The engine's batch shape: one dirty signature (supply + cost
        // fixed), a sequence of slightly perturbed cleaned demands.
        let mut next = lcg(0x9A7);
        let (supply, mut demand, cost) = instance(24, 18, &mut next);
        let mut arena = BatchTransport::new();
        for round in 0..8 {
            // Move a few percent of one cell's mass to another.
            let a = round % demand.len();
            let b = (round * 7 + 3) % demand.len();
            let delta = demand[a] * 0.05;
            demand[a] -= delta;
            demand[b] += delta;
            let warm = arena.solve(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
        let stats = arena.stats();
        assert!(stats.warm_hits > 0, "no warm start ever engaged: {stats:?}");
        assert_eq!(stats.solves, 8);
        // Every round after the first either warmed or fell back.
        assert_eq!(stats.warm_hits + stats.fallbacks, 7, "{stats:?}");
    }

    #[test]
    fn dual_repair_engages_on_demand_drift() {
        // Larger instances have highly degenerate optimal bases: almost
        // any demand drift drives some implied basic flow negative, so
        // the warm path must go through the dual repair rather than the
        // strict feasibility check. Assert the repair actually runs and
        // still lands on the cold optimum.
        let mut next = lcg(0xF17);
        let (supply, mut demand, cost) = instance(24, 18, &mut next);
        let mut arena = BatchTransport::new();
        for round in 0..6 {
            if round > 0 {
                for k in 0..3 {
                    let a = (round * 5 + k) % demand.len();
                    let b = (round * 11 + 2 * k + 1) % demand.len();
                    let delta = demand[a] * 0.1;
                    demand[a] -= delta;
                    demand[b] += delta;
                }
            }
            let warm = arena.solve(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
        let stats = arena.stats();
        assert!(stats.repairs > 0, "dual repair never engaged: {stats:?}");
        assert!(stats.repairs <= stats.warm_hits, "{stats:?}");
    }

    #[test]
    fn chain_breaks_on_changed_supply_or_cost() {
        let mut next = lcg(0xB0B);
        let (supply, demand, cost) = instance(8, 9, &mut next);
        let mut arena = BatchTransport::new();
        arena.solve(&supply, &demand, &cost).unwrap();
        // Different supply bits: must not warm-start.
        let mut supply2 = supply.clone();
        supply2[0] += 1e-3;
        supply2[1] -= 1e-3;
        arena.solve(&supply2, &demand, &cost).unwrap();
        assert_eq!(arena.stats().warm_hits, 0);
        // Different cost bits: must not warm-start.
        let mut cost2 = cost.clone();
        cost2[3] += 0.5;
        arena.solve(&supply, &demand, &cost2).unwrap();
        assert_eq!(arena.stats().warm_hits, 0);
        // Identical instance again: warm start engages.
        arena.solve(&supply, &demand, &cost2).unwrap();
        assert_eq!(arena.stats().warm_hits, 1);
        assert_eq!(arena.stats().fallbacks, 0);
    }

    #[test]
    fn chained_solve_survives_cost_drift_within_contract() {
        // A fraction ladder's shape: pinned supply, drifting demands AND
        // a slightly perturbed cost matrix at every link.
        let mut next = lcg(0xACE);
        let (supply, mut demand, mut cost) = instance(20, 16, &mut next);
        let mut arena = BatchTransport::new();
        for round in 0..8 {
            if round > 0 {
                let a = round % demand.len();
                let b = (round * 5 + 1) % demand.len();
                let delta = demand[a] * 0.04;
                demand[a] -= delta;
                demand[b] += delta;
                // Cost drift: one entry nudged per link.
                let k = (round * 13) % cost.len();
                cost[k] += 0.05;
            }
            let warm = arena.solve_chained(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
        let stats = arena.stats();
        assert_eq!(stats.solves, 8);
        // Every link after the first either warmed or fell back — a
        // drifted cost alone must not break the chain.
        assert_eq!(stats.warm_hits + stats.fallbacks, 7, "{stats:?}");
        assert!(stats.drift_hits <= stats.warm_hits, "{stats:?}");
    }

    #[test]
    fn chained_solve_with_stable_cost_matches_solve_semantics() {
        let mut next = lcg(0xFAB);
        let (supply, mut demand, cost) = instance(12, 10, &mut next);
        let mut arena = BatchTransport::new();
        for round in 0..5 {
            let a = round % demand.len();
            let b = (round * 3 + 1) % demand.len();
            let delta = demand[a] * 0.05;
            demand[a] -= delta;
            demand[b] += delta;
            let warm = arena.solve_chained(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
        let stats = arena.stats();
        assert_eq!(stats.drift_hits, 0, "{stats:?}");
        assert!(stats.warm_hits > 0, "{stats:?}");
    }

    #[test]
    fn chained_solve_survives_supply_drift_and_breaks_on_shape() {
        let mut next = lcg(0xCAB);
        let (supply, demand, cost) = instance(6, 5, &mut next);
        let mut arena = BatchTransport::new();
        arena.solve_chained(&supply, &demand, &cost).unwrap();
        // Drifted supply bits, same shape: the chain holds (RHS
        // re-optimization) and the contract still binds.
        let mut supply2 = supply.clone();
        supply2[0] += 1e-3;
        supply2[1] -= 1e-3;
        let warm = arena.solve_chained(&supply2, &demand, &cost).unwrap();
        let cold = TransportProblem::new(supply2, demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        assert!((warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()));
        let after_supply_drift = arena.stats();
        assert_eq!(
            after_supply_drift.warm_hits + after_supply_drift.fallbacks,
            1,
            "{after_supply_drift:?}"
        );
        // Different shape: the spanning tree has the wrong node sets —
        // cold restart, not even a warm attempt.
        let (s3, d3, c3) = instance(7, 5, &mut next);
        arena.solve_chained(&s3, &d3, &c3).unwrap();
        let after_shape_change = arena.stats();
        assert_eq!(after_shape_change.warm_hits, after_supply_drift.warm_hits);
        assert_eq!(after_shape_change.fallbacks, after_supply_drift.fallbacks);
    }

    #[test]
    fn reset_chain_forces_a_cold_solve() {
        let mut next = lcg(0x5E7);
        let (supply, demand, cost) = instance(6, 7, &mut next);
        let mut arena = BatchTransport::new();
        arena.solve(&supply, &demand, &cost).unwrap();
        arena.reset_chain();
        let v = arena.solve(&supply, &demand, &cost).unwrap();
        assert_eq!(arena.stats().warm_hits, 0);
        let reference = TransportProblem::new(supply, demand, cost)
            .unwrap()
            .solve()
            .unwrap();
        assert_eq!(v.to_bits(), reference.to_bits());
    }

    #[test]
    fn degenerate_duplicate_mass_chain_survives() {
        // Small-integer masses: many ties, exactly-zero basic flows, and
        // equal-cost pivots — the shapes that once triggered BrokenPivot.
        let mut next = lcg(0xDE6);
        let k = 10usize;
        let supply = vec![1.0 / k as f64; k];
        let cost: Vec<f64> = (0..k * k).map(|_| (next() * 3.0).floor()).collect();
        let mut arena = BatchTransport::new();
        for round in 0..6 {
            // Demands are duplicate small integers, renormalized.
            let mut demand: Vec<f64> = (0..k).map(|_| 1.0 + (next() * 3.0).floor()).collect();
            let dt: f64 = demand.iter().sum();
            demand.iter_mut().for_each(|x| *x /= dt);
            let warm = arena.solve(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
    }

    #[test]
    fn infeasible_warm_start_falls_back_cleanly() {
        // A chain where the optimal basis of round 1 cannot carry round
        // 2's demands: mass concentrates on a column the old tree feeds
        // through arcs that would go negative.
        let supply = vec![0.5, 0.5];
        let cost = vec![0.0, 10.0, 10.0, 0.0];
        let mut arena = BatchTransport::new();
        arena.solve(&supply, &[0.5, 0.5], &cost).unwrap();
        // Extreme demand shift; whatever the inherited tree does, the
        // answer must match a cold solve bit-for-bit if it fell back, or
        // within contract if it warmed.
        let warm = arena.solve(&supply, &[0.999, 0.001], &cost).unwrap();
        let cold = TransportProblem::new(supply.clone(), vec![0.999, 0.001], cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
            "warm {warm} vs cold {cold}"
        );
        let stats = arena.stats();
        assert_eq!(stats.warm_hits + stats.fallbacks, 1, "{stats:?}");
    }

    #[test]
    fn rejects_malformed_inputs_like_transport_problem() {
        let mut arena = BatchTransport::new();
        assert!(matches!(
            arena.solve(&[], &[1.0], &[]),
            Err(EmdError::EmptyInput)
        ));
        assert!(matches!(
            arena.solve(&[1.0], &[2.0], &[0.0]),
            Err(EmdError::Unbalanced { .. })
        ));
        assert!(matches!(
            arena.solve(&[-1.0], &[-1.0], &[0.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
        // A failed solve must not seed a warm chain.
        let (supply, demand, cost) = (vec![1.0], vec![1.0], vec![2.0]);
        let v = arena.solve(&supply, &demand, &cost).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    /// The roster invariant: anchors pairwise distinct and the inverse
    /// index consistent — checked via the public surface only.
    fn assert_bijective(side: &SideFrame, expected: &[usize]) {
        let mut seen = std::collections::BTreeSet::new();
        for &c in side.slots() {
            assert!(seen.insert(c), "anchor {c} appears twice");
        }
        let mut want: Vec<usize> = expected.to_vec();
        want.sort_unstable();
        let mut got: Vec<usize> = side.slots().to_vec();
        got.sort_unstable();
        assert_eq!(got, want, "anchored cells differ from expectation");
    }

    #[test]
    fn frame_reanchors_vacated_slots_without_growing() {
        let mut frame = ChainFrame::default();
        // Seed: both rosters rebuilt to the first link's cells.
        assert!(frame.ensure_covers(&[2, 5, 9, 14], &[1, 3]));
        assert_eq!(frame.side_a.slots(), &[2, 5, 9, 14]);
        assert_eq!(frame.side_b.slots(), &[1, 3]);
        // Same occupancy count, drifted cell set: cells 5 and 14 vacate,
        // 6 and 11 arrive. No growth, so no shape change — and the
        // re-anchoring is deterministic: ascending fresh cells take
        // ascending vacated anchors (6 → slot of 5, 11 → slot of 14).
        assert!(!frame.ensure_covers(&[2, 6, 9, 11], &[1, 3]));
        assert_eq!(frame.side_a.slots(), &[2, 6, 9, 11]);
        assert_bijective(&frame.side_a, &[2, 6, 9, 11]);
        // Shrinking occupancy keeps the stale anchors in place (padded
        // with zero mass) — still no shape change.
        assert!(!frame.ensure_covers(&[6, 9], &[1, 3]));
        assert_eq!(frame.side_a.slots(), &[2, 6, 9, 11]);
        // A later link re-occupying a retained anchor reuses its slot.
        assert!(!frame.ensure_covers(&[2, 6, 9, 11], &[1, 3]));
        assert_eq!(frame.side_a.slots(), &[2, 6, 9, 11]);
    }

    #[test]
    fn frame_growth_rebuilds_both_sides_unpadded() {
        let mut frame = ChainFrame::default();
        assert!(frame.ensure_covers(&[4, 8], &[0, 2, 7]));
        // Side a drifts within its roster; side b needs a fourth slot.
        // Growth on either side rebuilds BOTH rosters to exactly the
        // current cells so the forced cold restart is unpadded.
        assert!(frame.ensure_covers(&[3, 8], &[0, 2, 5, 7]));
        assert_eq!(frame.side_a.slots(), &[3, 8]);
        assert_eq!(frame.side_b.slots(), &[0, 2, 5, 7]);
        assert_bijective(&frame.side_a, &[3, 8]);
        assert_bijective(&frame.side_b, &[0, 2, 5, 7]);
    }

    #[test]
    fn reset_chain_clears_the_frame() {
        let mut arena = BatchTransport::new();
        let mut frame = arena.take_chain_frame();
        frame.ensure_covers(&[1, 2], &[3]);
        arena.restore_chain_frame(frame);
        arena.reset_chain();
        let frame = arena.take_chain_frame();
        assert_eq!(frame, ChainFrame::default());
        arena.restore_chain_frame(frame);
    }

    #[test]
    fn cold_arena_helper_reuses_and_nests() {
        let value = with_cold_arena(|outer| {
            let first = outer.solve_cold(&[1.0], &[1.0], &[3.0]).unwrap();
            // Nested checkout must not deadlock or corrupt the outer
            // borrow — it silently gets a fresh arena.
            let nested = with_cold_arena(|inner| inner.solve_cold(&[1.0], &[1.0], &[4.0]).unwrap());
            first + nested
        });
        assert!((value - 7.0).abs() < 1e-12);
    }
}
