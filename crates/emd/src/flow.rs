use crate::{EmdError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-cost-flow EMD solver: successive shortest paths with Johnson
/// potentials over the bipartite transportation network.
///
/// **Test-only cross-validator.** This solver is structurally independent
/// of the transportation simplex, and exists to cross-validate it on
/// random instances (`TransportProblem`'s corpus test, the
/// `simplex_matches_flow_solver` property, the perf bin's `flow` row). It
/// is ~23× slower than the tree-based simplex at `n = 128` (≈ 48 ms vs
/// ≈ 2 ms per solve on the tracked hardware) and nothing on a hot path
/// calls it; its random-corpus validations run reduced by default and at
/// full size at `SD_SCALE=harness` / `paper`. If it ever lands on a hot
/// path, rewrite it first (ROADMAP open item).
#[derive(Debug)]
pub struct MinCostFlow {
    n: usize,
    m: usize,
    /// Adjacency: per node, indices into `edges`.
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// Max-heap entry ordered by smallest distance first.
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour; total_cmp for NaN safety.
        other.dist.total_cmp(&self.dist)
    }
}

const MASS_EPS: f64 = 1e-12;

impl MinCostFlow {
    /// Builds the transportation network for `supply → demand` with the
    /// given row-major cost matrix, including a super-source (node
    /// `n + m`) and super-sink (node `n + m + 1`).
    pub fn new(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> Result<Self> {
        let n = supply.len();
        let m = demand.len();
        if n == 0 || m == 0 {
            return Err(EmdError::EmptyInput);
        }
        if cost.len() != n * m {
            return Err(EmdError::CostShape {
                expected: (n, m),
                got: (cost.len() / m.max(1), m),
            });
        }
        for &w in supply.iter().chain(demand.iter()) {
            if !w.is_finite() || w < 0.0 {
                return Err(EmdError::InvalidWeight { value: w });
            }
        }
        for &c in &cost {
            if !c.is_finite() || c < 0.0 {
                return Err(EmdError::InvalidWeight { value: c });
            }
        }
        let ts: f64 = supply.iter().sum();
        let td: f64 = demand.iter().sum();
        if ts <= 0.0 || td <= 0.0 {
            return Err(EmdError::EmptyInput);
        }
        if ((ts - td) / ts.max(td)).abs() > 1e-6 {
            return Err(EmdError::Unbalanced {
                supply: ts,
                demand: td,
            });
        }

        let num_nodes = n + m + 2;
        let source = n + m;
        let sink = n + m + 1;
        let mut mcf = MinCostFlow {
            n,
            m,
            graph: vec![Vec::new(); num_nodes],
            edges: Vec::with_capacity(2 * (n + m + n * m)),
        };
        for (i, &s) in supply.iter().enumerate() {
            mcf.add_edge(source, i, s, 0.0);
        }
        // Rescale demand for exact balance.
        let scale = ts / td;
        for (j, &d) in demand.iter().enumerate() {
            mcf.add_edge(n + j, sink, d * scale, 0.0);
        }
        for i in 0..n {
            for j in 0..m {
                mcf.add_edge(i, n + j, f64::INFINITY, cost[i * m + j]);
            }
        }
        Ok(mcf)
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
        let fwd = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            cost,
            rev: fwd + 1,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
            rev: fwd,
        });
        self.graph[from].push(fwd);
        self.graph[to].push(fwd + 1);
    }

    /// Ships all supply at minimum cost and returns the normalized EMD
    /// (`total cost / total mass`).
    pub fn solve(&mut self) -> Result<f64> {
        let num_nodes = self.graph.len();
        let source = self.n + self.m;
        let sink = source + 1;
        let total_mass: f64 = self.graph[source].iter().map(|&e| self.edges[e].cap).sum();

        let mut potential = vec![0.0f64; num_nodes];
        let mut total_cost = 0.0;
        let mut shipped = 0.0;

        while total_mass - shipped > MASS_EPS {
            // Dijkstra on reduced costs.
            let mut dist = vec![f64::INFINITY; num_nodes];
            let mut prev_edge: Vec<Option<usize>> = vec![None; num_nodes];
            dist[source] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry {
                dist: 0.0,
                node: source,
            });
            while let Some(HeapEntry { dist: d, node }) = heap.pop() {
                if d > dist[node] {
                    continue;
                }
                for &eidx in &self.graph[node] {
                    let e = &self.edges[eidx];
                    if e.cap <= MASS_EPS {
                        continue;
                    }
                    let nd = d + e.cost + potential[node] - potential[e.to];
                    if nd < dist[e.to] - 1e-15 {
                        dist[e.to] = nd;
                        prev_edge[e.to] = Some(eidx);
                        heap.push(HeapEntry {
                            dist: nd,
                            node: e.to,
                        });
                    }
                }
            }
            if dist[sink].is_infinite() {
                return Err(EmdError::NoConvergence { iterations: 0 });
            }
            for v in 0..num_nodes {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut bottleneck = total_mass - shipped;
            let mut node = sink;
            while node != source {
                let eidx = prev_edge[node].expect("broken path");
                bottleneck = bottleneck.min(self.edges[eidx].cap);
                node = {
                    let rev = self.edges[eidx].rev;
                    self.edges[rev].to
                };
            }
            // Augment.
            let mut node = sink;
            while node != source {
                let eidx = prev_edge[node].expect("broken path");
                let rev = self.edges[eidx].rev;
                self.edges[eidx].cap -= bottleneck;
                self.edges[rev].cap += bottleneck;
                total_cost += bottleneck * self.edges[eidx].cost;
                node = self.edges[rev].to;
            }
            shipped += bottleneck;
        }
        Ok(total_cost / total_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportProblem;

    fn flow_solve(s: Vec<f64>, d: Vec<f64>, c: Vec<f64>) -> f64 {
        MinCostFlow::new(s, d, c).unwrap().solve().unwrap()
    }

    #[test]
    fn single_cell() {
        assert!((flow_solve(vec![2.0], vec![2.0], vec![1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn diagonal_assignment_is_free() {
        let d = flow_solve(vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 9.0, 9.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn split_shipment() {
        let d = flow_solve(vec![1.0], vec![0.25, 0.75], vec![2.0, 4.0]);
        assert!((d - (0.25 * 2.0 + 0.75 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_simplex_on_random_instances() {
        // Deterministic pseudo-random instances via a simple LCG.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..20 {
            let n = 2 + (trial % 5);
            let m = 2 + (trial % 4);
            let mut supply: Vec<f64> = (0..n).map(|_| 0.05 + next()).collect();
            let mut demand: Vec<f64> = (0..m).map(|_| 0.05 + next()).collect();
            let st: f64 = supply.iter().sum();
            let dt: f64 = demand.iter().sum();
            for s in &mut supply {
                *s /= st;
            }
            for d in &mut demand {
                *d /= dt;
            }
            let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
            let via_flow = flow_solve(supply.clone(), demand.clone(), cost.clone());
            let via_simplex = TransportProblem::new(supply, demand, cost)
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (via_flow - via_simplex).abs() < 1e-8,
                "trial {trial}: flow {via_flow} vs simplex {via_simplex}"
            );
        }
    }

    #[test]
    fn rejects_negative_cost() {
        assert!(matches!(
            MinCostFlow::new(vec![1.0], vec![1.0], vec![-1.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(matches!(
            MinCostFlow::new(vec![1.0], vec![3.0], vec![1.0]),
            Err(EmdError::Unbalanced { .. })
        ));
    }

    #[test]
    fn zero_mass_rows_are_skipped() {
        let d = flow_solve(vec![0.0, 1.0], vec![0.5, 0.5], vec![9.0, 9.0, 1.0, 3.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }
}
