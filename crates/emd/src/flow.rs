use crate::{EmdError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-cost-flow EMD solver: successive shortest paths with Johnson
/// potentials, specialized to the bipartite transportation network.
///
/// **Cross-validator.** This solver is structurally independent of the
/// transportation simplex, and exists to cross-validate it on random
/// instances (`TransportProblem`'s corpus test, the
/// `simplex_matches_flow_solver` property, the perf bin's `flow` row).
/// It exploits the network's fixed shape instead of a generic edge list:
/// supplies and demands live in flat residual vectors (no super-source /
/// super-sink nodes), forward arcs `row → col` are the contiguous cost
/// matrix rows (always-open, so relaxation is one sequential sweep the
/// prefetcher likes), and backward arcs are exactly the positive cells of
/// the dense flow matrix, scanned by column stride. Dijkstra runs
/// multi-source from every row with remaining supply, stops at the first
/// unsaturated column popped, and reuses its distance / predecessor /
/// heap buffers across augmentations; potentials update by
/// `min(dist, dist_target)` so early termination keeps reduced costs
/// non-negative. This closed most of the historical ~23× gap to the
/// simplex at `n = 128`, so the random-corpus validations now run at
/// full size on every `cargo test` instead of hiding behind `SD_SCALE`.
#[derive(Debug)]
pub struct MinCostFlow {
    n: usize,
    m: usize,
    supply: Vec<f64>,
    /// Demands rescaled for exact balance.
    demand: Vec<f64>,
    cost: Vec<f64>,
    /// Shipped row→col flow, row-major `n × m` (the backward residuals).
    flow: Vec<f64>,
}

/// Max-heap entry ordered by smallest distance first.
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour; total_cmp for NaN safety.
        other.dist.total_cmp(&self.dist)
    }
}

const MASS_EPS: f64 = 1e-12;
/// Strict-improvement margin for Dijkstra relaxation (floating-point
/// reduced costs hover around ±ulp of zero on tight paths).
const RELAX_EPS: f64 = 1e-15;
/// Sentinel for "no predecessor" in the path array.
const NO_PREV: u32 = u32::MAX;

impl MinCostFlow {
    /// Validates a balanced transportation instance (non-negative finite
    /// costs required — Johnson potentials start at zero) and stores it
    /// in the flat bipartite representation.
    pub fn new(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> Result<Self> {
        let n = supply.len();
        let m = demand.len();
        if n == 0 || m == 0 {
            return Err(EmdError::EmptyInput);
        }
        if cost.len() != n * m {
            return Err(EmdError::CostShape {
                expected: (n, m),
                got: (cost.len() / m.max(1), m),
            });
        }
        for &w in supply.iter().chain(demand.iter()) {
            if !w.is_finite() || w < 0.0 {
                return Err(EmdError::InvalidWeight { value: w });
            }
        }
        for &c in &cost {
            if !c.is_finite() || c < 0.0 {
                return Err(EmdError::InvalidWeight { value: c });
            }
        }
        let ts: f64 = supply.iter().sum();
        let td: f64 = demand.iter().sum();
        if ts <= 0.0 || td <= 0.0 {
            return Err(EmdError::EmptyInput);
        }
        if ((ts - td) / ts.max(td)).abs() > 1e-6 {
            return Err(EmdError::Unbalanced {
                supply: ts,
                demand: td,
            });
        }
        // Rescale demand for exact balance.
        let scale = ts / td;
        let demand = demand.into_iter().map(|d| d * scale).collect();
        Ok(MinCostFlow {
            n,
            m,
            supply,
            demand,
            cost,
            flow: vec![0.0; n * m],
        })
    }

    /// Ships all supply at minimum cost and returns the normalized EMD
    /// (`total cost / total mass`).
    pub fn solve(&mut self) -> Result<f64> {
        let n = self.n;
        let m = self.m;
        let nodes = n + m;
        let total_mass: f64 = self.supply.iter().sum();
        self.flow.fill(0.0);
        let mut src_rem = self.supply.clone();
        let mut sink_rem = self.demand.clone();

        let mut pot = vec![0.0f64; nodes];
        let mut dist = vec![f64::INFINITY; nodes];
        let mut prev = vec![NO_PREV; nodes];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(nodes);
        // Forward arcs of the augmenting path, `(col, row)` pairs from
        // the target back to a row with remaining supply.
        let mut path: Vec<(u32, u32)> = Vec::with_capacity(nodes);

        let mut total_cost = 0.0;
        let mut shipped = 0.0;
        while total_mass - shipped > MASS_EPS {
            // Multi-source Dijkstra on reduced costs, from every row with
            // remaining supply to the first unsaturated column.
            dist.fill(f64::INFINITY);
            prev.fill(NO_PREV);
            heap.clear();
            for (i, &rem) in src_rem.iter().enumerate() {
                if rem > MASS_EPS {
                    dist[i] = 0.0;
                    heap.push(HeapEntry { dist: 0.0, node: i });
                }
            }
            let mut target = usize::MAX;
            while let Some(HeapEntry { dist: d, node }) = heap.pop() {
                if d > dist[node] {
                    continue;
                }
                if node >= n {
                    if sink_rem[node - n] > MASS_EPS {
                        target = node;
                        break;
                    }
                    // Backward arcs col → row: positive flow cells of this
                    // column, traversed at −cost.
                    let j = node - n;
                    let base = d + pot[node];
                    for i in 0..n {
                        let cell = i * m + j;
                        if self.flow[cell] > MASS_EPS {
                            let nd = base - self.cost[cell] - pot[i];
                            if nd < dist[i] - RELAX_EPS {
                                dist[i] = nd;
                                prev[i] = node as u32;
                                heap.push(HeapEntry { dist: nd, node: i });
                            }
                        }
                    }
                } else {
                    // Forward arcs row → col: one contiguous cost row,
                    // capacity unbounded.
                    let base = d + pot[node];
                    let row_costs = &self.cost[node * m..(node + 1) * m];
                    for (j, &c) in row_costs.iter().enumerate() {
                        let v = n + j;
                        let nd = base + c - pot[v];
                        if nd < dist[v] - RELAX_EPS {
                            dist[v] = nd;
                            prev[v] = node as u32;
                            heap.push(HeapEntry { dist: nd, node: v });
                        }
                    }
                }
            }
            if target == usize::MAX {
                return Err(EmdError::NoConvergence { iterations: 0 });
            }
            // Early termination keeps labels beyond the target tentative;
            // clamping the update at dist[target] preserves non-negative
            // reduced costs everywhere.
            let d_target = dist[target];
            for (p, &d) in pot.iter_mut().zip(&dist) {
                *p += d.min(d_target);
            }

            // Reconstruct the augmenting path as forward `(col, row)`
            // arcs; consecutive pairs are bridged by backward arcs.
            path.clear();
            let mut node = target as u32;
            loop {
                let i = prev[node as usize];
                if i == NO_PREV {
                    // Unreachable: every labeled column has a row
                    // predecessor. Surface as a structured error rather
                    // than walking out of bounds.
                    return Err(EmdError::NoConvergence { iterations: 0 });
                }
                path.push((node, i));
                let back = prev[i as usize];
                if back == NO_PREV {
                    break;
                }
                node = back;
            }

            // Bottleneck: remaining demand at the target, remaining
            // supply at the path's source row, and every backward arc.
            let last_row = path[path.len() - 1].1 as usize;
            let mut bottleneck = (total_mass - shipped)
                .min(sink_rem[target - n])
                .min(src_rem[last_row]);
            for w in path.windows(2) {
                let (_, row_a) = w[0];
                let (col_b, _) = w[1];
                bottleneck = bottleneck.min(self.flow[row_a as usize * m + (col_b as usize - n)]);
            }

            // Augment: add along forward arcs, cancel along backward.
            for &(col, row) in &path {
                let cell = row as usize * m + (col as usize - n);
                self.flow[cell] += bottleneck;
                total_cost += bottleneck * self.cost[cell];
            }
            for w in path.windows(2) {
                let (_, row_a) = w[0];
                let (col_b, _) = w[1];
                let cell = row_a as usize * m + (col_b as usize - n);
                self.flow[cell] -= bottleneck;
                total_cost -= bottleneck * self.cost[cell];
            }
            src_rem[last_row] -= bottleneck;
            sink_rem[target - n] -= bottleneck;
            shipped += bottleneck;
        }
        Ok(total_cost / total_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportProblem;

    fn flow_solve(s: Vec<f64>, d: Vec<f64>, c: Vec<f64>) -> f64 {
        MinCostFlow::new(s, d, c).unwrap().solve().unwrap()
    }

    #[test]
    fn single_cell() {
        assert!((flow_solve(vec![2.0], vec![2.0], vec![1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn diagonal_assignment_is_free() {
        let d = flow_solve(vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 9.0, 9.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn split_shipment() {
        let d = flow_solve(vec![1.0], vec![0.25, 0.75], vec![2.0, 4.0]);
        assert!((d - (0.25 * 2.0 + 0.75 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn rerouting_through_backward_arcs_is_found() {
        // Greedy shortest-path order ships 0→0 first; optimality then
        // requires cancelling part of that shipment through a backward
        // arc. Exercises the column-stride backward relaxation.
        let d = flow_solve(vec![0.5, 0.5], vec![0.5, 0.5], vec![0.0, 1.0, 0.1, 10.0]);
        // Optimum: row 0 → col 1 (cost 1.0), row 1 → col 0 (cost 0.1).
        assert!((d - (0.5 * 1.0 + 0.5 * 0.1)).abs() < 1e-9, "{d}");
    }

    #[test]
    fn agrees_with_simplex_on_random_instances() {
        // Deterministic pseudo-random instances via a simple LCG.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..20 {
            let n = 2 + (trial % 5);
            let m = 2 + (trial % 4);
            let mut supply: Vec<f64> = (0..n).map(|_| 0.05 + next()).collect();
            let mut demand: Vec<f64> = (0..m).map(|_| 0.05 + next()).collect();
            let st: f64 = supply.iter().sum();
            let dt: f64 = demand.iter().sum();
            for s in &mut supply {
                *s /= st;
            }
            for d in &mut demand {
                *d /= dt;
            }
            let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
            let via_flow = flow_solve(supply.clone(), demand.clone(), cost.clone());
            let via_simplex = TransportProblem::new(supply, demand, cost)
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (via_flow - via_simplex).abs() < 1e-8,
                "trial {trial}: flow {via_flow} vs simplex {via_simplex}"
            );
        }
    }

    #[test]
    fn rejects_negative_cost() {
        assert!(matches!(
            MinCostFlow::new(vec![1.0], vec![1.0], vec![-1.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(matches!(
            MinCostFlow::new(vec![1.0], vec![3.0], vec![1.0]),
            Err(EmdError::Unbalanced { .. })
        ));
    }

    #[test]
    fn zero_mass_rows_are_skipped() {
        let d = flow_solve(vec![0.0, 1.0], vec![0.5, 0.5], vec![9.0, 9.0, 1.0, 3.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_is_repeatable() {
        // The residual state is reset per solve, so solving twice gives
        // the same answer.
        let mut mcf =
            MinCostFlow::new(vec![0.3, 0.7], vec![0.5, 0.5], vec![1.0, 2.0, 3.0, 0.5]).unwrap();
        let first = mcf.solve().unwrap();
        let second = mcf.solve().unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
    }
}
