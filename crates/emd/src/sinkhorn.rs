use crate::{EmdError, Result};

/// Parameters for the Sinkhorn–Knopp entropic OT approximation.
#[derive(Debug, Clone, Copy)]
pub struct SinkhornParams {
    /// Entropic regularization strength `ε`. Smaller values approximate the
    /// exact EMD more closely but converge more slowly and risk underflow;
    /// values around 1–5 % of the typical ground distance work well.
    pub regularization: f64,
    /// Maximum number of scaling sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tolerance: f64,
}

impl Default for SinkhornParams {
    fn default() -> Self {
        SinkhornParams {
            regularization: 0.05,
            max_iterations: 10_000,
            tolerance: 1e-9,
        }
    }
}

/// Approximate EMD via Sinkhorn–Knopp matrix scaling.
///
/// Returns the transport cost `Σ P_ij c_ij / Σ P_ij` of the entropically
/// regularized plan. The result upper-approximates the exact EMD and
/// converges to it as `regularization → 0`. Provided as the fast
/// alternative for very large signatures, and as the subject of the
/// `ablation_distance` benchmark.
pub fn sinkhorn(
    supply: &[f64],
    demand: &[f64],
    cost: &[f64],
    params: SinkhornParams,
) -> Result<f64> {
    let n = supply.len();
    let m = demand.len();
    if n == 0 || m == 0 {
        return Err(EmdError::EmptyInput);
    }
    if cost.len() != n * m {
        return Err(EmdError::CostShape {
            expected: (n, m),
            got: (cost.len() / m.max(1), m),
        });
    }
    if params.regularization <= 0.0 {
        return Err(EmdError::InvalidWeight {
            value: params.regularization,
        });
    }
    let ts: f64 = supply.iter().sum();
    let td: f64 = demand.iter().sum();
    if ts <= 0.0 || td <= 0.0 {
        return Err(EmdError::EmptyInput);
    }
    if ((ts - td) / ts.max(td)).abs() > 1e-6 {
        return Err(EmdError::Unbalanced {
            supply: ts,
            demand: td,
        });
    }

    // Normalize both marginals to probability vectors.
    let a: Vec<f64> = supply.iter().map(|x| x / ts).collect();
    let b: Vec<f64> = demand.iter().map(|x| x / td).collect();

    // Gibbs kernel K = exp(-C / ε).
    let eps = params.regularization;
    let k: Vec<f64> = cost.iter().map(|c| (-c / eps).exp()).collect();

    // With small ε and O(10) costs, `exp(-c/ε)` can underflow a whole
    // kernel row/column to 0.0; the scaling recursion then turns the
    // factors into ±inf/NaN and the marginals never converge. Detect that
    // regime up front and solve in the log domain instead.
    let row_dead = (0..n).any(|i| a[i] > 0.0 && k[i * m..(i + 1) * m].iter().all(|&x| x == 0.0));
    let col_dead = (0..m).any(|j| b[j] > 0.0 && (0..n).all(|i| k[i * m + j] == 0.0));
    if row_dead || col_dead {
        return sinkhorn_log_domain(&a, &b, cost, eps, &params);
    }

    let mut u = vec![1.0; n];
    let mut v = vec![1.0; m];
    /// Scaling denominators below this are treated as underflow: dividing
    /// by them overflows the factors to ±inf on the next sweep.
    const FLOOR: f64 = 1e-300;

    for _ in 0..params.max_iterations {
        // u = a ./ (K v)
        for i in 0..n {
            let mut kv = 0.0;
            let row = i * m;
            for j in 0..m {
                kv += k[row + j] * v[j];
            }
            if a[i] == 0.0 {
                u[i] = 0.0;
            } else if kv < FLOOR {
                // Mid-iteration underflow: the multiplicative recursion has
                // collapsed; fall back to the numerically stable path.
                return sinkhorn_log_domain(&a, &b, cost, eps, &params);
            } else {
                u[i] = a[i] / kv;
            }
        }
        // v = b ./ (Kᵀ u)
        for j in 0..m {
            let mut ktu = 0.0;
            for i in 0..n {
                ktu += k[i * m + j] * u[i];
            }
            if b[j] == 0.0 {
                v[j] = 0.0;
            } else if ktu < FLOOR {
                return sinkhorn_log_domain(&a, &b, cost, eps, &params);
            } else {
                v[j] = b[j] / ktu;
            }
        }
        // Marginal violation of the row sums.
        let mut err = 0.0;
        for i in 0..n {
            let mut row_sum = 0.0;
            let row = i * m;
            for j in 0..m {
                row_sum += u[i] * k[row + j] * v[j];
            }
            err += (row_sum - a[i]).abs();
        }
        if err < params.tolerance {
            // Transport cost of the current plan.
            let mut total = 0.0;
            let mut mass = 0.0;
            for i in 0..n {
                let row = i * m;
                for j in 0..m {
                    let p = u[i] * k[row + j] * v[j];
                    total += p * cost[row + j];
                    mass += p;
                }
            }
            if mass <= 0.0 {
                return Err(EmdError::NoConvergence { iterations: 0 });
            }
            return Ok(total / mass);
        }
    }
    Err(EmdError::NoConvergence {
        iterations: params.max_iterations,
    })
}

/// Log-domain Sinkhorn: iterates the dual potentials `f`, `g` with
/// log-sum-exp reductions so no intermediate ever underflows, at the price
/// of `exp` calls per cell per sweep. `a` and `b` are the normalized
/// marginals; the plan is `P_ij = exp((f_i + g_j − c_ij) / ε)`.
fn sinkhorn_log_domain(
    a: &[f64],
    b: &[f64],
    cost: &[f64],
    eps: f64,
    params: &SinkhornParams,
) -> Result<f64> {
    let n = a.len();
    let m = b.len();
    let la: Vec<f64> = a.iter().map(|&x| x.ln()).collect(); // ln 0 = −inf: empty bin
    let lb: Vec<f64> = b.iter().map(|&x| x.ln()).collect();
    let mut f = vec![0.0; n];
    let mut g = vec![0.0; m];

    // LSE over the exponents `xs`: max + ln Σ exp(x − max).
    let lse = |mx: f64, sum: f64| mx + sum.ln();

    for _ in 0..params.max_iterations {
        // f_i = ε (ln a_i − LSE_j((g_j − c_ij)/ε))
        for i in 0..n {
            if a[i] == 0.0 {
                f[i] = f64::NEG_INFINITY;
                continue;
            }
            let row = i * m;
            let mut mx = f64::NEG_INFINITY;
            for j in 0..m {
                mx = mx.max((g[j] - cost[row + j]) / eps);
            }
            let mut sum = 0.0;
            for j in 0..m {
                sum += ((g[j] - cost[row + j]) / eps - mx).exp();
            }
            f[i] = eps * (la[i] - lse(mx, sum));
        }
        // g_j = ε (ln b_j − LSE_i((f_i − c_ij)/ε))
        for j in 0..m {
            if b[j] == 0.0 {
                g[j] = f64::NEG_INFINITY;
                continue;
            }
            let mut mx = f64::NEG_INFINITY;
            for i in 0..n {
                mx = mx.max((f[i] - cost[i * m + j]) / eps);
            }
            let mut sum = 0.0;
            for i in 0..n {
                sum += ((f[i] - cost[i * m + j]) / eps - mx).exp();
            }
            g[j] = eps * (lb[j] - lse(mx, sum));
        }
        // Row-marginal violation (columns are exact after the g sweep).
        let mut err = 0.0;
        for i in 0..n {
            let row = i * m;
            let mut row_sum = 0.0;
            for j in 0..m {
                row_sum += ((f[i] + g[j] - cost[row + j]) / eps).exp();
            }
            err += (row_sum - a[i]).abs();
        }
        if err < params.tolerance {
            let mut total = 0.0;
            let mut mass = 0.0;
            for i in 0..n {
                let row = i * m;
                for j in 0..m {
                    let p = ((f[i] + g[j] - cost[row + j]) / eps).exp();
                    total += p * cost[row + j];
                    mass += p;
                }
            }
            if mass <= 0.0 {
                return Err(EmdError::NoConvergence { iterations: 0 });
            }
            return Ok(total / mass);
        }
    }
    Err(EmdError::NoConvergence {
        iterations: params.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportProblem;

    #[test]
    fn identical_distributions_near_zero() {
        let s = vec![0.5, 0.5];
        let c = vec![0.0, 1.0, 1.0, 0.0];
        let d = sinkhorn(&s, &s, &c, SinkhornParams::default()).unwrap();
        // Entropic smearing keeps this slightly above zero.
        assert!((0.0..0.1).contains(&d), "got {d}");
    }

    #[test]
    fn approximates_exact_emd_with_small_regularization() {
        let supply = vec![0.2, 0.5, 0.3];
        let demand = vec![0.4, 0.6];
        let cost = vec![1.0, 3.0, 2.0, 1.0, 4.0, 2.5];
        let exact = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let approx = sinkhorn(
            &supply,
            &demand,
            &cost,
            SinkhornParams {
                regularization: 0.01,
                max_iterations: 100_000,
                tolerance: 1e-10,
            },
        )
        .unwrap();
        assert!(
            (approx - exact).abs() < 0.05,
            "approx {approx} vs exact {exact}"
        );
        // Entropic plans never beat the optimum.
        assert!(approx >= exact - 1e-9);
    }

    #[test]
    fn tighter_regularization_is_closer() {
        let supply = vec![0.7, 0.3];
        let demand = vec![0.3, 0.7];
        let cost = vec![0.0, 2.0, 2.0, 0.0];
        let exact = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let loose = sinkhorn(
            &supply,
            &demand,
            &cost,
            SinkhornParams {
                regularization: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = sinkhorn(
            &supply,
            &demand,
            &cost,
            SinkhornParams {
                regularization: 0.02,
                max_iterations: 200_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((tight - exact).abs() <= (loose - exact).abs() + 1e-9);
    }

    #[test]
    fn tiny_regularization_survives_kernel_underflow() {
        // Regression: with ε = 1e-3 and O(1–10) costs, every kernel entry
        // exp(-c/ε) underflows to 0.0. The multiplicative recursion used to
        // turn the scaling factors into ±inf/NaN and burn all
        // max_iterations before a useless NoConvergence; the log-domain
        // path must converge and land near the exact EMD instead.
        let supply = vec![0.2, 0.5, 0.3];
        let demand = vec![0.4, 0.6];
        let cost = vec![1.0, 3.0, 2.0, 1.0, 4.0, 2.5];
        let exact = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let approx = sinkhorn(
            &supply,
            &demand,
            &cost,
            SinkhornParams {
                regularization: 1e-3,
                max_iterations: 10_000,
                tolerance: 1e-9,
            },
        )
        .unwrap();
        assert!(
            (approx - exact).abs() < 1e-2,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn partial_underflow_switches_to_log_domain() {
        // Rows with a zero-cost entry keep one live kernel cell, so the
        // up-front check passes, but the recursion can still collapse
        // mid-iteration; the in-loop guard must hand over to the log
        // domain rather than diverge. ε = 2e-3 with costs up to 8.
        let supply = vec![0.5, 0.5];
        let demand = vec![0.3, 0.7];
        let cost = vec![0.0, 8.0, 8.0, 0.0];
        let exact = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let approx = sinkhorn(
            &supply,
            &demand,
            &cost,
            SinkhornParams {
                regularization: 2e-3,
                max_iterations: 10_000,
                tolerance: 1e-9,
            },
        )
        .unwrap();
        assert!(
            (approx - exact).abs() < 1e-2,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn rejects_bad_params() {
        assert!(sinkhorn(
            &[1.0],
            &[1.0],
            &[0.0],
            SinkhornParams {
                regularization: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(sinkhorn(&[], &[], &[], SinkhornParams::default()).is_err());
        assert!(matches!(
            sinkhorn(&[1.0], &[2.0], &[0.0], SinkhornParams::default()),
            Err(EmdError::Unbalanced { .. })
        ));
    }

    #[test]
    fn zero_mass_bins_are_tolerated() {
        let d = sinkhorn(
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[5.0, 1.0, 2.0, 1.0],
            SinkhornParams::default(),
        )
        .unwrap();
        assert!((d - 2.0).abs() < 0.1, "got {d}");
    }
}
