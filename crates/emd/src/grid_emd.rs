use crate::{sinkhorn, EmdError, Result, Signature, SinkhornParams, TransportProblem};
use sd_stats::{GridHistogram, GridSpec};

/// How cell-centre coordinates are scaled before computing ground
/// distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceScaling {
    /// Use raw data coordinates. Appropriate when all attributes share a
    /// scale (e.g. the per-attribute distortion plots).
    Raw,
    /// Divide each axis by its grid range so every attribute contributes
    /// comparably — telemetry KPIs span wildly different magnitudes
    /// (volumes vs ratios), and without normalization the largest-scale
    /// attribute dominates the distance.
    Normalized,
}

/// How the shared grid's axis ranges are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverRule {
    /// Span the exact min–max of the union.
    MinMax,
    /// Span the `[qlo, qhi]` quantile range of the union; values outside
    /// clamp into the edge bins.
    Quantile(f64, f64),
    /// Span `median ± z · IQR` of the union (robust to heavy tails);
    /// values outside clamp into the edge bins.
    Robust {
        /// Half-width in IQR units.
        z: f64,
    },
}

/// Which solver produced a [`GridEmdReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverUsed {
    /// Exact transportation simplex.
    Simplex,
    /// Entropic Sinkhorn approximation (signature exceeded
    /// `max_exact_cells`).
    Sinkhorn,
}

/// End-to-end multidimensional EMD between two point clouds.
///
/// This is the concrete realization of the paper's statistical-distortion
/// measure: pool the `v`-tuples of the dirty and cleaned data sets,
/// quantize both onto one shared grid (so both distributions share a
/// support, as Definition 1 requires), and solve the transportation problem
/// between the occupied cells.
#[derive(Debug, Clone)]
pub struct GridEmd {
    bins_per_axis: usize,
    scaling: DistanceScaling,
    /// When `occupied_a * occupied_b` exceeds this, fall back to Sinkhorn.
    max_exact_cells: usize,
    sinkhorn_params: SinkhornParams,
    /// How the per-axis ranges are chosen.
    cover: CoverRule,
}

/// The result of a [`GridEmd::distance`] computation, with enough
/// diagnostics to audit the quantization.
#[derive(Debug, Clone)]
pub struct GridEmdReport {
    /// The Earth Mover's Distance.
    pub emd: f64,
    /// Occupied grid cells in the first cloud.
    pub occupied_a: usize,
    /// Occupied grid cells in the second cloud.
    pub occupied_b: usize,
    /// Points skipped (missing coordinate) in the first cloud.
    pub skipped_a: usize,
    /// Points skipped in the second cloud.
    pub skipped_b: usize,
    /// Which solver was used.
    pub solver: SolverUsed,
}

impl Default for GridEmd {
    fn default() -> Self {
        GridEmd {
            bins_per_axis: 8,
            scaling: DistanceScaling::Normalized,
            max_exact_cells: 400_000,
            sinkhorn_params: SinkhornParams::default(),
            // Telemetry has extreme spikes; the robust cover keeps the
            // bulk resolved while tails clamp into the edge bins.
            cover: CoverRule::Robust { z: 5.0 },
        }
    }
}

impl GridEmd {
    /// Creates a pipeline with `bins_per_axis` bins on every axis and
    /// normalized distance scaling.
    pub fn new(bins_per_axis: usize) -> Self {
        assert!(bins_per_axis >= 1, "need at least one bin per axis");
        GridEmd {
            bins_per_axis,
            ..Default::default()
        }
    }

    /// Sets the distance scaling.
    pub fn with_scaling(mut self, scaling: DistanceScaling) -> Self {
        self.scaling = scaling;
        self
    }

    /// Sets the exact-solver budget (product of occupied cell counts).
    pub fn with_max_exact_cells(mut self, cells: usize) -> Self {
        self.max_exact_cells = cells;
        self
    }

    /// Sets the Sinkhorn fallback parameters.
    pub fn with_sinkhorn_params(mut self, params: SinkhornParams) -> Self {
        self.sinkhorn_params = params;
        self
    }

    /// Sets the axis-cover rule (out-of-range values clamp into the edge
    /// bins for the quantile and robust rules).
    pub fn with_cover(mut self, cover: CoverRule) -> Self {
        if let CoverRule::Quantile(qlo, qhi) = cover {
            assert!(
                (0.0..=1.0).contains(&qlo) && (0.0..=1.0).contains(&qhi) && qlo < qhi,
                "quantiles must satisfy 0 <= qlo < qhi <= 1"
            );
        }
        if let CoverRule::Robust { z } = cover {
            assert!(z > 0.0, "z must be positive");
        }
        self.cover = cover;
        self
    }

    /// Bins per axis.
    pub fn bins_per_axis(&self) -> usize {
        self.bins_per_axis
    }

    /// EMD between two clouds of equal-dimension points (rows). Rows with
    /// any missing (NaN) coordinate are excluded from the density and
    /// reported in the diagnostics.
    pub fn distance(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<GridEmdReport> {
        let spec = match self.cover {
            CoverRule::MinMax => GridSpec::covering(a, b, self.bins_per_axis),
            CoverRule::Quantile(qlo, qhi) => {
                GridSpec::covering_quantiles(a, b, self.bins_per_axis, qlo, qhi)
            }
            CoverRule::Robust { z } => GridSpec::covering_robust(a, b, self.bins_per_axis, z),
        }
        .ok_or(EmdError::EmptyInput)?;
        let ha = GridHistogram::from_points(spec.clone(), a);
        let hb = GridHistogram::from_points(spec.clone(), b);
        if ha.total() == 0.0 || hb.total() == 0.0 {
            return Err(EmdError::EmptyInput);
        }

        let scale: Vec<f64> = match self.scaling {
            DistanceScaling::Raw => vec![1.0; spec.dim()],
            DistanceScaling::Normalized => spec
                .axes()
                .iter()
                .map(|ax| {
                    let range = ax.hi - ax.lo;
                    if range > 0.0 {
                        range
                    } else {
                        1.0
                    }
                })
                .collect(),
        };

        let sig_a = scaled_signature(&ha, &scale)?;
        let sig_b = scaled_signature(&hb, &scale)?;

        let cost = crate::ground_distance_matrix(sig_a.points(), sig_b.points());
        let exact = sig_a.len() * sig_b.len() <= self.max_exact_cells;
        let emd = if exact {
            TransportProblem::new(sig_a.normalized_weights(), sig_b.normalized_weights(), cost)?
                .solve()?
        } else {
            // Debiased Sinkhorn divergence: the raw entropic cost has a
            // positive floor even for identical distributions (the plan is
            // deliberately blurry), which would swamp small distances.
            // Subtracting the self-transport terms removes that floor:
            //   S(a,b) − ½ S(a,a) − ½ S(b,b).
            let wa = sig_a.normalized_weights();
            let wb = sig_b.normalized_weights();
            let ab = sinkhorn(&wa, &wb, &cost, self.sinkhorn_params)?;
            let cost_aa = crate::ground_distance_matrix(sig_a.points(), sig_a.points());
            let cost_bb = crate::ground_distance_matrix(sig_b.points(), sig_b.points());
            let aa = sinkhorn(&wa, &wa, &cost_aa, self.sinkhorn_params)?;
            let bb = sinkhorn(&wb, &wb, &cost_bb, self.sinkhorn_params)?;
            (ab - 0.5 * aa - 0.5 * bb).max(0.0)
        };

        Ok(GridEmdReport {
            emd,
            occupied_a: ha.occupied(),
            occupied_b: hb.occupied(),
            skipped_a: ha.skipped(),
            skipped_b: hb.skipped(),
            solver: if exact {
                SolverUsed::Simplex
            } else {
                SolverUsed::Sinkhorn
            },
        })
    }
}

fn scaled_signature(hist: &GridHistogram, scale: &[f64]) -> Result<Signature> {
    let pairs = hist.signature();
    let scaled: Vec<(Vec<f64>, f64)> = pairs
        .into_iter()
        .map(|(mut point, w)| {
            for (x, s) in point.iter_mut().zip(scale) {
                *x /= s;
            }
            (point, w)
        })
        .collect();
    Signature::from_pairs(scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points.iter().map(|&(x, y)| vec![x, y]).collect()
    }

    #[test]
    fn identical_clouds_have_zero_distance() {
        let a = cloud(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let report = GridEmd::new(4).distance(&a, &a).unwrap();
        assert!(report.emd.abs() < 1e-12);
        assert_eq!(report.solver, SolverUsed::Simplex);
        assert_eq!(report.occupied_a, report.occupied_b);
    }

    #[test]
    fn shifted_cloud_has_positive_distance() {
        let a = cloud(&[(0.0, 0.0), (0.1, 0.1), (0.2, 0.0)]);
        let b = cloud(&[(5.0, 5.0), (5.1, 5.1), (5.2, 5.0)]);
        let report = GridEmd::new(8)
            .with_cover(CoverRule::MinMax)
            .distance(&a, &b)
            .unwrap();
        assert!(report.emd > 0.5);
        // The robust cover widens the axes, shrinking normalized distances
        // but never erasing them.
        let robust = GridEmd::new(8).distance(&a, &b).unwrap();
        assert!(robust.emd > 0.05 && robust.emd <= report.emd + 1e-12);
    }

    #[test]
    fn distance_grows_with_shift() {
        let base = cloud(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let near = cloud(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let far = cloud(&[(7.0, 0.0), (8.0, 0.0), (9.0, 0.0)]);
        let g = GridEmd::new(16).with_scaling(DistanceScaling::Raw);
        let d_near = g.distance(&base, &near).unwrap().emd;
        let d_far = g.distance(&base, &far).unwrap().emd;
        assert!(d_far > d_near, "{d_far} vs {d_near}");
    }

    #[test]
    fn raw_scaling_matches_1d_emd_for_line_clouds() {
        // Points along one axis; grid EMD with fine bins ≈ exact 1-D EMD.
        let a: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 0.0]).collect();
        let b: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 + 10.0, 0.0]).collect();
        let g = GridEmd::new(64)
            .with_scaling(DistanceScaling::Raw)
            .with_cover(CoverRule::MinMax);
        let grid_d = g.distance(&a, &b).unwrap().emd;
        let a1: Vec<f64> = a.iter().map(|p| p[0]).collect();
        let b1: Vec<f64> = b.iter().map(|p| p[0]).collect();
        let exact = crate::emd_1d_samples(&a1, &b1).unwrap();
        // Quantization error is bounded by the bin diagonal.
        assert!(
            (grid_d - exact).abs() < 2.0,
            "grid {grid_d} vs exact {exact}"
        );
    }

    #[test]
    fn missing_coordinates_are_skipped_and_reported() {
        let mut a = cloud(&[(0.0, 0.0), (1.0, 1.0)]);
        a.push(vec![f64::NAN, 0.5]);
        let b = cloud(&[(0.0, 0.0), (1.0, 1.0)]);
        let report = GridEmd::new(4).distance(&a, &b).unwrap();
        assert_eq!(report.skipped_a, 1);
        assert_eq!(report.skipped_b, 0);
    }

    #[test]
    fn empty_or_all_missing_cloud_is_an_error() {
        let a = cloud(&[(0.0, 0.0)]);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            GridEmd::new(4).distance(&a, &empty),
            Err(EmdError::EmptyInput)
        ));
        let all_missing = vec![vec![f64::NAN, f64::NAN]];
        assert!(GridEmd::new(4).distance(&a, &all_missing).is_err());
    }

    #[test]
    fn sinkhorn_fallback_engages_when_budget_exceeded() {
        let a: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect();
        let b: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 + 0.4, (i / 8) as f64])
            .collect();
        let report = GridEmd::new(8)
            .with_max_exact_cells(4)
            .with_sinkhorn_params(SinkhornParams {
                regularization: 0.1,
                max_iterations: 50_000,
                tolerance: 1e-8,
            })
            .distance(&a, &b)
            .unwrap();
        assert_eq!(report.solver, SolverUsed::Sinkhorn);
        assert!(report.emd.is_finite());
    }

    #[test]
    fn normalized_scaling_is_insensitive_to_axis_units() {
        // Same shape, one axis measured in different units.
        let a1 = cloud(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let b1 = cloud(&[(1.0, 0.0), (2.0, 1.0), (3.0, 0.0)]);
        let a2: Vec<Vec<f64>> = a1.iter().map(|p| vec![p[0] * 1000.0, p[1]]).collect();
        let b2: Vec<Vec<f64>> = b1.iter().map(|p| vec![p[0] * 1000.0, p[1]]).collect();
        let g = GridEmd::new(8).with_scaling(DistanceScaling::Normalized);
        let d1 = g.distance(&a1, &b1).unwrap().emd;
        let d2 = g.distance(&a2, &b2).unwrap().emd;
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }
}
