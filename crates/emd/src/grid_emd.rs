use crate::signature::{quantize, scaled_signature, PatchedCloud};
use crate::{
    sinkhorn, BatchTransport, EmdError, Result, Signature, SignatureCache, SinkhornParams,
};
use sd_stats::{sorted_union_columns, GridSpec};

/// How cell-centre coordinates are scaled before computing ground
/// distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceScaling {
    /// Use raw data coordinates. Appropriate when all attributes share a
    /// scale (e.g. the per-attribute distortion plots).
    Raw,
    /// Divide each axis by its grid range so every attribute contributes
    /// comparably — telemetry KPIs span wildly different magnitudes
    /// (volumes vs ratios), and without normalization the largest-scale
    /// attribute dominates the distance.
    Normalized,
}

/// How the shared grid's axis ranges are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverRule {
    /// Span the exact min–max of the union.
    MinMax,
    /// Span the `[qlo, qhi]` quantile range of the union; values outside
    /// clamp into the edge bins.
    Quantile(f64, f64),
    /// Span `median ± z · IQR` of the union (robust to heavy tails);
    /// values outside clamp into the edge bins.
    Robust {
        /// Half-width in IQR units.
        z: f64,
    },
}

/// Which solver produced a [`GridEmdReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverUsed {
    /// Exact transportation simplex.
    Simplex,
    /// Entropic Sinkhorn approximation (signature exceeded
    /// `max_exact_cells`).
    Sinkhorn,
}

/// End-to-end multidimensional EMD between two point clouds.
///
/// This is the concrete realization of the paper's statistical-distortion
/// measure: pool the `v`-tuples of the dirty and cleaned data sets,
/// quantize both onto one shared grid (so both distributions share a
/// support, as Definition 1 requires), and solve the transportation problem
/// between the occupied cells.
#[derive(Debug, Clone)]
pub struct GridEmd {
    bins_per_axis: usize,
    scaling: DistanceScaling,
    /// When `occupied_a * occupied_b` exceeds this, fall back to Sinkhorn.
    max_exact_cells: usize,
    sinkhorn_params: SinkhornParams,
    /// How the per-axis ranges are chosen.
    cover: CoverRule,
}

/// The result of a [`GridEmd::distance`] computation, with enough
/// diagnostics to audit the quantization.
#[derive(Debug, Clone)]
pub struct GridEmdReport {
    /// The Earth Mover's Distance.
    pub emd: f64,
    /// Occupied grid cells in the first cloud.
    pub occupied_a: usize,
    /// Occupied grid cells in the second cloud.
    pub occupied_b: usize,
    /// Points skipped (missing coordinate) in the first cloud.
    pub skipped_a: usize,
    /// Points skipped in the second cloud.
    pub skipped_b: usize,
    /// Which solver was used.
    pub solver: SolverUsed,
}

impl Default for GridEmd {
    fn default() -> Self {
        GridEmd {
            bins_per_axis: 8,
            scaling: DistanceScaling::Normalized,
            max_exact_cells: 400_000,
            sinkhorn_params: SinkhornParams::default(),
            // Telemetry has extreme spikes; the robust cover keeps the
            // bulk resolved while tails clamp into the edge bins.
            cover: CoverRule::Robust { z: 5.0 },
        }
    }
}

impl GridEmd {
    /// Creates a pipeline with `bins_per_axis` bins on every axis and
    /// normalized distance scaling.
    pub fn new(bins_per_axis: usize) -> Self {
        assert!(bins_per_axis >= 1, "need at least one bin per axis");
        GridEmd {
            bins_per_axis,
            ..Default::default()
        }
    }

    /// Sets the distance scaling.
    pub fn with_scaling(mut self, scaling: DistanceScaling) -> Self {
        self.scaling = scaling;
        self
    }

    /// Sets the exact-solver budget (product of occupied cell counts).
    pub fn with_max_exact_cells(mut self, cells: usize) -> Self {
        self.max_exact_cells = cells;
        self
    }

    /// Sets the Sinkhorn fallback parameters.
    pub fn with_sinkhorn_params(mut self, params: SinkhornParams) -> Self {
        self.sinkhorn_params = params;
        self
    }

    /// Sets the axis-cover rule (out-of-range values clamp into the edge
    /// bins for the quantile and robust rules).
    pub fn with_cover(mut self, cover: CoverRule) -> Self {
        if let CoverRule::Quantile(qlo, qhi) = cover {
            assert!(
                (0.0..=1.0).contains(&qlo) && (0.0..=1.0).contains(&qhi) && qlo < qhi,
                "quantiles must satisfy 0 <= qlo < qhi <= 1"
            );
        }
        if let CoverRule::Robust { z } = cover {
            assert!(z > 0.0, "z must be positive");
        }
        self.cover = cover;
        self
    }

    /// Bins per axis.
    pub fn bins_per_axis(&self) -> usize {
        self.bins_per_axis
    }

    /// EMD between two clouds of equal-dimension points (rows). Rows with
    /// any missing (NaN) coordinate are excluded from the density and
    /// reported in the diagnostics.
    pub fn distance(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<GridEmdReport> {
        let columns = sorted_union_columns(a, b).ok_or(EmdError::EmptyInput)?;
        let spec = self.spec_from_sorted_columns(&columns);
        let qa = quantize(&spec, a);
        if qa.total == 0.0 {
            return Err(EmdError::EmptyInput);
        }
        let scale = self.axis_scale(&spec);
        let sig_a = scaled_signature(qa.pairs, &scale)?;
        let qb = quantize(&spec, b);
        self.solve_pair(
            &spec,
            &scale,
            &sig_a,
            qa.occupied,
            qa.skipped,
            qb,
            None,
            None,
        )
    }

    /// Like [`GridEmd::distance`], but with the first cloud's quantization
    /// state served from a [`SignatureCache`]: the cached sorted columns
    /// feed the cover rule (merged with `b`'s columns instead of re-sorting
    /// the union), and the cached cloud's histogram/signature for the
    /// resulting grid is built at most once per distinct `(spec, scaling)`.
    ///
    /// Bit-identical to `self.distance(cache.rows(), b)`: both paths share
    /// the sorted-column cover constructors and the same signature/solver
    /// pipeline.
    pub fn distance_cached(&self, cache: &SignatureCache, b: &[Vec<f64>]) -> Result<GridEmdReport> {
        if cache.rows().is_empty() {
            return Err(EmdError::EmptyInput);
        }
        let b_columns = cache.counterpart_columns(b);
        let spec = self.spec_from_column_pairs(cache.sorted_columns(), &b_columns);
        let scale = self.axis_scale(&spec);
        let side = cache.side_for(&spec, &scale)?;
        let qb = quantize(&spec, b);
        self.solve_pair(
            &spec,
            &scale,
            &side.signature,
            side.occupied,
            side.skipped,
            qb,
            None,
            None,
        )
    }

    /// EMD between the cached cloud and a [`PatchedCloud`] counterpart
    /// (the cleaned sample as sparse row edits against the dirty one).
    /// The cover rule consumes derived sorted columns, and the counterpart
    /// histogram is the cached histogram with only the edited rows
    /// re-binned. Bit-identical to
    /// `self.distance(cache.rows(), &patched.materialize())`.
    ///
    /// ```
    /// use sd_emd::{GridEmd, PatchedCloud, SignatureCache};
    ///
    /// // A dirty cloud, cached once; a "cleaning" that moves two rows.
    /// let dirty: Vec<Vec<f64>> = (0..64)
    ///     .map(|i| vec![i as f64 * 0.25, (i % 8) as f64])
    ///     .collect();
    /// let cache = SignatureCache::new(dirty.clone());
    /// let edits = vec![(3, vec![100.0, 50.0]), (40, vec![0.5, 0.5])];
    ///
    /// let emd = GridEmd::new(6);
    /// let patched = emd
    ///     .distance_patched(&PatchedCloud::new(&cache, edits.clone()))
    ///     .unwrap();
    ///
    /// // Bit-identical to materializing the cleaned cloud and starting
    /// // from scratch — the engine leans on this equivalence.
    /// let mut cleaned = dirty.clone();
    /// for (row, values) in edits {
    ///     cleaned[row] = values;
    /// }
    /// let direct = emd.distance(&dirty, &cleaned).unwrap();
    /// assert_eq!(patched.emd.to_bits(), direct.emd.to_bits());
    /// assert!(patched.emd > 0.0);
    /// ```
    pub fn distance_patched(&self, patched: &PatchedCloud<'_>) -> Result<GridEmdReport> {
        self.patched_inner(patched, None)
    }

    /// Like [`GridEmd::distance_patched`], but the exact solve runs on a
    /// caller-provided [`BatchTransport`] arena, warm-starting from the
    /// arena's previous solve (the optimizer's candidate-re-scoring loop,
    /// the cost sweep's fraction ladder). On dense grids the instance is
    /// *padded onto the arena's chain frame* — the union of the cells any
    /// link of the chain has occupied, absent cells carrying exactly-zero
    /// mass — so consecutive solves share a shape even as cleaning
    /// re-grids the clouds and their occupied-cell sets drift; the warm
    /// basis then survives the whole ladder and only genuinely new cells
    /// restart it ([`BatchTransport::solve_chained`]). The result obeys
    /// the batch module's warm-vs-cold objective contract
    /// (≤ `1e-9 · (1 + |cold|)`) rather than the bit-identity
    /// `distance_patched` guarantees.
    pub fn distance_patched_with(
        &self,
        patched: &PatchedCloud<'_>,
        transport: &mut BatchTransport,
    ) -> Result<GridEmdReport> {
        self.patched_inner(patched, Some(transport))
    }

    fn patched_inner(
        &self,
        patched: &PatchedCloud<'_>,
        transport: Option<&mut BatchTransport>,
    ) -> Result<GridEmdReport> {
        let cache = patched.cache();
        if cache.rows().is_empty() {
            return Err(EmdError::EmptyInput);
        }
        let b_columns = patched.sorted_columns();
        let spec = self.spec_from_column_pairs(cache.sorted_columns(), b_columns);
        let scale = self.axis_scale(&spec);
        let side = cache.side_for(&spec, &scale)?;
        let qb = patched.quantize_on(&spec, &side.quant);
        // Padded chaining needs the dirty side's occupied cell ids (flat
        // dense-histogram indices); on sparse grids they are unavailable
        // and the chained solve degrades to the unpadded direct form.
        let cells_a = match &transport {
            Some(_) => occupied_cells(&side.quant),
            None => None,
        };
        self.solve_pair(
            &spec,
            &scale,
            &side.signature,
            side.occupied,
            side.skipped,
            qb,
            transport,
            cells_a,
        )
    }

    /// The grid spec for pre-sorted per-axis union columns, under this
    /// pipeline's cover rule.
    fn spec_from_sorted_columns(&self, columns: &[Vec<f64>]) -> GridSpec {
        match self.cover {
            CoverRule::MinMax => {
                GridSpec::from_sorted_columns_quantiles(columns, self.bins_per_axis, 0.0, 1.0)
            }
            CoverRule::Quantile(qlo, qhi) => {
                GridSpec::from_sorted_columns_quantiles(columns, self.bins_per_axis, qlo, qhi)
            }
            CoverRule::Robust { z } => {
                GridSpec::from_sorted_columns_robust(columns, self.bins_per_axis, z)
            }
        }
    }

    /// The grid spec when each axis's union column is split into two
    /// sorted halves (cached side + counterpart side) — same cover rules,
    /// quantiles read by rank selection instead of merging.
    fn spec_from_column_pairs(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> GridSpec {
        let pairs: Vec<(&[f64], &[f64])> = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        match self.cover {
            CoverRule::MinMax => {
                GridSpec::from_sorted_column_pairs_quantiles(&pairs, self.bins_per_axis, 0.0, 1.0)
            }
            CoverRule::Quantile(qlo, qhi) => {
                GridSpec::from_sorted_column_pairs_quantiles(&pairs, self.bins_per_axis, qlo, qhi)
            }
            CoverRule::Robust { z } => {
                GridSpec::from_sorted_column_pairs_robust(&pairs, self.bins_per_axis, z)
            }
        }
    }

    /// Per-axis coordinate divisors implied by the scaling mode.
    fn axis_scale(&self, spec: &GridSpec) -> Vec<f64> {
        match self.scaling {
            DistanceScaling::Raw => vec![1.0; spec.dim()],
            DistanceScaling::Normalized => spec
                .axes()
                .iter()
                .map(|ax| {
                    let range = ax.hi - ax.lo;
                    if range > 0.0 {
                        range
                    } else {
                        1.0
                    }
                })
                .collect(),
        }
    }

    /// Shared back half of the pipeline: solve the transportation problem
    /// between the prepared `a` side and the quantized `b` side. Exact
    /// solves run on a [`BatchTransport`] arena: the caller's (may
    /// warm-start; see [`GridEmd::distance_patched_with`]) or, when
    /// `transport` is `None`, this thread's shared cold arena — pure
    /// allocation reuse, bit-identical to a standalone
    /// [`crate::TransportProblem`] solve.
    ///
    /// With an arena *and* dense occupied-cell ids for both sides, the
    /// exact solve is **padded onto the arena's chain frame** (the union
    /// of cells any link of the chain has occupied): absent cells carry
    /// exactly-zero mass, which leaves the optimum unchanged but keeps
    /// the instance shape stable across a fraction ladder, so the warm
    /// basis survives links whose occupied-cell sets drift.
    #[allow(clippy::too_many_arguments)] // one shared back half for three front halves
    fn solve_pair(
        &self,
        spec: &GridSpec,
        scale: &[f64],
        sig_a: &Signature,
        occupied_a: usize,
        skipped_a: usize,
        qb: crate::signature::CloudQuant,
        transport: Option<&mut BatchTransport>,
        cells_a: Option<Vec<usize>>,
    ) -> Result<GridEmdReport> {
        if qb.total == 0.0 {
            return Err(EmdError::EmptyInput);
        }
        let occupied_b = qb.occupied;
        let skipped_b = qb.skipped;
        let cells_b = match &transport {
            Some(_) => occupied_cells(&qb),
            None => None,
        };
        let sig_b = scaled_signature(qb.pairs, scale)?;

        // The exact-vs-approximate decision reads the *unpadded* cell
        // product, so warm and cold modes always pick the same solver for
        // a given logical instance.
        let exact = sig_a.len() * sig_b.len() <= self.max_exact_cells;
        let emd = if exact {
            let wa = sig_a.normalized_weights();
            let wb = sig_b.normalized_weights();
            match transport {
                Some(arena) => match (cells_a, cells_b) {
                    (Some(ca), Some(cb)) => {
                        solve_exact_padded(arena, spec, scale, sig_a, &ca, &sig_b, &cb, &wa, &wb)?
                    }
                    _ => {
                        let cost = crate::ground_distance_matrix(sig_a.points(), sig_b.points());
                        arena.solve_chained(&wa, &wb, &cost)?
                    }
                },
                None => {
                    let cost = crate::ground_distance_matrix(sig_a.points(), sig_b.points());
                    crate::batch::with_cold_arena(|arena| arena.solve_cold(&wa, &wb, &cost))?
                }
            }
        } else {
            let cost = crate::ground_distance_matrix(sig_a.points(), sig_b.points());
            // Debiased Sinkhorn divergence: the raw entropic cost has a
            // positive floor even for identical distributions (the plan is
            // deliberately blurry), which would swamp small distances.
            // Subtracting the self-transport terms removes that floor:
            //   S(a,b) − ½ S(a,a) − ½ S(b,b).
            let wa = sig_a.normalized_weights();
            let wb = sig_b.normalized_weights();
            let ab = sinkhorn(&wa, &wb, &cost, self.sinkhorn_params)?;
            let cost_aa = crate::ground_distance_matrix(sig_a.points(), sig_a.points());
            let cost_bb = crate::ground_distance_matrix(sig_b.points(), sig_b.points());
            let aa = sinkhorn(&wa, &wa, &cost_aa, self.sinkhorn_params)?;
            let bb = sinkhorn(&wb, &wb, &cost_bb, self.sinkhorn_params)?;
            (ab - 0.5 * aa - 0.5 * bb).max(0.0)
        };

        Ok(GridEmdReport {
            emd,
            occupied_a,
            occupied_b,
            skipped_a,
            skipped_b,
            solver: if exact {
                SolverUsed::Simplex
            } else {
                SolverUsed::Sinkhorn
            },
        })
    }
}

/// One padded chained solve: embed both signatures into the arena's chain
/// frame (a fixed slot roster per side — see [`crate::ChainFrame`]), pad
/// every slot the link does not occupy with exactly-zero mass, and hand
/// the fixed-shape instance to
/// [`BatchTransport::solve_chained`].
///
/// Zero-mass padding is sound because a zero marginal forces zero flow on
/// every incident arc in every *feasible* solution — the primal simplex
/// never leaves the feasible region — so the padded optimum equals the
/// unpadded one exactly; only the floating-point pivot order differs,
/// which the chained objective contract (`1e-9·(1+|cold|)`) already
/// covers. A cell the roster has not seen first re-anchors a vacated
/// slot (a cost perturbation, no shape change); only when the link
/// occupies more cells than the roster holds does the frame grow, the
/// shape change, and the chained solve restart cold — the chain then
/// resumes from the next link.
#[allow(clippy::too_many_arguments)] // splits one oversized solve_pair branch
fn solve_exact_padded(
    arena: &mut BatchTransport,
    spec: &GridSpec,
    scale: &[f64],
    sig_a: &Signature,
    cells_a: &[usize],
    sig_b: &Signature,
    cells_b: &[usize],
    wa: &[f64],
    wb: &[f64],
) -> Result<f64> {
    let mut frame = arena.take_chain_frame();
    frame.ensure_covers(cells_a, cells_b);
    let pa = padded_points(spec, scale, frame.side_a.slots(), cells_a, sig_a);
    let pb = padded_points(spec, scale, frame.side_b.slots(), cells_b, sig_b);
    let wa_pad = padded_weights(frame.side_a.slots(), cells_a, wa);
    let wb_pad = padded_weights(frame.side_b.slots(), cells_b, wb);
    let cost = crate::ground_distance_matrix(&pa, &pb);
    let solved = arena.solve_chained(&wa_pad, &wb_pad, &cost);
    arena.restore_chain_frame(frame);
    solved
}

/// Ascending flat cell ids of a dense quantization's occupied cells
/// (`None` on sparse grids, where the padded chain is unavailable). The
/// filter matches `dense_quant`'s, so the ids parallel the signature's
/// pair order.
fn occupied_cells(quant: &crate::signature::CloudQuant) -> Option<Vec<usize>> {
    let counts = quant.counts.as_ref()?;
    Some(
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(i, _)| i)
            .collect(),
    )
}

/// Scatters per-cell weights into their anchored slots; every other slot
/// is exactly zero. After `ensure_covers`, each of the ascending `cells`
/// (with `w` parallel) is the anchor of exactly one slot.
fn padded_weights(slots: &[usize], cells: &[usize], w: &[f64]) -> Vec<f64> {
    let mut covered = 0;
    let out = slots
        .iter()
        .map(|anchor| match cells.binary_search(anchor) {
            Ok(j) => {
                covered += 1;
                w[j]
            }
            Err(_) => 0.0,
        })
        .collect();
    debug_assert_eq!(covered, cells.len(), "signature cells not anchored");
    out
}

/// Scaled centre coordinates for every slot: the signature's own points
/// for slots anchored to occupied cells (bit-identical to the unpadded
/// instance), freshly decoded centres for zero-mass padding slots.
fn padded_points(
    spec: &GridSpec,
    scale: &[f64],
    slots: &[usize],
    cells: &[usize],
    sig: &Signature,
) -> Vec<Vec<f64>> {
    let dims: Vec<usize> = spec.axes().iter().map(|ax| ax.bins).collect();
    let mut out = Vec::with_capacity(slots.len());
    let mut cell = vec![0u32; dims.len()];
    for &anchor in slots {
        match cells.binary_search(&anchor) {
            Ok(j) => out.push(sig.points()[j].clone()),
            Err(_) => {
                let mut rem = anchor;
                for (k, &bins) in dims.iter().enumerate().rev() {
                    cell[k] = (rem % bins) as u32;
                    rem /= bins;
                }
                let mut p = spec.center_of(&cell);
                for (x, s) in p.iter_mut().zip(scale) {
                    *x /= s;
                }
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points.iter().map(|&(x, y)| vec![x, y]).collect()
    }

    #[test]
    fn identical_clouds_have_zero_distance() {
        let a = cloud(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let report = GridEmd::new(4).distance(&a, &a).unwrap();
        assert!(report.emd.abs() < 1e-12);
        assert_eq!(report.solver, SolverUsed::Simplex);
        assert_eq!(report.occupied_a, report.occupied_b);
    }

    #[test]
    fn shifted_cloud_has_positive_distance() {
        let a = cloud(&[(0.0, 0.0), (0.1, 0.1), (0.2, 0.0)]);
        let b = cloud(&[(5.0, 5.0), (5.1, 5.1), (5.2, 5.0)]);
        let report = GridEmd::new(8)
            .with_cover(CoverRule::MinMax)
            .distance(&a, &b)
            .unwrap();
        assert!(report.emd > 0.5);
        // The robust cover widens the axes, shrinking normalized distances
        // but never erasing them.
        let robust = GridEmd::new(8).distance(&a, &b).unwrap();
        assert!(robust.emd > 0.05 && robust.emd <= report.emd + 1e-12);
    }

    #[test]
    fn distance_grows_with_shift() {
        let base = cloud(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let near = cloud(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let far = cloud(&[(7.0, 0.0), (8.0, 0.0), (9.0, 0.0)]);
        let g = GridEmd::new(16).with_scaling(DistanceScaling::Raw);
        let d_near = g.distance(&base, &near).unwrap().emd;
        let d_far = g.distance(&base, &far).unwrap().emd;
        assert!(d_far > d_near, "{d_far} vs {d_near}");
    }

    #[test]
    fn raw_scaling_matches_1d_emd_for_line_clouds() {
        // Points along one axis; grid EMD with fine bins ≈ exact 1-D EMD.
        let a: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 0.0]).collect();
        let b: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 + 10.0, 0.0]).collect();
        let g = GridEmd::new(64)
            .with_scaling(DistanceScaling::Raw)
            .with_cover(CoverRule::MinMax);
        let grid_d = g.distance(&a, &b).unwrap().emd;
        let a1: Vec<f64> = a.iter().map(|p| p[0]).collect();
        let b1: Vec<f64> = b.iter().map(|p| p[0]).collect();
        let exact = crate::emd_1d_samples(&a1, &b1).unwrap();
        // Quantization error is bounded by the bin diagonal.
        assert!(
            (grid_d - exact).abs() < 2.0,
            "grid {grid_d} vs exact {exact}"
        );
    }

    #[test]
    fn missing_coordinates_are_skipped_and_reported() {
        let mut a = cloud(&[(0.0, 0.0), (1.0, 1.0)]);
        a.push(vec![f64::NAN, 0.5]);
        let b = cloud(&[(0.0, 0.0), (1.0, 1.0)]);
        let report = GridEmd::new(4).distance(&a, &b).unwrap();
        assert_eq!(report.skipped_a, 1);
        assert_eq!(report.skipped_b, 0);
    }

    #[test]
    fn empty_or_all_missing_cloud_is_an_error() {
        let a = cloud(&[(0.0, 0.0)]);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            GridEmd::new(4).distance(&a, &empty),
            Err(EmdError::EmptyInput)
        ));
        let all_missing = vec![vec![f64::NAN, f64::NAN]];
        assert!(GridEmd::new(4).distance(&a, &all_missing).is_err());
    }

    #[test]
    fn sinkhorn_fallback_engages_when_budget_exceeded() {
        let a: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect();
        let b: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 + 0.4, (i / 8) as f64])
            .collect();
        let report = GridEmd::new(8)
            .with_max_exact_cells(4)
            .with_sinkhorn_params(SinkhornParams {
                regularization: 0.1,
                max_iterations: 50_000,
                tolerance: 1e-8,
            })
            .distance(&a, &b)
            .unwrap();
        assert_eq!(report.solver, SolverUsed::Sinkhorn);
        assert!(report.emd.is_finite());
    }

    #[test]
    fn cached_distance_is_bit_identical_to_direct() {
        // Several counterpart clouds against one cached cloud, across cover
        // rules and scalings: the cached path must reproduce the direct
        // path bit for bit, hits and misses alike.
        let a: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 * 1.3, (i / 10) as f64, (i % 7) as f64 * 0.2])
            .collect();
        let mut with_gap = a.clone();
        with_gap[5][1] = f64::NAN;
        let counterparts: Vec<Vec<Vec<f64>>> = vec![
            a.clone(), // identical → same grid, memo hit on the second call
            a.iter().map(|p| vec![p[0] + 2.0, p[1], p[2]]).collect(),
            a.iter()
                .map(|p| vec![p[0], p[1] * 3.0, p[2] + 1.0])
                .collect(),
            with_gap,
        ];
        for g in [
            GridEmd::new(6),
            GridEmd::new(4).with_scaling(DistanceScaling::Raw),
            GridEmd::new(5).with_cover(CoverRule::MinMax),
            GridEmd::new(5).with_cover(CoverRule::Quantile(0.05, 0.95)),
        ] {
            let cache = SignatureCache::new(a.clone());
            for b in &counterparts {
                let direct = g.distance(&a, b).unwrap();
                let cached = g.distance_cached(&cache, b).unwrap();
                assert_eq!(direct.emd.to_bits(), cached.emd.to_bits());
                assert_eq!(direct.occupied_a, cached.occupied_a);
                assert_eq!(direct.occupied_b, cached.occupied_b);
                assert_eq!(direct.skipped_a, cached.skipped_a);
                assert_eq!(direct.skipped_b, cached.skipped_b);
                assert_eq!(direct.solver, cached.solver);
            }
            // Re-scoring the identical cloud hits the memo.
            let before = cache.memoized();
            g.distance_cached(&cache, &a).unwrap();
            assert_eq!(cache.memoized(), before);
        }
    }

    #[test]
    fn patched_distance_is_bit_identical_to_direct() {
        // The patched pipeline (derived sorted columns + incrementally
        // edited dense histogram) must equal the direct pipeline on the
        // materialized cloud, bit for bit, across edit shapes.
        let a: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 9) as f64 * 1.7, (i / 9) as f64 * 0.9, (i % 5) as f64])
            .collect();
        let edit_sets: Vec<Vec<(usize, Vec<f64>)>> = vec![
            vec![],                            // no edits: b == a
            vec![(3, vec![100.0, -4.0, 2.0])], // one row far away
            (0..40)
                .map(|r| (r * 2, vec![r as f64 * 0.3, 1.0, 2.5]))
                .collect(),
            vec![(7, vec![f64::NAN, 1.0, 1.0])], // edit introduces a gap
            vec![(11, vec![0.0, 0.0, 0.0]), (12, vec![8.5, 7.2, 4.0])],
        ];
        let mut with_gap = a.clone();
        with_gap[5][0] = f64::NAN; // base cloud itself has a gap
        for base in [a.clone(), with_gap] {
            for g in [
                GridEmd::new(6),
                GridEmd::new(4).with_scaling(DistanceScaling::Raw),
                GridEmd::new(5).with_cover(CoverRule::MinMax),
            ] {
                let cache = SignatureCache::new(base.clone());
                for edits in &edit_sets {
                    let patched = PatchedCloud::new(&cache, edits.clone());
                    let b = patched.materialize();
                    let direct = g.distance(&base, &b).unwrap();
                    let fast = g.distance_patched(&patched).unwrap();
                    assert_eq!(direct.emd.to_bits(), fast.emd.to_bits());
                    assert_eq!(direct.occupied_a, fast.occupied_a);
                    assert_eq!(direct.occupied_b, fast.occupied_b);
                    assert_eq!(direct.skipped_a, fast.skipped_a);
                    assert_eq!(direct.skipped_b, fast.skipped_b);
                    assert_eq!(direct.solver, fast.solver);
                }
            }
        }
    }

    #[test]
    fn chained_ladder_warms_across_drifting_edits() {
        // A fraction ladder in miniature: one dirty cloud, a growing edit
        // set (cleaning more rows at each link), every link scored on ONE
        // arena via `distance_patched_with`. The occupied-cell sets drift
        // link to link, so this exercises the chain frame's re-anchoring
        // (and its growth → unpadded-rebuild path) end to end. Contract:
        // each chained result stays within `1e-9·(1+|cold|)` of the
        // bit-exact unchained pipeline, and the chain must actually warm —
        // otherwise the padding machinery is dead weight.
        let dirty: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let x = (i as f64 * 0.61).sin() * 9.0;
                let y = (i as f64 * 0.17).cos() * 4.0 + (i % 7) as f64;
                vec![x, y]
            })
            .collect();
        let cache = SignatureCache::new(dirty.clone());
        let g = GridEmd::new(8);
        let mut arena = BatchTransport::new();
        for step in 1..=10usize {
            // Link `step` cleans rows 0..12·step toward a common target.
            let edits: Vec<(usize, Vec<f64>)> = (0..12 * step)
                .map(|r| (r, vec![r as f64 * 0.05, 2.0 + (r % 3) as f64 * 0.4]))
                .collect();
            let patched = PatchedCloud::new(&cache, edits);
            let cold = g.distance_patched(&patched).unwrap();
            let warm = g.distance_patched_with(&patched, &mut arena).unwrap();
            assert_eq!(cold.solver, SolverUsed::Simplex);
            assert_eq!(warm.solver, cold.solver);
            assert_eq!(warm.occupied_a, cold.occupied_a);
            assert_eq!(warm.occupied_b, cold.occupied_b);
            assert!(
                (warm.emd - cold.emd).abs() <= 1e-9 * (1.0 + cold.emd.abs()),
                "step {step}: chained {} vs cold {}",
                warm.emd,
                cold.emd
            );
        }
        let stats = arena.stats();
        assert!(stats.solves >= 10, "{stats:?}");
        assert!(
            stats.warm_hits > 0,
            "chain never warmed across the ladder: {stats:?}"
        );
    }

    #[test]
    fn dense_and_sparse_quantization_agree() {
        use crate::signature::quantize;
        use sd_stats::GridHistogram;
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 40.0;
                let y = (i as f64 * 0.11).cos() * 7.0;
                vec![x, if i % 13 == 0 { f64::NAN } else { y }]
            })
            .collect();
        let spec = sd_stats::GridSpec::covering(&rows, &[], 9).unwrap();
        let dense = quantize(&spec, &rows);
        assert!(dense.counts.is_some(), "9×9 grid takes the dense path");
        let sparse = GridHistogram::from_points(spec.clone(), &rows);
        assert_eq!(dense.total, sparse.total());
        assert_eq!(dense.skipped, sparse.skipped());
        assert_eq!(dense.occupied, sparse.occupied());
        let sparse_pairs = sparse.signature();
        assert_eq!(dense.pairs.len(), sparse_pairs.len());
        for ((pc, pm), (sc, sm)) in dense.pairs.iter().zip(&sparse_pairs) {
            assert_eq!(pc, sc, "centre order must match");
            assert_eq!(pm.to_bits(), sm.to_bits(), "masses must match");
        }
    }

    #[test]
    fn cached_distance_matches_direct_errors() {
        let a = cloud(&[(0.0, 0.0), (1.0, 1.0)]);
        let empty: Vec<Vec<f64>> = Vec::new();
        let cache = SignatureCache::new(a.clone());
        assert!(matches!(
            GridEmd::new(4).distance_cached(&cache, &empty),
            Err(EmdError::EmptyInput)
        ));
        let all_missing = vec![vec![f64::NAN, f64::NAN]];
        assert!(GridEmd::new(4)
            .distance_cached(&cache, &all_missing)
            .is_err());
        // Empty cached cloud behaves like an empty first argument.
        let empty_cache = SignatureCache::new(Vec::new());
        assert!(matches!(
            GridEmd::new(4).distance_cached(&empty_cache, &a),
            Err(EmdError::EmptyInput)
        ));
    }

    #[test]
    fn normalized_scaling_is_insensitive_to_axis_units() {
        // Same shape, one axis measured in different units.
        let a1 = cloud(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let b1 = cloud(&[(1.0, 0.0), (2.0, 1.0), (3.0, 0.0)]);
        let a2: Vec<Vec<f64>> = a1.iter().map(|p| vec![p[0] * 1000.0, p[1]]).collect();
        let b2: Vec<Vec<f64>> = b1.iter().map(|p| vec![p[0] * 1000.0, p[1]]).collect();
        let g = GridEmd::new(8).with_scaling(DistanceScaling::Normalized);
        let d1 = g.distance(&a1, &b1).unwrap().emd;
        let d2 = g.distance(&a2, &b2).unwrap().emd;
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }
}
