//! Persistent spanning-tree representation of a transportation-simplex
//! basis (the MODI / network-simplex "basis tree").
//!
//! The bipartite transportation graph has `n` row nodes (`0..n`) and `m`
//! column nodes (`n..n + m`); a basic cell `(i, j)` is the tree arc
//! `i ↔ n + j`. A basis of `n + m − 1` cells is exactly a spanning tree of
//! that node set, and every simplex operation is a local tree operation:
//!
//! * **duals** — the MODI potentials `u_i + v_j = c_ij` are node labels
//!   propagated from the root, kept incrementally: a pivot shifts them only
//!   on the subtree cut off by the leaving arc;
//! * **cycle** — the pivot cycle of an entering cell `(i, j)` is the tree
//!   path between `i` and `n + j`, found by walking parent pointers to the
//!   lowest common ancestor;
//! * **basis exchange** — dropping the leaving arc and grafting the severed
//!   subtree onto the entering arc re-roots one subtree, touching only the
//!   chain between the entering endpoint and the cut.
//!
//! The tree is threaded through flat arrays (`parent` / `parent_cell` /
//! `depth` plus a doubly linked `first_child` / `next_sibling` /
//! `prev_sibling` children list) so pivots allocate nothing: the cycle and
//! DFS scratch vectors are owned by the tree and reused across pivots.

use crate::EmdError;

/// Sentinel for "no node" in the flat tree arrays.
const NONE: u32 = u32::MAX;

/// Spanning-tree basis for an `n × m` transportation problem.
#[derive(Debug, Clone)]
pub(crate) struct BasisTree {
    n: usize,
    m: usize,
    /// Parent node (`NONE` for the root, node `0`).
    parent: Vec<u32>,
    /// Cell id `i * m + j` of the arc to the parent (undefined for root).
    parent_cell: Vec<u32>,
    /// Distance from the root.
    depth: Vec<u32>,
    /// Head of the doubly linked children list.
    first_child: Vec<u32>,
    /// Next sibling in the parent's children list.
    next_sibling: Vec<u32>,
    /// Previous sibling (`NONE` when first).
    prev_sibling: Vec<u32>,
    /// MODI potentials: `pot[i] = u_i` for rows, `pot[n + j] = v_j` for
    /// columns; basic arcs satisfy `u_i + v_j = c_ij` exactly at build /
    /// recompute time and incrementally thereafter.
    pot: Vec<f64>,
    /// Scratch: arcs (child node, cell) from the row endpoint up to the LCA.
    up_row: Vec<(u32, u32)>,
    /// Scratch: arcs from the column endpoint up to the LCA.
    up_col: Vec<(u32, u32)>,
    /// Scratch: DFS stack for subtree relabeling.
    stack: Vec<u32>,
}

impl BasisTree {
    /// Builds the tree from `n + m − 1` basic cell ids, rooting at row 0
    /// with `u_0 = 0`. Returns `None` if the cells do not span all nodes
    /// (a logic error upstream, not bad input).
    pub(crate) fn build(n: usize, m: usize, cells: &[u32], cost: &[f64]) -> Option<Self> {
        let nodes = n + m;
        let mut tree = BasisTree {
            n,
            m,
            parent: vec![NONE; nodes],
            parent_cell: vec![NONE; nodes],
            depth: vec![0; nodes],
            first_child: vec![NONE; nodes],
            next_sibling: vec![NONE; nodes],
            prev_sibling: vec![NONE; nodes],
            pot: vec![0.0; nodes],
            up_row: Vec::with_capacity(nodes),
            up_col: Vec::with_capacity(nodes),
            stack: Vec::with_capacity(nodes),
        };
        // One-shot adjacency for the initial BFS; pivots never rebuild it.
        let mut adj_head = vec![NONE; nodes];
        let mut adj_next = vec![NONE; 2 * cells.len()];
        let mut adj_node = vec![0u32; 2 * cells.len()];
        let mut adj_cell = vec![0u32; 2 * cells.len()];
        for (k, &cell) in cells.iter().enumerate() {
            let i = cell as usize / m;
            let j = cell as usize % m;
            for (slot, (from, to)) in [(2 * k, (i, n + j)), (2 * k + 1, (n + j, i))] {
                adj_node[slot] = to as u32;
                adj_cell[slot] = cell;
                adj_next[slot] = adj_head[from];
                adj_head[from] = slot as u32;
            }
        }
        let mut visited = vec![false; nodes];
        visited[0] = true;
        tree.stack.push(0);
        let mut seen = 1usize;
        while let Some(node) = tree.stack.pop() {
            let mut slot = adj_head[node as usize];
            while slot != NONE {
                let next = adj_node[slot as usize];
                let cell = adj_cell[slot as usize];
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    seen += 1;
                    tree.parent[next as usize] = node;
                    tree.parent_cell[next as usize] = cell;
                    tree.depth[next as usize] = tree.depth[node as usize] + 1;
                    // u_i + v_j = c_ij holds in both propagation directions.
                    tree.pot[next as usize] = cost[cell as usize] - tree.pot[node as usize];
                    tree.attach(next, node);
                    tree.stack.push(next);
                }
                slot = adj_next[slot as usize];
            }
        }
        (seen == nodes).then_some(tree)
    }

    /// The reduced cost `c_ij − u_i − v_j` of cell `(i, j)`.
    #[cfg(test)]
    pub(crate) fn reduced_cost(&self, cost: &[f64], cell: usize) -> f64 {
        let i = cell / self.m;
        let j = cell - i * self.m;
        cost[cell] - self.pot[i] - self.pot[self.n + j]
    }

    /// Block / candidate-list pricing: scans cells cyclically from
    /// `*cursor` in chunks of `block`, returning the most negative reduced
    /// cost (below `−tol`) found in the first chunk that contains one.
    /// Basic cells have reduced cost 0 by construction, so no membership
    /// test is needed. Returns `None` after a full fruitless sweep.
    pub(crate) fn find_entering(
        &self,
        cost: &[f64],
        tol: f64,
        cursor: &mut usize,
        block: usize,
    ) -> Option<usize> {
        let total = self.n * self.m;
        let mut i = *cursor / self.m;
        let mut j = *cursor - i * self.m;
        let mut ui = self.pot[i];
        let mut best_cell = usize::MAX;
        let mut best_rc = -tol;
        let mut scanned = 0usize;
        while scanned < total {
            let chunk = block.min(total - scanned);
            for _ in 0..chunk {
                let cell = i * self.m + j;
                let rc = cost[cell] - ui - self.pot[self.n + j];
                if rc < best_rc {
                    best_rc = rc;
                    best_cell = cell;
                }
                j += 1;
                if j == self.m {
                    j = 0;
                    i += 1;
                    if i == self.n {
                        i = 0;
                    }
                    ui = self.pot[i];
                }
            }
            scanned += chunk;
            if best_cell != usize::MAX {
                break;
            }
        }
        *cursor = i * self.m + j;
        (best_cell != usize::MAX).then_some(best_cell)
    }

    /// Re-derives all potentials from the tree by DFS from the root,
    /// clearing any drift accumulated by incremental subtree shifts.
    pub(crate) fn recompute_potentials(&mut self, cost: &[f64]) {
        self.pot[0] = 0.0;
        self.stack.clear();
        self.stack.push(0);
        while let Some(node) = self.stack.pop() {
            let mut child = self.first_child[node as usize];
            while child != NONE {
                self.pot[child as usize] =
                    cost[self.parent_cell[child as usize] as usize] - self.pot[node as usize];
                self.stack.push(child);
                child = self.next_sibling[child as usize];
            }
        }
    }

    /// One simplex pivot on the entering cell (`ei`, `ej`): pushes θ around
    /// the tree cycle, drops the blocking arc with the smallest flow
    /// (Bland-style tie-break: ties go to the largest cell id, so
    /// degenerate zero-flow ties resolve deterministically instead of
    /// cycling), grafts the severed subtree onto the entering arc, and
    /// shifts the subtree potentials by the entering reduced cost.
    ///
    /// A spanning-tree cycle always contains a blocking arc, so the only
    /// way the ratio test can come up empty is corrupt state (typically
    /// NaN flow defeating every comparison); that case surfaces as
    /// [`EmdError::BrokenPivot`] instead of a panic so one bad instance
    /// cannot take down sibling work sharing a thread pool.
    pub(crate) fn pivot(
        &mut self,
        ei: usize,
        ej: usize,
        cost: &[f64],
        flow: &mut [f64],
    ) -> Result<(), EmdError> {
        let n = self.n;
        let m = self.m;
        let row_end = ei as u32;
        let col_end = (n + ej) as u32;
        let entering = (ei * m + ej) as u32;
        let rc = cost[entering as usize] - self.pot[ei] - self.pot[n + ej];

        // Tree path endpoints → LCA, recording (child, arc cell) pairs.
        self.up_row.clear();
        self.up_col.clear();
        let (mut x, mut y) = (row_end, col_end);
        while self.depth[x as usize] > self.depth[y as usize] {
            self.up_row.push((x, self.parent_cell[x as usize]));
            x = self.parent[x as usize];
        }
        while self.depth[y as usize] > self.depth[x as usize] {
            self.up_col.push((y, self.parent_cell[y as usize]));
            y = self.parent[y as usize];
        }
        while x != y {
            self.up_row.push((x, self.parent_cell[x as usize]));
            x = self.parent[x as usize];
            self.up_col.push((y, self.parent_cell[y as usize]));
            y = self.parent[y as usize];
        }

        // Walking the cycle in the direction column-endpoint → LCA →
        // row-endpoint, an arc carries −θ when the cycle traverses it
        // column→row. On the column side (walked with the cycle) that means
        // the recorded child is a column node; on the row side (walked
        // against the cycle) it means the child is a row node.
        let mut theta = f64::INFINITY;
        let mut leaving: Option<(u32, u32, bool)> = None; // (child, cell, on row side)
        for &(child, cell) in &self.up_row {
            if (child as usize) < n {
                let f = flow[cell as usize];
                if f < theta || (f == theta && leaving.is_some_and(|(_, lc, _)| cell > lc)) {
                    theta = f;
                    leaving = Some((child, cell, true));
                }
            }
        }
        for &(child, cell) in &self.up_col {
            if (child as usize) >= n {
                let f = flow[cell as usize];
                if f < theta || (f == theta && leaving.is_some_and(|(_, lc, _)| cell > lc)) {
                    theta = f;
                    leaving = Some((child, cell, false));
                }
            }
        }
        let (cut, leaving_cell, on_row_side) = leaving.ok_or(EmdError::BrokenPivot {
            entering: entering as usize,
        })?;

        // Pricing has no basic-cell membership test (basic arcs price to 0
        // by construction), but incremental dual updates drift: a basic
        // arc can price fractionally negative and be handed in as
        // "entering". Its tree path degenerates to the arc itself, so it
        // selects itself as leaving — pushing θ would then zero the arc's
        // real flow and silently destroy mass. Skip the flow update (the
        // relabel below still shifts the subtree by `rc`, repairing the
        // drifted duals so the arc prices back to 0).
        if leaving_cell != entering {
            // Push θ around the cycle.
            flow[entering as usize] += theta;
            for &(child, cell) in &self.up_row {
                if (child as usize) < n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            for &(child, cell) in &self.up_col {
                if (child as usize) >= n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            flow[leaving_cell as usize] = 0.0; // clamp rounding residue
        }

        // Basis exchange: the subtree under `cut` is severed; it contains
        // whichever entering endpoint the leaving arc was found above.
        let (in_node, out_node) = if on_row_side {
            (row_end, col_end)
        } else {
            (col_end, row_end)
        };
        // Re-root the severed subtree at `in_node` by reversing the parent
        // chain up to `cut`, then graft it onto `out_node` via the
        // entering arc.
        let mut node = in_node;
        let mut new_parent = out_node;
        let mut new_cell = entering;
        loop {
            let old_parent = self.parent[node as usize];
            let old_cell = self.parent_cell[node as usize];
            let at_cut = node == cut;
            self.detach(node);
            self.parent[node as usize] = new_parent;
            self.parent_cell[node as usize] = new_cell;
            self.attach(node, new_parent);
            if at_cut {
                break;
            }
            new_parent = node;
            new_cell = old_cell;
            node = old_parent;
        }

        // Relabel the grafted subtree: depths from the new attachment and a
        // constant potential shift (+rc on the side of the entering
        // endpoint's node kind, −rc on the other) keep every intra-subtree
        // arc satisfying u_i + v_j = c_ij and make the entering arc basic.
        let (d_row, d_col) = if on_row_side { (rc, -rc) } else { (-rc, rc) };
        self.depth[in_node as usize] = self.depth[out_node as usize] + 1;
        self.stack.clear();
        self.stack.push(in_node);
        while let Some(u) = self.stack.pop() {
            self.pot[u as usize] += if (u as usize) < n { d_row } else { d_col };
            let mut child = self.first_child[u as usize];
            while child != NONE {
                self.depth[child as usize] = self.depth[u as usize] + 1;
                self.stack.push(child);
                child = self.next_sibling[child as usize];
            }
        }
        Ok(())
    }

    /// Links `node` at the head of `parent`'s children list.
    #[inline]
    fn attach(&mut self, node: u32, parent: u32) {
        let head = self.first_child[parent as usize];
        self.next_sibling[node as usize] = head;
        self.prev_sibling[node as usize] = NONE;
        if head != NONE {
            self.prev_sibling[head as usize] = node;
        }
        self.first_child[parent as usize] = node;
    }

    /// Unlinks `node` from its current parent's children list.
    #[inline]
    fn detach(&mut self, node: u32) {
        let prev = self.prev_sibling[node as usize];
        let next = self.next_sibling[node as usize];
        if prev != NONE {
            self.next_sibling[prev as usize] = next;
        } else {
            let parent = self.parent[node as usize];
            if parent != NONE {
                self.first_child[parent as usize] = next;
            }
        }
        if next != NONE {
            self.prev_sibling[next as usize] = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Staircase basis for a 2×2 problem: cells (0,0), (0,1), (1,1).
    fn staircase_2x2() -> (BasisTree, Vec<f64>) {
        let cost = vec![1.0, 4.0, 2.0, 3.0];
        let tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        (tree, cost)
    }

    #[test]
    fn build_sets_consistent_potentials() {
        let (tree, cost) = staircase_2x2();
        // u_0 = 0 at the root; basic arcs must satisfy u_i + v_j = c_ij.
        for &cell in &[0usize, 1, 3] {
            assert!(
                tree.reduced_cost(&cost, cell).abs() < 1e-12,
                "basic cell {cell} has nonzero reduced cost"
            );
        }
    }

    #[test]
    fn build_rejects_non_spanning_basis() {
        // Two parallel arcs on the same column leave row 1 disconnected.
        let cost = vec![0.0; 4];
        assert!(BasisTree::build(2, 2, &[0, 0, 0], &cost).is_none());
    }

    #[test]
    fn pricing_finds_the_negative_cell() {
        let (tree, cost) = staircase_2x2();
        // Cell (1,0) has reduced cost c_10 − u_1 − v_0 = 2 − (−1) − 1 = 2;
        // no entering cell exists for this cost matrix.
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cost, 1e-12, &mut cursor, 2), None);
        // Drop c_10 so it prices negative.
        let mut cheap = cost.clone();
        cheap[2] = -5.0;
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cheap, 1e-12, &mut cursor, 2), Some(2));
    }

    #[test]
    fn pivot_updates_flow_and_potentials() {
        // Anti-diagonal costs make the NW staircase flow (which ships on
        // the expensive diagonal) suboptimal; entering (1,0) reroutes it.
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![1.0, 1.0, 0.0, 1.0];
        assert!(tree.reduced_cost(&cost, 2) < 0.0);
        tree.pivot(1, 0, &cost, &mut flow).unwrap();
        assert_eq!(flow, vec![0.0, 2.0, 1.0, 0.0]);
        // All basic arcs (now (0,0), (0,1), (1,0)) price to zero again and
        // no cell prices negative: the pivot reached the optimum.
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cost, 1e-12, &mut cursor, 4), None);
        for cell in [0usize, 1, 2] {
            assert!(tree.reduced_cost(&cost, cell).abs() < 1e-12);
        }
    }

    #[test]
    fn pivot_on_a_basic_arc_repairs_duals_without_moving_flow() {
        // Regression: if dual drift makes a basic arc price negative,
        // find_entering can return it. The degenerate single-arc "cycle"
        // must not zero the arc's flow — only the duals may move.
        let (mut tree, cost) = staircase_2x2();
        let flow_before = vec![1.0, 1.0, 0.0, 1.0];
        let mut flow = flow_before.clone();
        // Inject drift on the subtree under column 1 so basic cell (0,1)
        // prices negative, then hand it in as "entering".
        tree.pot[3] += 1e-9;
        assert!(tree.reduced_cost(&cost, 1) < 0.0);
        tree.pivot(0, 1, &cost, &mut flow).unwrap();
        assert_eq!(flow, flow_before, "flow must survive a dual repair");
        assert!(
            tree.reduced_cost(&cost, 1).abs() < 1e-12,
            "drifted arc must price back to zero"
        );
    }

    #[test]
    fn pivot_with_nan_flow_reports_broken_pivot() {
        // NaN flow defeats every comparison in the ratio test, so no
        // blocking arc is ever selected — the one state that can break the
        // cycle invariant must surface as an error, not a panic.
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![f64::NAN; 4];
        assert!(matches!(
            tree.pivot(1, 0, &cost, &mut flow),
            Err(EmdError::BrokenPivot { entering: 2 })
        ));
    }

    #[test]
    fn recompute_matches_incremental_potentials() {
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![1.0, 1.0, 0.0, 1.0];
        tree.pivot(1, 0, &cost, &mut flow).unwrap();
        let incremental = tree.pot.clone();
        tree.recompute_potentials(&cost);
        for (a, b) in incremental.iter().zip(&tree.pot) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
