//! Persistent spanning-tree representation of a transportation-simplex
//! basis (the MODI / network-simplex "basis tree").
//!
//! The bipartite transportation graph has `n` row nodes (`0..n`) and `m`
//! column nodes (`n..n + m`); a basic cell `(i, j)` is the tree arc
//! `i ↔ n + j`. A basis of `n + m − 1` cells is exactly a spanning tree of
//! that node set, and every simplex operation is a local tree operation:
//!
//! * **duals** — the MODI potentials `u_i + v_j = c_ij` are node labels
//!   propagated from the root, kept incrementally: a pivot shifts them only
//!   on the subtree cut off by the leaving arc;
//! * **cycle** — the pivot cycle of an entering cell `(i, j)` is the tree
//!   path between `i` and `n + j`, found by walking parent pointers to the
//!   lowest common ancestor;
//! * **basis exchange** — dropping the leaving arc and grafting the severed
//!   subtree onto the entering arc re-roots one subtree, touching only the
//!   chain between the entering endpoint and the cut.
//!
//! The tree is threaded through flat arrays (`parent` / `parent_cell` /
//! `depth` plus a doubly linked `first_child` / `next_sibling` /
//! `prev_sibling` children list) so pivots allocate nothing: the cycle and
//! DFS scratch vectors are owned by the tree and reused across pivots.

use crate::EmdError;

/// Sentinel for "no node" in the flat tree arrays.
const NONE: u32 = u32::MAX;

/// Spanning-tree basis for an `n × m` transportation problem.
#[derive(Debug, Clone)]
pub(crate) struct BasisTree {
    n: usize,
    m: usize,
    /// Parent node (`NONE` for the root, node `0`).
    parent: Vec<u32>,
    /// Cell id `i * m + j` of the arc to the parent (undefined for root).
    parent_cell: Vec<u32>,
    /// Distance from the root.
    depth: Vec<u32>,
    /// Head of the doubly linked children list.
    first_child: Vec<u32>,
    /// Next sibling in the parent's children list.
    next_sibling: Vec<u32>,
    /// Previous sibling (`NONE` when first).
    prev_sibling: Vec<u32>,
    /// MODI potentials: `pot[i] = u_i` for rows, `pot[n + j] = v_j` for
    /// columns; basic arcs satisfy `u_i + v_j = c_ij` exactly at build /
    /// recompute time and incrementally thereafter.
    pot: Vec<f64>,
    /// Scratch: arcs (child node, cell) from the row endpoint up to the LCA.
    up_row: Vec<(u32, u32)>,
    /// Scratch: arcs from the column endpoint up to the LCA.
    up_col: Vec<(u32, u32)>,
    /// Scratch: DFS stack for subtree relabeling.
    stack: Vec<u32>,
}

/// Reusable adjacency scratch for [`BasisTree::rebuild`] — the batch
/// arena owns one so repeated cold rebuilds allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct BuildScratch {
    adj_head: Vec<u32>,
    adj_next: Vec<u32>,
    adj_node: Vec<u32>,
    adj_cell: Vec<u32>,
    visited: Vec<bool>,
}

impl BasisTree {
    /// An empty tree holding only (reusable) allocations; callers must
    /// [`rebuild`](Self::rebuild) it before use.
    pub(crate) fn new_empty() -> Self {
        BasisTree {
            n: 0,
            m: 0,
            parent: Vec::new(),
            parent_cell: Vec::new(),
            depth: Vec::new(),
            first_child: Vec::new(),
            next_sibling: Vec::new(),
            prev_sibling: Vec::new(),
            pot: Vec::new(),
            up_row: Vec::new(),
            up_col: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Builds the tree from `n + m − 1` basic cell ids, rooting at row 0
    /// with `u_0 = 0`. Returns `None` if the cells do not span all nodes
    /// (a logic error upstream, not bad input).
    pub(crate) fn build(n: usize, m: usize, cells: &[u32], cost: &[f64]) -> Option<Self> {
        let mut tree = BasisTree::new_empty();
        let mut scratch = BuildScratch::default();
        tree.rebuild(n, m, cells, cost, &mut scratch)
            .then_some(tree)
    }

    /// Rebuilds the tree in place from basic cell ids, reusing every
    /// allocation (the arena path of [`Self::build`]; identical BFS, so
    /// the resulting tree — potentials included — is bit-identical).
    /// Returns `false` if the cells do not span all nodes.
    pub(crate) fn rebuild(
        &mut self,
        n: usize,
        m: usize,
        cells: &[u32],
        cost: &[f64],
        scratch: &mut BuildScratch,
    ) -> bool {
        let nodes = n + m;
        self.n = n;
        self.m = m;
        reset_to(&mut self.parent, nodes, NONE);
        reset_to(&mut self.parent_cell, nodes, NONE);
        reset_to(&mut self.depth, nodes, 0);
        reset_to(&mut self.first_child, nodes, NONE);
        reset_to(&mut self.next_sibling, nodes, NONE);
        reset_to(&mut self.prev_sibling, nodes, NONE);
        reset_to(&mut self.pot, nodes, 0.0);
        self.up_row.clear();
        self.up_col.clear();
        self.stack.clear();
        // Adjacency for the initial BFS; pivots never rebuild it.
        reset_to(&mut scratch.adj_head, nodes, NONE);
        reset_to(&mut scratch.adj_next, 2 * cells.len(), NONE);
        reset_to(&mut scratch.adj_node, 2 * cells.len(), 0u32);
        reset_to(&mut scratch.adj_cell, 2 * cells.len(), 0u32);
        for (k, &cell) in cells.iter().enumerate() {
            let i = cell as usize / m;
            let j = cell as usize % m;
            for (slot, (from, to)) in [(2 * k, (i, n + j)), (2 * k + 1, (n + j, i))] {
                scratch.adj_node[slot] = to as u32;
                scratch.adj_cell[slot] = cell;
                scratch.adj_next[slot] = scratch.adj_head[from];
                scratch.adj_head[from] = slot as u32;
            }
        }
        reset_to(&mut scratch.visited, nodes, false);
        scratch.visited[0] = true;
        self.stack.push(0);
        let mut seen = 1usize;
        while let Some(node) = self.stack.pop() {
            let mut slot = scratch.adj_head[node as usize];
            while slot != NONE {
                let next = scratch.adj_node[slot as usize];
                let cell = scratch.adj_cell[slot as usize];
                if !scratch.visited[next as usize] {
                    scratch.visited[next as usize] = true;
                    seen += 1;
                    self.parent[next as usize] = node;
                    self.parent_cell[next as usize] = cell;
                    self.depth[next as usize] = self.depth[node as usize] + 1;
                    // u_i + v_j = c_ij holds in both propagation directions.
                    self.pot[next as usize] = cost[cell as usize] - self.pot[node as usize];
                    self.attach(next, node);
                    self.stack.push(next);
                }
                slot = scratch.adj_next[slot as usize];
            }
        }
        seen == nodes
    }

    /// Recomputes the (unique) basic flows this tree implies for *new*
    /// marginals — the warm-start repair step: every non-root node's
    /// parent arc must carry exactly the node's subtree imbalance, found
    /// by leaf elimination in reverse preorder. All non-tree cells of
    /// `flow` are zeroed.
    ///
    /// Returns `false` when the basis is primal-infeasible for the new
    /// marginals (some arc needs flow below `−tol`); flows in `[−tol, 0)`
    /// are degenerate rounding residue and clamp to zero. The flow buffer
    /// is always fully written — on `false` it holds the true (partly
    /// negative) implied flows, exactly what [`Self::dual_repair`] needs
    /// to restore feasibility without a cold restart.
    pub(crate) fn flows_from_marginals(
        &mut self,
        supply: &[f64],
        demand: &[f64],
        flow: &mut [f64],
        balance: &mut Vec<f64>,
        order: &mut Vec<u32>,
        tol: f64,
    ) -> bool {
        balance.clear();
        balance.extend_from_slice(supply);
        balance.extend_from_slice(demand);
        order.clear();
        self.stack.clear();
        self.stack.push(0);
        while let Some(u) = self.stack.pop() {
            order.push(u);
            let mut child = self.first_child[u as usize];
            while child != NONE {
                self.stack.push(child);
                child = self.next_sibling[child as usize];
            }
        }
        flow.fill(0.0);
        // Reverse preorder visits every child before its parent, so each
        // node's balance is already net of its subtree when reached. The
        // root's residual balance is pure rounding (the instance is
        // balanced) and needs no arc.
        let mut feasible = true;
        for &u in order.iter().rev() {
            if u == 0 {
                continue;
            }
            let b = balance[u as usize];
            if b < -tol {
                feasible = false;
                flow[self.parent_cell[u as usize] as usize] = b;
            } else {
                flow[self.parent_cell[u as usize] as usize] = b.max(0.0);
            }
            balance[self.parent[u as usize] as usize] -= b;
        }
        feasible
    }

    /// The reduced cost `c_ij − u_i − v_j` of cell `(i, j)`.
    #[cfg(test)]
    pub(crate) fn reduced_cost(&self, cost: &[f64], cell: usize) -> f64 {
        let i = cell / self.m;
        let j = cell - i * self.m;
        cost[cell] - self.pot[i] - self.pot[self.n + j]
    }

    /// Block / candidate-list pricing: scans cells cyclically from
    /// `*cursor` in chunks of `block`, returning the most negative reduced
    /// cost (below `−tol`) found in the first chunk that contains one.
    /// Basic cells have reduced cost 0 by construction, so no membership
    /// test is needed. Returns `None` after a full fruitless sweep.
    pub(crate) fn find_entering(
        &self,
        cost: &[f64],
        tol: f64,
        cursor: &mut usize,
        block: usize,
    ) -> Option<usize> {
        let total = self.n * self.m;
        let mut i = *cursor / self.m;
        let mut j = *cursor - i * self.m;
        let mut ui = self.pot[i];
        let mut best_cell = usize::MAX;
        let mut best_rc = -tol;
        let mut scanned = 0usize;
        while scanned < total {
            let chunk = block.min(total - scanned);
            for _ in 0..chunk {
                let cell = i * self.m + j;
                let rc = cost[cell] - ui - self.pot[self.n + j];
                if rc < best_rc {
                    best_rc = rc;
                    best_cell = cell;
                }
                j += 1;
                if j == self.m {
                    j = 0;
                    i += 1;
                    if i == self.n {
                        i = 0;
                    }
                    ui = self.pot[i];
                }
            }
            scanned += chunk;
            if best_cell != usize::MAX {
                break;
            }
        }
        *cursor = i * self.m + j;
        (best_cell != usize::MAX).then_some(best_cell)
    }

    /// Re-derives all potentials from the tree by DFS from the root,
    /// clearing any drift accumulated by incremental subtree shifts.
    pub(crate) fn recompute_potentials(&mut self, cost: &[f64]) {
        self.pot[0] = 0.0;
        self.stack.clear();
        self.stack.push(0);
        while let Some(node) = self.stack.pop() {
            let mut child = self.first_child[node as usize];
            while child != NONE {
                self.pot[child as usize] =
                    cost[self.parent_cell[child as usize] as usize] - self.pot[node as usize];
                self.stack.push(child);
                child = self.next_sibling[child as usize];
            }
        }
    }

    /// One simplex pivot on the entering cell (`ei`, `ej`): pushes θ around
    /// the tree cycle, drops the blocking arc with the smallest flow
    /// (Bland-style tie-break: ties go to the largest cell id, so
    /// degenerate zero-flow ties resolve deterministically instead of
    /// cycling), grafts the severed subtree onto the entering arc, and
    /// shifts the subtree potentials by the entering reduced cost.
    ///
    /// A spanning-tree cycle always contains a blocking arc, so the only
    /// way the ratio test can come up empty is corrupt state (typically
    /// NaN flow defeating every comparison); that case surfaces as
    /// [`EmdError::BrokenPivot`] instead of a panic so one bad instance
    /// cannot take down sibling work sharing a thread pool.
    pub(crate) fn pivot(
        &mut self,
        ei: usize,
        ej: usize,
        cost: &[f64],
        flow: &mut [f64],
    ) -> Result<(), EmdError> {
        let n = self.n;
        let m = self.m;
        let row_end = ei as u32;
        let col_end = (n + ej) as u32;
        let entering = (ei * m + ej) as u32;
        let rc = cost[entering as usize] - self.pot[ei] - self.pot[n + ej];

        self.collect_cycle(row_end, col_end);

        // Walking the cycle in the direction column-endpoint → LCA →
        // row-endpoint, an arc carries −θ when the cycle traverses it
        // column→row. On the column side (walked with the cycle) that means
        // the recorded child is a column node; on the row side (walked
        // against the cycle) it means the child is a row node.
        let mut theta = f64::INFINITY;
        let mut leaving: Option<(u32, u32, bool)> = None; // (child, cell, on row side)
        for &(child, cell) in &self.up_row {
            if (child as usize) < n {
                let f = flow[cell as usize];
                if f < theta || (f == theta && leaving.is_some_and(|(_, lc, _)| cell > lc)) {
                    theta = f;
                    leaving = Some((child, cell, true));
                }
            }
        }
        for &(child, cell) in &self.up_col {
            if (child as usize) >= n {
                let f = flow[cell as usize];
                if f < theta || (f == theta && leaving.is_some_and(|(_, lc, _)| cell > lc)) {
                    theta = f;
                    leaving = Some((child, cell, false));
                }
            }
        }
        let (cut, leaving_cell, on_row_side) = leaving.ok_or(EmdError::BrokenPivot {
            entering: entering as usize,
        })?;

        // Pricing has no basic-cell membership test (basic arcs price to 0
        // by construction), but incremental dual updates drift: a basic
        // arc can price fractionally negative and be handed in as
        // "entering". Its tree path degenerates to the arc itself, so it
        // selects itself as leaving — pushing θ would then zero the arc's
        // real flow and silently destroy mass. Skip the flow update (the
        // relabel below still shifts the subtree by `rc`, repairing the
        // drifted duals so the arc prices back to 0).
        if leaving_cell != entering {
            // Push θ around the cycle.
            flow[entering as usize] += theta;
            for &(child, cell) in &self.up_row {
                if (child as usize) < n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            for &(child, cell) in &self.up_col {
                if (child as usize) >= n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            flow[leaving_cell as usize] = 0.0; // clamp rounding residue
        }

        // Basis exchange: the subtree under `cut` is severed; it contains
        // whichever entering endpoint the leaving arc was found above.
        let (in_node, out_node) = if on_row_side {
            (row_end, col_end)
        } else {
            (col_end, row_end)
        };
        self.exchange(cut, in_node, out_node, entering, rc);
        Ok(())
    }

    /// Fills `up_row` / `up_col` with the (child, arc cell) pairs of the
    /// tree paths from the two entering endpoints up to their LCA — the
    /// pivot cycle of the entering cell.
    fn collect_cycle(&mut self, row_end: u32, col_end: u32) {
        self.up_row.clear();
        self.up_col.clear();
        let (mut x, mut y) = (row_end, col_end);
        while self.depth[x as usize] > self.depth[y as usize] {
            self.up_row.push((x, self.parent_cell[x as usize]));
            x = self.parent[x as usize];
        }
        while self.depth[y as usize] > self.depth[x as usize] {
            self.up_col.push((y, self.parent_cell[y as usize]));
            y = self.parent[y as usize];
        }
        while x != y {
            self.up_row.push((x, self.parent_cell[x as usize]));
            x = self.parent[x as usize];
            self.up_col.push((y, self.parent_cell[y as usize]));
            y = self.parent[y as usize];
        }
    }

    /// Basis exchange after a pivot: re-roots the subtree severed at `cut`
    /// onto the entering arc and relabels it. `in_node` is the entering
    /// endpoint inside the severed subtree, `out_node` the one that stays.
    /// Depths are recomputed from the new attachment and potentials shift
    /// by a constant (`+rc` on `in_node`'s node kind, `−rc` on the other),
    /// which keeps every intra-subtree arc satisfying `u_i + v_j = c_ij`
    /// and makes the entering arc basic.
    fn exchange(&mut self, cut: u32, in_node: u32, out_node: u32, entering: u32, rc: f64) {
        let n = self.n;
        // Re-root the severed subtree at `in_node` by reversing the parent
        // chain up to `cut`, then graft it onto `out_node` via the
        // entering arc.
        let mut node = in_node;
        let mut new_parent = out_node;
        let mut new_cell = entering;
        loop {
            let old_parent = self.parent[node as usize];
            let old_cell = self.parent_cell[node as usize];
            let at_cut = node == cut;
            self.detach(node);
            self.parent[node as usize] = new_parent;
            self.parent_cell[node as usize] = new_cell;
            self.attach(node, new_parent);
            if at_cut {
                break;
            }
            new_parent = node;
            new_cell = old_cell;
            node = old_parent;
        }

        let (d_row, d_col) = if (in_node as usize) < n {
            (rc, -rc)
        } else {
            (-rc, rc)
        };
        self.depth[in_node as usize] = self.depth[out_node as usize] + 1;
        self.stack.clear();
        self.stack.push(in_node);
        while let Some(u) = self.stack.pop() {
            self.pot[u as usize] += if (u as usize) < n { d_row } else { d_col };
            let mut child = self.first_child[u as usize];
            while child != NONE {
                self.depth[child as usize] = self.depth[u as usize] + 1;
                self.stack.push(child);
                child = self.next_sibling[child as usize];
            }
        }
    }

    /// Dual network-simplex repair of a primal-infeasible basis — the
    /// warm-start workhorse. After [`Self::flows_from_marginals`] maps a
    /// new demand vector onto the inherited optimal basis, some basic arcs
    /// may carry negative flow; but because the ground costs are
    /// unchanged, the basis is still **dual feasible** (every reduced cost
    /// ≥ 0 up to drift). Each iteration picks the most negative arc as the
    /// leaving arc, severs its subtree `S`, and scans the cells crossing
    /// the cut in the opposite orientation for the minimum-reduced-cost
    /// entering arc (the dual ratio test, which preserves dual
    /// feasibility). The entering cycle crosses the cut exactly once —
    /// through the leaving arc, with a `+θ` coefficient by the orientation
    /// choice — so pushing `θ = −flow[leaving]` zeroes the deficit
    /// exactly. Ties break to the smallest cell id; all scans are
    /// fixed-order, so repair is deterministic.
    ///
    /// Returns `false` (caller must fall back to a cold solve) if no
    /// crossing candidate exists or the pivot budget is exhausted —
    /// possible under heavy degeneracy, never an error.
    pub(crate) fn dual_repair(
        &mut self,
        cost: &[f64],
        flow: &mut [f64],
        in_subtree: &mut Vec<bool>,
        tol: f64,
    ) -> bool {
        let n = self.n;
        let m = self.m;
        let nodes = n + m;
        let max_pivots = 4 * nodes + 32;
        for _ in 0..max_pivots {
            // Most negative basic arc (ties → smaller cell id).
            let mut worst = NONE;
            let mut worst_flow = -tol;
            for u in 1..nodes as u32 {
                let cell = self.parent_cell[u as usize];
                let f = flow[cell as usize];
                if f < worst_flow
                    || (f == worst_flow && worst != NONE && cell < self.parent_cell[worst as usize])
                {
                    worst_flow = f;
                    worst = u;
                }
            }
            if worst == NONE {
                // Feasible: clamp degenerate rounding residue in
                // `[−tol, 0)` on basic arcs to exact zero.
                for u in 1..nodes as u32 {
                    let cell = self.parent_cell[u as usize] as usize;
                    if flow[cell] < 0.0 {
                        flow[cell] = 0.0;
                    }
                }
                return true;
            }
            let leaving_cell = self.parent_cell[worst as usize];

            // Mark the severed subtree S under the leaving arc's child.
            reset_to(in_subtree, nodes, false);
            self.stack.clear();
            self.stack.push(worst);
            while let Some(u) = self.stack.pop() {
                in_subtree[u as usize] = true;
                let mut child = self.first_child[u as usize];
                while child != NONE {
                    self.stack.push(child);
                    child = self.next_sibling[child as usize];
                }
            }

            // The leaving arc's child-side endpoint kind fixes the needed
            // crossing orientation: a row child means the arc ships out of
            // S and its deficit needs mass shipped *into* S (row ∉ S,
            // col ∈ S); a column child is the mirror image.
            let want_row_in = (worst as usize) >= n;
            let mut best = usize::MAX;
            let mut best_rc = f64::INFINITY;
            for r in 0..n {
                if in_subtree[r] != want_row_in {
                    continue;
                }
                let ur = self.pot[r];
                let base = r * m;
                for (c, sub) in in_subtree[n..].iter().enumerate() {
                    if *sub == want_row_in {
                        continue;
                    }
                    let cell = base + c;
                    let rc = cost[cell] - ur - self.pot[n + c];
                    if rc < best_rc || (rc == best_rc && cell < best) {
                        best_rc = rc;
                        best = cell;
                    }
                }
            }
            if best == usize::MAX {
                return false;
            }
            let er = best / m;
            let ec = best - er * m;
            let row_end = er as u32;
            let col_end = (n + ec) as u32;

            // Push θ = −flow[leaving] around the entering cycle. The sign
            // convention matches `pivot`: walking the cycle
            // column-endpoint → LCA → row-endpoint, an arc carries −θ when
            // traversed column→row. The leaving arc lies on the path from
            // the in-S endpoint to the (out-of-S) LCA and its recorded
            // child is `worst`, which by the orientation choice lands it
            // on the +θ side — so its flow rises to exactly zero.
            self.collect_cycle(row_end, col_end);
            let theta = -flow[leaving_cell as usize];
            flow[best] += theta;
            for k in 0..self.up_row.len() {
                let (child, cell) = self.up_row[k];
                if (child as usize) < n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            for k in 0..self.up_col.len() {
                let (child, cell) = self.up_col[k];
                if (child as usize) >= n {
                    flow[cell as usize] -= theta;
                } else {
                    flow[cell as usize] += theta;
                }
            }
            flow[leaving_cell as usize] = 0.0; // exact by construction

            let in_node = if in_subtree[er] { row_end } else { col_end };
            let out_node = if in_node == row_end { col_end } else { row_end };
            self.exchange(worst, in_node, out_node, best as u32, best_rc);
        }
        false
    }

    /// Links `node` at the head of `parent`'s children list.
    #[inline]
    fn attach(&mut self, node: u32, parent: u32) {
        let head = self.first_child[parent as usize];
        self.next_sibling[node as usize] = head;
        self.prev_sibling[node as usize] = NONE;
        if head != NONE {
            self.prev_sibling[head as usize] = node;
        }
        self.first_child[parent as usize] = node;
    }

    /// Unlinks `node` from its current parent's children list.
    #[inline]
    fn detach(&mut self, node: u32) {
        let prev = self.prev_sibling[node as usize];
        let next = self.next_sibling[node as usize];
        if prev != NONE {
            self.next_sibling[prev as usize] = next;
        } else {
            let parent = self.parent[node as usize];
            if parent != NONE {
                self.first_child[parent as usize] = next;
            }
        }
        if next != NONE {
            self.prev_sibling[next as usize] = prev;
        }
    }
}

/// Clears and refills a vector with `len` copies of `value` — allocation
/// reuse for the arena paths.
fn reset_to<T: Copy>(v: &mut Vec<T>, len: usize, value: T) {
    v.clear();
    v.resize(len, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Staircase basis for a 2×2 problem: cells (0,0), (0,1), (1,1).
    fn staircase_2x2() -> (BasisTree, Vec<f64>) {
        let cost = vec![1.0, 4.0, 2.0, 3.0];
        let tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        (tree, cost)
    }

    #[test]
    fn build_sets_consistent_potentials() {
        let (tree, cost) = staircase_2x2();
        // u_0 = 0 at the root; basic arcs must satisfy u_i + v_j = c_ij.
        for &cell in &[0usize, 1, 3] {
            assert!(
                tree.reduced_cost(&cost, cell).abs() < 1e-12,
                "basic cell {cell} has nonzero reduced cost"
            );
        }
    }

    #[test]
    fn build_rejects_non_spanning_basis() {
        // Two parallel arcs on the same column leave row 1 disconnected.
        let cost = vec![0.0; 4];
        assert!(BasisTree::build(2, 2, &[0, 0, 0], &cost).is_none());
    }

    #[test]
    fn pricing_finds_the_negative_cell() {
        let (tree, cost) = staircase_2x2();
        // Cell (1,0) has reduced cost c_10 − u_1 − v_0 = 2 − (−1) − 1 = 2;
        // no entering cell exists for this cost matrix.
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cost, 1e-12, &mut cursor, 2), None);
        // Drop c_10 so it prices negative.
        let mut cheap = cost.clone();
        cheap[2] = -5.0;
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cheap, 1e-12, &mut cursor, 2), Some(2));
    }

    #[test]
    fn pivot_updates_flow_and_potentials() {
        // Anti-diagonal costs make the NW staircase flow (which ships on
        // the expensive diagonal) suboptimal; entering (1,0) reroutes it.
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![1.0, 1.0, 0.0, 1.0];
        assert!(tree.reduced_cost(&cost, 2) < 0.0);
        tree.pivot(1, 0, &cost, &mut flow).unwrap();
        assert_eq!(flow, vec![0.0, 2.0, 1.0, 0.0]);
        // All basic arcs (now (0,0), (0,1), (1,0)) price to zero again and
        // no cell prices negative: the pivot reached the optimum.
        let mut cursor = 0;
        assert_eq!(tree.find_entering(&cost, 1e-12, &mut cursor, 4), None);
        for cell in [0usize, 1, 2] {
            assert!(tree.reduced_cost(&cost, cell).abs() < 1e-12);
        }
    }

    #[test]
    fn pivot_on_a_basic_arc_repairs_duals_without_moving_flow() {
        // Regression: if dual drift makes a basic arc price negative,
        // find_entering can return it. The degenerate single-arc "cycle"
        // must not zero the arc's flow — only the duals may move.
        let (mut tree, cost) = staircase_2x2();
        let flow_before = vec![1.0, 1.0, 0.0, 1.0];
        let mut flow = flow_before.clone();
        // Inject drift on the subtree under column 1 so basic cell (0,1)
        // prices negative, then hand it in as "entering".
        tree.pot[3] += 1e-9;
        assert!(tree.reduced_cost(&cost, 1) < 0.0);
        tree.pivot(0, 1, &cost, &mut flow).unwrap();
        assert_eq!(flow, flow_before, "flow must survive a dual repair");
        assert!(
            tree.reduced_cost(&cost, 1).abs() < 1e-12,
            "drifted arc must price back to zero"
        );
    }

    #[test]
    fn pivot_with_nan_flow_reports_broken_pivot() {
        // NaN flow defeats every comparison in the ratio test, so no
        // blocking arc is ever selected — the one state that can break the
        // cycle invariant must surface as an error, not a panic.
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![f64::NAN; 4];
        assert!(matches!(
            tree.pivot(1, 0, &cost, &mut flow),
            Err(EmdError::BrokenPivot { entering: 2 })
        ));
    }

    #[test]
    fn recompute_matches_incremental_potentials() {
        let cost = vec![5.0, 0.0, 0.0, 5.0];
        let mut tree = BasisTree::build(2, 2, &[0, 1, 3], &cost).unwrap();
        let mut flow = vec![1.0, 1.0, 0.0, 1.0];
        tree.pivot(1, 0, &cost, &mut flow).unwrap();
        let incremental = tree.pot.clone();
        tree.recompute_potentials(&cost);
        for (a, b) in incremental.iter().zip(&tree.pot) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
