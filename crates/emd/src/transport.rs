use crate::{EmdError, Result};

/// The balanced transportation problem, solved exactly with the
/// transportation simplex (north-west-corner initial basis + MODI / u-v
/// pivoting).
///
/// This is the workhorse behind the paper's statistical-distortion metric:
/// given bin masses of the dirty distribution (supplies), bin masses of the
/// cleaned distribution (demands) and cross-bin ground distances (costs),
/// the optimal flow `F*` yields
/// `EMD(P, Q) = Σ f*_ij |b_i − b_j| / Σ f*_ij`.
#[derive(Debug, Clone)]
pub struct TransportProblem {
    n: usize,
    m: usize,
    supply: Vec<f64>,
    demand: Vec<f64>,
    cost: Vec<f64>,
    flow: Vec<f64>,
    solved: bool,
}

/// Relative tolerance for the supply/demand balance check.
const BALANCE_TOL: f64 = 1e-6;
/// A reduced cost must be more negative than `-tol` to trigger a pivot.
const PIVOT_TOL: f64 = 1e-12;

impl TransportProblem {
    /// Creates a balanced transportation problem.
    ///
    /// `cost` is row-major `n × m`. Supplies and demands must be
    /// non-negative, with totals agreeing to within a relative `1e-6`;
    /// demands are then rescaled so the totals match exactly.
    pub fn new(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> Result<Self> {
        let n = supply.len();
        let m = demand.len();
        if n == 0 || m == 0 {
            return Err(EmdError::EmptyInput);
        }
        if cost.len() != n * m {
            return Err(EmdError::CostShape {
                expected: (n, m),
                got: (cost.len() / m.max(1), m),
            });
        }
        for &w in supply.iter().chain(demand.iter()) {
            if !w.is_finite() || w < 0.0 {
                return Err(EmdError::InvalidWeight { value: w });
            }
        }
        for &c in &cost {
            if !c.is_finite() {
                return Err(EmdError::InvalidWeight { value: c });
            }
        }
        let ts: f64 = supply.iter().sum();
        let td: f64 = demand.iter().sum();
        if ts <= 0.0 || td <= 0.0 {
            return Err(EmdError::EmptyInput);
        }
        if ((ts - td) / ts.max(td)).abs() > BALANCE_TOL {
            return Err(EmdError::Unbalanced {
                supply: ts,
                demand: td,
            });
        }
        // Rescale demand so the problem balances exactly.
        let scale = ts / td;
        let demand = demand.into_iter().map(|d| d * scale).collect();
        Ok(TransportProblem {
            n,
            m,
            supply,
            demand,
            cost,
            flow: vec![0.0; n * m],
            solved: false,
        })
    }

    /// Number of supply nodes.
    pub fn num_supplies(&self) -> usize {
        self.n
    }

    /// Number of demand nodes.
    pub fn num_demands(&self) -> usize {
        self.m
    }

    /// The optimal flow matrix (row-major `n × m`); zeros before `solve`.
    pub fn flow(&self) -> &[f64] {
        &self.flow
    }

    /// Total transported mass (= total supply).
    pub fn total_mass(&self) -> f64 {
        self.supply.iter().sum()
    }

    /// Objective value `Σ f_ij c_ij` of the current flow.
    pub fn objective(&self) -> f64 {
        self.flow.iter().zip(&self.cost).map(|(f, c)| f * c).sum()
    }

    /// Solves the problem and returns the normalized EMD
    /// (`objective / total mass`).
    pub fn solve(&mut self) -> Result<f64> {
        let (mut basis, in_basis) = self.northwest_corner();
        let mut in_basis = in_basis;

        // Pivot until no negative reduced cost remains.
        let max_iters = 2000 + 200 * (self.n + self.m);
        let cost_scale = self
            .cost
            .iter()
            .fold(0.0f64, |acc, &c| acc.max(c.abs()))
            .max(1.0);
        let tol = PIVOT_TOL * cost_scale + PIVOT_TOL;

        for _ in 0..max_iters {
            let (u, v) = self.compute_duals(&basis)?;
            // Entering cell: most negative reduced cost.
            let mut best = (-tol, usize::MAX, usize::MAX);
            for i in 0..self.n {
                let ui = u[i];
                let row = i * self.m;
                for j in 0..self.m {
                    if in_basis[row + j] {
                        continue;
                    }
                    let rc = self.cost[row + j] - ui - v[j];
                    if rc < best.0 {
                        best = (rc, i, j);
                    }
                }
            }
            if best.1 == usize::MAX {
                self.solved = true;
                return Ok(self.objective() / self.total_mass());
            }
            let (ei, ej) = (best.1, best.2);
            self.pivot(ei, ej, &mut basis, &mut in_basis)?;
        }
        Err(EmdError::NoConvergence {
            iterations: max_iters,
        })
    }

    /// Whether `solve` has completed successfully.
    pub fn is_solved(&self) -> bool {
        self.solved
    }

    /// North-west-corner initial basic feasible solution with exactly
    /// `n + m − 1` basic cells (degenerate zero-flow cells included).
    fn northwest_corner(&mut self) -> (Vec<(usize, usize)>, Vec<bool>) {
        let mut s = self.supply.clone();
        let mut d = self.demand.clone();
        let mut basis = Vec::with_capacity(self.n + self.m - 1);
        let mut in_basis = vec![false; self.n * self.m];
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let q = s[i].min(d[j]);
            self.flow[i * self.m + j] = q;
            basis.push((i, j));
            in_basis[i * self.m + j] = true;
            s[i] -= q;
            d[j] -= q;
            if basis.len() == self.n + self.m - 1 {
                break;
            }
            // Advance along the exhausted side; on ties prefer the row so a
            // degenerate zero-flow basic cell keeps the basis a tree.
            if s[i] <= d[j] && i + 1 < self.n {
                i += 1;
            } else {
                j += 1;
            }
        }
        (basis, in_basis)
    }

    /// Solves `u_i + v_j = c_ij` over the basis tree (with `u_0 = 0`).
    fn compute_duals(&self, basis: &[(usize, usize)]) -> Result<(Vec<f64>, Vec<f64>)> {
        let n = self.n;
        let m = self.m;
        // Node ids: rows 0..n, cols n..n+m.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n + m];
        for (idx, &(i, j)) in basis.iter().enumerate() {
            adj[i].push((n + j, idx));
            adj[n + j].push((i, idx));
        }
        let mut u = vec![f64::NAN; n];
        let mut v = vec![f64::NAN; m];
        u[0] = 0.0;
        let mut stack = vec![0usize];
        let mut visited = vec![false; n + m];
        visited[0] = true;
        while let Some(node) = stack.pop() {
            for &(next, bidx) in &adj[node] {
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                let (i, j) = basis[bidx];
                if next >= n {
                    // next is a column: v_j = c_ij − u_i.
                    v[next - n] = self.cost[i * m + j] - u[i];
                } else {
                    // next is a row: u_i = c_ij − v_j.
                    u[next] = self.cost[i * m + j] - v[j];
                }
                stack.push(next);
            }
        }
        if visited.iter().any(|&x| !x) {
            // The basis failed to span all nodes — indicates a logic error
            // upstream rather than bad input.
            return Err(EmdError::NoConvergence { iterations: 0 });
        }
        Ok((u, v))
    }

    /// One simplex pivot: brings `(ei, ej)` into the basis, pushes θ around
    /// the unique tree cycle, and drops a leaving cell.
    fn pivot(
        &mut self,
        ei: usize,
        ej: usize,
        basis: &mut [(usize, usize)],
        in_basis: &mut [bool],
    ) -> Result<()> {
        let n = self.n;
        let m = self.m;
        // Find the tree path from row `ei` to column `ej`.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n + m];
        for (idx, &(i, j)) in basis.iter().enumerate() {
            adj[i].push((n + j, idx));
            adj[n + j].push((i, idx));
        }
        let target = n + ej;
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n + m]; // (prev node, basis idx)
        let mut visited = vec![false; n + m];
        visited[ei] = true;
        let mut queue = std::collections::VecDeque::from([ei]);
        while let Some(node) = queue.pop_front() {
            if node == target {
                break;
            }
            for &(next, bidx) in &adj[node] {
                if !visited[next] {
                    visited[next] = true;
                    parent[next] = Some((node, bidx));
                    queue.push_back(next);
                }
            }
        }
        if !visited[target] {
            return Err(EmdError::NoConvergence { iterations: 0 });
        }
        // Reconstruct the path of basis-cell indices from `target` back to `ei`.
        let mut path = Vec::new();
        let mut node = target;
        while node != ei {
            let (prev, bidx) = parent[node].expect("path reconstruction broke");
            path.push(bidx);
            node = prev;
        }
        // Walking the cycle starting at the entering cell (+), the basis
        // cells adjacent to column `ej` first: signs alternate −, +, −, …
        // `path[0]` is incident to `ej`, so even positions in `path` are −.
        let mut theta = f64::INFINITY;
        let mut leaving: Option<usize> = None;
        for (pos, &bidx) in path.iter().enumerate() {
            if pos % 2 == 0 {
                let (i, j) = basis[bidx];
                let f = self.flow[i * m + j];
                if f < theta {
                    theta = f;
                    leaving = Some(bidx);
                }
            }
        }
        let leaving = leaving.ok_or(EmdError::NoConvergence { iterations: 0 })?;

        // Apply θ around the cycle.
        self.flow[ei * m + ej] += theta;
        for (pos, &bidx) in path.iter().enumerate() {
            let (i, j) = basis[bidx];
            if pos % 2 == 0 {
                self.flow[i * m + j] -= theta;
            } else {
                self.flow[i * m + j] += theta;
            }
        }
        // Swap leaving for entering.
        let (li, lj) = basis[leaving];
        self.flow[li * m + lj] = 0.0; // clamp rounding residue
        in_basis[li * m + lj] = false;
        basis[leaving] = (ei, ej);
        in_basis[ei * m + ej] = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> f64 {
        TransportProblem::new(supply, demand, cost)
            .unwrap()
            .solve()
            .unwrap()
    }

    #[test]
    fn trivial_single_cell() {
        let d = solve(vec![1.0], vec![1.0], vec![3.0]);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_balanced_problem() {
        // Classic 3x3 instance; optimal objective 1390 over total mass 55
        // (supplies 20/25/10... use a verified small instance instead).
        // Supplies [2, 3], demands [2, 3], costs chosen so the optimum is
        // the diagonal assignment.
        let d = solve(vec![2.0, 3.0], vec![2.0, 3.0], vec![0.0, 10.0, 10.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn forced_cross_shipping() {
        // All supply on the left, demand split: cost = weighted distances.
        // Supply at x=0 (mass 1); demands at x=1 (0.4) and x=3 (0.6).
        let d = solve(vec![1.0], vec![0.4, 0.6], vec![1.0, 3.0]);
        assert!((d - (0.4 * 1.0 + 0.6 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn matches_1d_closed_form_on_line_instances() {
        // Points on a line; compare against the ECDF closed form.
        let a_pts = [0.0f64, 1.0, 2.0, 5.0];
        let a_w = [0.25f64, 0.25, 0.25, 0.25];
        let b_pts = [0.5f64, 2.5, 4.0];
        let b_w = [0.5f64, 0.25, 0.25];
        let mut cost = Vec::new();
        for &x in &a_pts {
            for &y in &b_pts {
                cost.push((x - y).abs());
            }
        }
        let d_simplex = solve(a_w.to_vec(), b_w.to_vec(), cost);
        let d_exact = crate::emd_1d_weighted(&a_pts, &a_w, &b_pts, &b_w).unwrap();
        assert!(
            (d_simplex - d_exact).abs() < 1e-10,
            "{d_simplex} vs {d_exact}"
        );
    }

    #[test]
    fn degenerate_supplies_handled() {
        // Ties in NW corner produce degenerate basic cells.
        let d = solve(vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 1.0, 1.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn zero_weight_bins_are_tolerated() {
        let d = solve(vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 5.0, 2.0, 5.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            TransportProblem::new(vec![], vec![1.0], vec![]),
            Err(EmdError::EmptyInput)
        ));
        assert!(matches!(
            TransportProblem::new(vec![1.0], vec![1.0], vec![1.0, 2.0]),
            Err(EmdError::CostShape { .. })
        ));
        assert!(matches!(
            TransportProblem::new(vec![1.0], vec![2.0], vec![0.0]),
            Err(EmdError::Unbalanced { .. })
        ));
        assert!(matches!(
            TransportProblem::new(vec![-1.0], vec![-1.0], vec![0.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
        assert!(TransportProblem::new(vec![1.0], vec![1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn small_imbalance_is_rescaled() {
        let p = TransportProblem::new(vec![1.0], vec![1.0 + 1e-9], vec![1.0]);
        assert!(p.is_ok());
    }

    #[test]
    fn flow_conserves_mass() {
        let mut p = TransportProblem::new(vec![0.3, 0.7], vec![0.5, 0.5], vec![1.0, 2.0, 3.0, 0.5])
            .unwrap();
        p.solve().unwrap();
        let flow = p.flow();
        // Row sums equal supplies; column sums equal demands.
        assert!((flow[0] + flow[1] - 0.3).abs() < 1e-12);
        assert!((flow[2] + flow[3] - 0.7).abs() < 1e-12);
        assert!((flow[0] + flow[2] - 0.5).abs() < 1e-12);
        assert!((flow[1] + flow[3] - 0.5).abs() < 1e-12);
        assert!(p.is_solved());
    }
}
