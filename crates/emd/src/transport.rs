use crate::basis_tree::BasisTree;
use crate::{EmdError, Result};

/// The balanced transportation problem, solved exactly with the
/// transportation simplex (north-west-corner initial basis + tree-based
/// MODI / u-v pivoting).
///
/// This is the workhorse behind the paper's statistical-distortion metric:
/// given bin masses of the dirty distribution (supplies), bin masses of the
/// cleaned distribution (demands) and cross-bin ground distances (costs),
/// the optimal flow `F*` yields
/// `EMD(P, Q) = Σ f*_ij |b_i − b_j| / Σ f*_ij`.
///
/// The basis is kept as a persistent spanning tree (`BasisTree`, a
/// crate-private module): duals update
/// incrementally on the subtree cut by each leaving arc, entering cells are
/// found with block pricing, and pivots reuse flat scratch buffers, so a
/// pivot costs O(cycle + cut subtree) instead of the O(n·m) per-pivot
/// rebuild of the textbook tableau method.
#[derive(Debug, Clone)]
pub struct TransportProblem {
    n: usize,
    m: usize,
    supply: Vec<f64>,
    demand: Vec<f64>,
    cost: Vec<f64>,
    flow: Vec<f64>,
    solved: bool,
}

/// Relative tolerance for the supply/demand balance check.
const BALANCE_TOL: f64 = 1e-6;
/// A reduced cost must be more negative than `-tol` to trigger a pivot.
const PIVOT_TOL: f64 = 1e-12;
/// Incremental duals are re-derived from scratch every this many pivots to
/// clear accumulated floating-point drift.
const RECOMPUTE_EVERY: usize = 1024;

/// Validates a balanced transportation instance (shape, weight, cost and
/// balance checks shared by [`TransportProblem::new`] and the batch
/// arena), returning the factor demands must be rescaled by so the totals
/// match exactly.
pub(crate) fn validate_balanced(supply: &[f64], demand: &[f64], cost: &[f64]) -> Result<f64> {
    let n = supply.len();
    let m = demand.len();
    if n == 0 || m == 0 {
        return Err(EmdError::EmptyInput);
    }
    if cost.len() != n * m {
        return Err(EmdError::CostShape {
            expected: (n, m),
            got: (cost.len() / m.max(1), m),
        });
    }
    for &w in supply.iter().chain(demand.iter()) {
        if !w.is_finite() || w < 0.0 {
            return Err(EmdError::InvalidWeight { value: w });
        }
    }
    for &c in cost {
        if !c.is_finite() {
            return Err(EmdError::InvalidWeight { value: c });
        }
    }
    let ts: f64 = supply.iter().sum();
    let td: f64 = demand.iter().sum();
    if ts <= 0.0 || td <= 0.0 {
        return Err(EmdError::EmptyInput);
    }
    if ((ts - td) / ts.max(td)).abs() > BALANCE_TOL {
        return Err(EmdError::Unbalanced {
            supply: ts,
            demand: td,
        });
    }
    Ok(ts / td)
}

/// North-west-corner initial basic feasible solution with exactly
/// `n + m − 1` basic cells (degenerate zero-flow cells included), written
/// into `flow` (which must already be zeroed). `s` / `d` are reusable
/// working copies of the marginals; `basis` receives the basic cell ids.
///
/// Any floating-point residue left after the staircase walk (supplies and
/// demands only balance up to rounding) is clamped into the final basic
/// cell so the initial flow meets the row/column marginals to machine
/// precision.
#[allow(clippy::too_many_arguments)] // flat scratch-buffer signature is the point
pub(crate) fn northwest_corner_into(
    n: usize,
    m: usize,
    supply: &[f64],
    demand: &[f64],
    s: &mut Vec<f64>,
    d: &mut Vec<f64>,
    flow: &mut [f64],
    basis: &mut Vec<u32>,
) {
    s.clear();
    s.extend_from_slice(supply);
    d.clear();
    d.extend_from_slice(demand);
    basis.clear();
    basis.reserve(n + m - 1);
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let q = s[i].min(d[j]).max(0.0);
        flow[i * m + j] = q;
        basis.push((i * m + j) as u32);
        s[i] -= q;
        d[j] -= q;
        if basis.len() == n + m - 1 {
            // Clamp rounding residue into the final basic cell.
            let residue = s[i].max(d[j]);
            if residue > 0.0 {
                flow[i * m + j] += residue;
            }
            break;
        }
        // Advance along the exhausted side; on ties prefer the row so a
        // degenerate zero-flow basic cell keeps the basis a tree.
        if s[i] <= d[j] && i + 1 < n {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Runs the MODI pivot loop to optimality on a built basis tree and its
/// matching basic flow — the shared core of [`TransportProblem::solve`]
/// and the batch arena's cold and warm paths (identical constants,
/// pricing, and pivot order, so the cold batch path is bit-identical to
/// a standalone solve).
pub(crate) fn run_simplex(
    n: usize,
    m: usize,
    cost: &[f64],
    tree: &mut BasisTree,
    flow: &mut [f64],
) -> Result<()> {
    let cells = n * m;
    // Block pricing: candidate blocks of ~√(n·m) cells keep each pricing
    // step cheap while still finding a "good" entering cell.
    let block = 64.max((cells as f64).sqrt() as usize);
    let max_pivots = 2000 + 20 * cells;
    let cost_scale = cost
        .iter()
        .fold(0.0f64, |acc, &c| acc.max(c.abs()))
        .max(1.0);
    let tol = PIVOT_TOL * cost_scale + PIVOT_TOL;

    let mut cursor = 0usize;
    for pivots in 0..max_pivots {
        let entering = match tree.find_entering(cost, tol, &mut cursor, block) {
            Some(cell) => Some(cell),
            None => {
                // Confirm optimality against drift-free duals before
                // declaring victory.
                tree.recompute_potentials(cost);
                tree.find_entering(cost, tol, &mut cursor, block)
            }
        };
        let Some(cell) = entering else {
            return Ok(());
        };
        tree.pivot(cell / m, cell % m, cost, flow)?;
        if (pivots + 1) % RECOMPUTE_EVERY == 0 {
            tree.recompute_potentials(cost);
        }
    }
    Err(EmdError::NoConvergence {
        iterations: max_pivots,
    })
}

impl TransportProblem {
    /// Creates a balanced transportation problem.
    ///
    /// `cost` is row-major `n × m`. Supplies and demands must be
    /// non-negative, with totals agreeing to within a relative `1e-6`;
    /// demands are then rescaled so the totals match exactly.
    pub fn new(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> Result<Self> {
        // Rescale demand so the problem balances exactly.
        let scale = validate_balanced(&supply, &demand, &cost)?;
        let n = supply.len();
        let m = demand.len();
        let demand = demand.into_iter().map(|d| d * scale).collect();
        Ok(TransportProblem {
            n,
            m,
            supply,
            demand,
            cost,
            flow: vec![0.0; n * m],
            solved: false,
        })
    }

    /// Number of supply nodes.
    pub fn num_supplies(&self) -> usize {
        self.n
    }

    /// Number of demand nodes.
    pub fn num_demands(&self) -> usize {
        self.m
    }

    /// The flow matrix (row-major `n × m`).
    ///
    /// Before [`solve`](Self::solve) has run this is all zeros — it is the
    /// *optimal* flow only once [`is_solved`](Self::is_solved) returns
    /// `true`.
    pub fn flow(&self) -> &[f64] {
        &self.flow
    }

    /// Total transported mass (= total supply).
    pub fn total_mass(&self) -> f64 {
        self.supply.iter().sum()
    }

    /// Objective value `Σ f_ij c_ij` of the current flow.
    ///
    /// Before [`solve`](Self::solve) has run the flow is all zeros, so this
    /// returns `0.0`; it is the *optimal* transport cost only once
    /// [`is_solved`](Self::is_solved) returns `true`.
    pub fn objective(&self) -> f64 {
        self.flow.iter().zip(&self.cost).map(|(f, c)| f * c).sum()
    }

    /// Solves the problem and returns the normalized EMD
    /// (`objective / total mass`).
    pub fn solve(&mut self) -> Result<f64> {
        self.solved = false;
        self.flow.fill(0.0);
        let basis_cells = self.northwest_corner();
        let mut tree = BasisTree::build(self.n, self.m, &basis_cells, &self.cost)
            .ok_or(EmdError::NoConvergence { iterations: 0 })?;
        run_simplex(self.n, self.m, &self.cost, &mut tree, &mut self.flow)?;
        self.solved = true;
        Ok(self.objective() / self.total_mass())
    }

    /// Whether `solve` has completed successfully.
    pub fn is_solved(&self) -> bool {
        self.solved
    }

    /// North-west-corner initial basic feasible solution (see
    /// [`northwest_corner_into`]), written into `self.flow`. Returns the
    /// basic cell ids.
    fn northwest_corner(&mut self) -> Vec<u32> {
        let mut s = Vec::new();
        let mut d = Vec::new();
        let mut basis = Vec::new();
        northwest_corner_into(
            self.n,
            self.m,
            &self.supply,
            &self.demand,
            &mut s,
            &mut d,
            &mut self.flow,
            &mut basis,
        );
        basis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(supply: Vec<f64>, demand: Vec<f64>, cost: Vec<f64>) -> f64 {
        TransportProblem::new(supply, demand, cost)
            .unwrap()
            .solve()
            .unwrap()
    }

    #[test]
    fn trivial_single_cell() {
        let d = solve(vec![1.0], vec![1.0], vec![3.0]);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_balanced_problem() {
        // Supplies [2, 3], demands [2, 3], costs chosen so the optimum is
        // the diagonal assignment.
        let d = solve(vec![2.0, 3.0], vec![2.0, 3.0], vec![0.0, 10.0, 10.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn forced_cross_shipping() {
        // All supply on the left, demand split: cost = weighted distances.
        // Supply at x=0 (mass 1); demands at x=1 (0.4) and x=3 (0.6).
        let d = solve(vec![1.0], vec![0.4, 0.6], vec![1.0, 3.0]);
        assert!((d - (0.4 * 1.0 + 0.6 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn matches_1d_closed_form_on_line_instances() {
        // Points on a line; compare against the ECDF closed form.
        let a_pts = [0.0f64, 1.0, 2.0, 5.0];
        let a_w = [0.25f64, 0.25, 0.25, 0.25];
        let b_pts = [0.5f64, 2.5, 4.0];
        let b_w = [0.5f64, 0.25, 0.25];
        let mut cost = Vec::new();
        for &x in &a_pts {
            for &y in &b_pts {
                cost.push((x - y).abs());
            }
        }
        let d_simplex = solve(a_w.to_vec(), b_w.to_vec(), cost);
        let d_exact = crate::emd_1d_weighted(&a_pts, &a_w, &b_pts, &b_w).unwrap();
        assert!(
            (d_simplex - d_exact).abs() < 1e-10,
            "{d_simplex} vs {d_exact}"
        );
    }

    #[test]
    fn degenerate_supplies_handled() {
        // Ties in NW corner produce degenerate basic cells.
        let d = solve(vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 1.0, 1.0, 0.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn highly_degenerate_instance_terminates() {
        // Uniform marginals with permutation-structured costs: every NW
        // staircase tie produces a zero-flow basic cell, so most pivots
        // are degenerate (θ = 0). The Bland-style leaving tie-break
        // (ties → largest cell id) must still terminate at the optimum
        // instead of cycling through zero-flow bases.
        let k = 8usize;
        let uniform = vec![1.0 / k as f64; k];
        let mut cost = vec![1.0; k * k];
        for i in 0..k {
            // Optimal assignment: each supply i ships to column (i+3) % k.
            cost[i * k + (i + 3) % k] = 0.0;
        }
        let mut p = TransportProblem::new(uniform.clone(), uniform, cost).unwrap();
        let d = p.solve().unwrap();
        assert!(d.abs() < 1e-12, "expected free optimum, got {d}");
        // Marginals must survive the degenerate pivot sequence.
        for i in 0..k {
            let row: f64 = p.flow()[i * k..(i + 1) * k].iter().sum();
            assert!((row - 1.0 / k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_weight_bins_are_tolerated() {
        let d = solve(vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 5.0, 2.0, 5.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            TransportProblem::new(vec![], vec![1.0], vec![]),
            Err(EmdError::EmptyInput)
        ));
        assert!(matches!(
            TransportProblem::new(vec![1.0], vec![1.0], vec![1.0, 2.0]),
            Err(EmdError::CostShape { .. })
        ));
        assert!(matches!(
            TransportProblem::new(vec![1.0], vec![2.0], vec![0.0]),
            Err(EmdError::Unbalanced { .. })
        ));
        assert!(matches!(
            TransportProblem::new(vec![-1.0], vec![-1.0], vec![0.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
        assert!(TransportProblem::new(vec![1.0], vec![1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn small_imbalance_is_rescaled() {
        let p = TransportProblem::new(vec![1.0], vec![1.0 + 1e-9], vec![1.0]);
        assert!(p.is_ok());
    }

    #[test]
    fn flow_and_objective_are_zero_before_solve() {
        let p = TransportProblem::new(vec![0.5, 0.5], vec![0.5, 0.5], vec![1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert!(!p.is_solved());
        assert_eq!(p.objective(), 0.0);
        assert!(p.flow().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn solve_is_repeatable() {
        // A second solve() must not be polluted by the first one's flow.
        let mut p = TransportProblem::new(vec![0.3, 0.7], vec![0.5, 0.5], vec![1.0, 2.0, 3.0, 0.5])
            .unwrap();
        let first = p.solve().unwrap();
        let second = p.solve().unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn flow_conserves_mass() {
        let mut p = TransportProblem::new(vec![0.3, 0.7], vec![0.5, 0.5], vec![1.0, 2.0, 3.0, 0.5])
            .unwrap();
        p.solve().unwrap();
        let flow = p.flow();
        // Row sums equal supplies; column sums equal demands.
        assert!((flow[0] + flow[1] - 0.3).abs() < 1e-12);
        assert!((flow[2] + flow[3] - 0.7).abs() < 1e-12);
        assert!((flow[0] + flow[2] - 0.5).abs() < 1e-12);
        assert!((flow[1] + flow[3] - 0.5).abs() < 1e-12);
        assert!(p.is_solved());
    }

    #[test]
    fn matches_min_cost_flow_on_random_corpus() {
        // Cross-validate the tree-based simplex against the structurally
        // independent successive-shortest-paths solver (see `MinCostFlow`)
        // on a corpus of random balanced instances, including rectangular
        // shapes. The bipartite-specialized flow solver is fast enough
        // that the full corpus runs on every `cargo test`.
        let trials: u64 = 12;
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..trials {
            let n = 3 + (trial * 5) % 28;
            let m = 2 + (trial * 7) % 31;
            let mut supply: Vec<f64> = (0..n).map(|_| 0.01 + next()).collect();
            let mut demand: Vec<f64> = (0..m).map(|_| 0.01 + next()).collect();
            let st: f64 = supply.iter().sum();
            let dt: f64 = demand.iter().sum();
            supply.iter_mut().for_each(|x| *x /= st);
            demand.iter_mut().for_each(|x| *x /= dt);
            let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
            let via_simplex = solve(supply.clone(), demand.clone(), cost.clone());
            let via_flow = crate::MinCostFlow::new(supply, demand, cost)
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (via_simplex - via_flow).abs() < 1e-9,
                "trial {trial} ({n}x{m}): simplex {via_simplex} vs flow {via_flow}"
            );
        }
    }
}
