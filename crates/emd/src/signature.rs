use crate::{EmdError, Result};

/// A discrete distribution: weighted points in `R^d`.
///
/// This is the "signature" representation from the EMD literature — the
/// occupied cells of a histogram with their masses. Produced by
/// [`sd_stats::GridHistogram::signature`] and consumed by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
    total: f64,
}

impl Signature {
    /// Creates a signature. Requires at least one point, equal-length
    /// point/weight vectors, consistent dimensions, and non-negative finite
    /// weights with positive total mass.
    pub fn new(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Result<Self> {
        if points.is_empty() || points.len() != weights.len() {
            return Err(EmdError::EmptyInput);
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(EmdError::EmptyInput);
        }
        for p in &points {
            if p.len() != dim {
                return Err(EmdError::DimensionMismatch {
                    expected: dim,
                    got: p.len(),
                });
            }
            if p.iter().any(|x| !x.is_finite()) {
                return Err(EmdError::InvalidWeight { value: f64::NAN });
            }
        }
        let mut total = 0.0;
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(EmdError::InvalidWeight { value: w });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(EmdError::InvalidWeight { value: total });
        }
        Ok(Signature {
            points,
            weights,
            total,
        })
    }

    /// Builds a signature from `(point, weight)` pairs, e.g. the output of
    /// [`sd_stats::GridHistogram::signature`].
    pub fn from_pairs(pairs: Vec<(Vec<f64>, f64)>) -> Result<Self> {
        let (points, weights) = pairs.into_iter().unzip();
        Signature::new(points, weights)
    }

    /// Number of weighted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the signature holds no points (never true for a constructed
    /// signature; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the points.
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// The points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Weights rescaled to sum to exactly 1.
    pub fn normalized_weights(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w / self.total).collect()
    }
}

/// Euclidean distance between two points of equal dimension.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Dense ground-distance matrix `c[i][j] = ‖p_i − q_j‖₂` between two point
/// sets, flattened row-major (`i * m + j`).
pub fn ground_distance_matrix(p: &[Vec<f64>], q: &[Vec<f64>]) -> Vec<f64> {
    let mut cost = Vec::with_capacity(p.len() * q.len());
    for pi in p {
        for qj in q {
            cost.push(euclidean(pi, qj));
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_signature() {
        let s = Signature::new(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![1.0, 3.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.total(), 4.0);
        let nw = s.normalized_weights();
        assert!((nw[0] - 0.25).abs() < 1e-15);
        assert!((nw[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            Signature::new(vec![], vec![]),
            Err(EmdError::EmptyInput)
        ));
        assert!(Signature::new(vec![vec![1.0]], vec![]).is_err());
        assert!(matches!(
            Signature::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.5, 0.5]),
            Err(EmdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(matches!(
            Signature::new(vec![vec![1.0]], vec![-1.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
        assert!(Signature::new(vec![vec![1.0]], vec![f64::NAN]).is_err());
        assert!(Signature::new(vec![vec![1.0]], vec![0.0]).is_err()); // zero total
        assert!(Signature::new(vec![vec![f64::NAN]], vec![1.0]).is_err());
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = Signature::from_pairs(vec![(vec![1.0], 0.5), (vec![2.0], 0.5)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], vec![2.0]);
    }

    #[test]
    fn euclidean_distances() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ground_matrix_layout() {
        let p = vec![vec![0.0], vec![1.0]];
        let q = vec![vec![0.0], vec![2.0], vec![4.0]];
        let c = ground_distance_matrix(&p, &q);
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], 0.0); // p0-q0
        assert_eq!(c[2], 4.0); // p0-q2
        assert_eq!(c[3], 1.0); // p1-q0
    }
}
