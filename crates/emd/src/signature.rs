use crate::batch::BatchTransport;
use crate::{EmdError, Result};
use parking_lot::Mutex;
use sd_stats::{sorted_union_columns, GridHistogram, GridSpec};
use std::sync::{Arc, OnceLock};

/// A discrete distribution: weighted points in `R^d`.
///
/// This is the "signature" representation from the EMD literature — the
/// occupied cells of a histogram with their masses. Produced by
/// [`sd_stats::GridHistogram::signature`] and consumed by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
    total: f64,
}

impl Signature {
    /// Creates a signature. Requires at least one point, equal-length
    /// point/weight vectors, consistent dimensions, and non-negative finite
    /// weights with positive total mass.
    pub fn new(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Result<Self> {
        if points.is_empty() || points.len() != weights.len() {
            return Err(EmdError::EmptyInput);
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(EmdError::EmptyInput);
        }
        for p in &points {
            if p.len() != dim {
                return Err(EmdError::DimensionMismatch {
                    expected: dim,
                    got: p.len(),
                });
            }
            if p.iter().any(|x| !x.is_finite()) {
                return Err(EmdError::InvalidWeight { value: f64::NAN });
            }
        }
        let mut total = 0.0;
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(EmdError::InvalidWeight { value: w });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(EmdError::InvalidWeight { value: total });
        }
        Ok(Signature {
            points,
            weights,
            total,
        })
    }

    /// Builds a signature from `(point, weight)` pairs, e.g. the output of
    /// [`sd_stats::GridHistogram::signature`].
    pub fn from_pairs(pairs: Vec<(Vec<f64>, f64)>) -> Result<Self> {
        let (points, weights) = pairs.into_iter().unzip();
        Signature::new(points, weights)
    }

    /// Number of weighted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the signature holds no points (never true for a constructed
    /// signature; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the points.
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// The points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Weights rescaled to sum to exactly 1.
    pub fn normalized_weights(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w / self.total).collect()
    }
}

/// A signature whose point coordinates were divided per-axis before
/// construction, built from `(cell centre, probability)` pairs — e.g. a
/// [`CloudQuant`]'s pairs. Shared by every [`crate::GridEmd`] path and by
/// external distortion kernels that score quantized clouds on other
/// distances (energy distance, KL) while reusing this crate's caches.
pub fn scaled_signature(pairs: Vec<(Vec<f64>, f64)>, scale: &[f64]) -> Result<Signature> {
    let scaled: Vec<(Vec<f64>, f64)> = pairs
        .into_iter()
        .map(|(mut point, w)| {
            for (x, s) in point.iter_mut().zip(scale) {
                *x /= s;
            }
            (point, w)
        })
        .collect();
    Signature::from_pairs(scaled)
}

/// Grids at most this many cells use the dense flat-array histogram.
/// 2^16 × 8 bytes = 512 KiB per histogram — cheap next to the allocation
/// and hashing traffic of the sparse map on the hot path.
const DENSE_MAX_CELLS: usize = 1 << 16;

/// Flat cell count of a grid when it fits the dense budget.
fn dense_len(spec: &GridSpec) -> Option<usize> {
    let mut n: usize = 1;
    for ax in spec.axes() {
        n = n.checked_mul(ax.bins)?;
        if n > DENSE_MAX_CELLS {
            return None;
        }
    }
    Some(n)
}

/// Flat (row-major, axis 0 most significant) cell index of a point —
/// ascending flat order is exactly the lexicographic cell order the sparse
/// histogram sorts its signature by. `None` when any coordinate is NaN.
fn flat_cell_of(spec: &GridSpec, point: &[f64]) -> Option<usize> {
    assert_eq!(point.len(), spec.dim(), "point dimension mismatch");
    let mut idx = 0usize;
    for (ax, &x) in spec.axes().iter().zip(point) {
        idx = idx * ax.bins + ax.bin_of(x)?;
    }
    Some(idx)
}

/// One cloud quantized onto a grid: signature pairs plus histogram
/// diagnostics, and — on the dense path — the raw per-cell counts, which
/// the patched-cloud pipeline edits incrementally.
///
/// Dense and sparse paths are interchangeable bit for bit: per-cell masses
/// are exact integer counts (sums of 1.0), the pair order is ascending
/// cell order in both (flat row-major index ⇔ lexicographic cell vector),
/// and centres come from the same [`GridSpec::center_of`].
///
/// Public so distortion kernels outside this crate (KL, energy distance)
/// can score the same cached quantizations the EMD pipeline uses.
#[derive(Debug, Clone)]
pub struct CloudQuant {
    /// Dense per-cell counts (flat row-major, ascending flat index ⇔
    /// lexicographic cell order), when the grid fits the dense budget.
    pub counts: Option<Vec<f64>>,
    /// Total binned mass.
    pub total: f64,
    /// Rows skipped for a missing coordinate.
    pub skipped: usize,
    /// Occupied cells.
    pub occupied: usize,
    /// `(cell centre, probability)` in ascending cell order.
    pub pairs: Vec<(Vec<f64>, f64)>,
}

/// Quantizes a cloud onto a grid, taking the dense flat-array path when
/// the grid fits the dense budget (bit-identical to the sparse
/// [`GridHistogram`] path; see [`CloudQuant`]).
pub fn quantize(spec: &GridSpec, rows: &[Vec<f64>]) -> CloudQuant {
    match dense_len(spec) {
        Some(len) => {
            // Two-phase chunked binning: first bin a block of rows into a
            // small index buffer (independent iterations the compiler can
            // pipeline — no loop-carried dependence on `counts`), then
            // scatter the increments. Row order is preserved, so totals
            // accumulate in the same order as the naive per-row loop and
            // the result is bit-identical.
            const CHUNK: usize = 64;
            const MISSING: usize = usize::MAX;
            let mut counts = vec![0.0f64; len];
            let mut total = 0.0;
            let mut skipped = 0usize;
            let mut cells = [MISSING; CHUNK];
            for block in rows.chunks(CHUNK) {
                for (slot, row) in cells.iter_mut().zip(block) {
                    *slot = flat_cell_of(spec, row).unwrap_or(MISSING);
                }
                for &cell in &cells[..block.len()] {
                    if cell == MISSING {
                        skipped += 1;
                    } else {
                        counts[cell] += 1.0;
                        total += 1.0;
                    }
                }
            }
            dense_quant(spec, counts, total, skipped)
        }
        None => {
            let hist = GridHistogram::from_points(spec.clone(), rows);
            CloudQuant {
                counts: None,
                total: hist.total(),
                skipped: hist.skipped(),
                occupied: hist.occupied(),
                pairs: hist.signature(),
            }
        }
    }
}

/// Finishes a dense quantization: occupied count + signature pairs in
/// ascending flat (= lexicographic) cell order.
fn dense_quant(spec: &GridSpec, counts: Vec<f64>, total: f64, skipped: usize) -> CloudQuant {
    let mut pairs = Vec::new();
    let mut occupied = 0usize;
    if total > 0.0 {
        let dims: Vec<usize> = spec.axes().iter().map(|ax| ax.bins).collect();
        let mut cell = vec![0u32; dims.len()];
        for (i, &mass) in counts.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            occupied += 1;
            let mut rem = i;
            for (k, &bins) in dims.iter().enumerate().rev() {
                cell[k] = (rem % bins) as u32;
                rem /= bins;
            }
            pairs.push((spec.center_of(&cell), mass / total));
        }
    }
    CloudQuant {
        counts: Some(counts),
        total,
        skipped,
        occupied,
        pairs,
    }
}

/// One memoized quantization of the cached cloud: its scaled signature and
/// histogram diagnostics for a particular `(grid, scale)`.
#[derive(Debug)]
pub struct CachedSide {
    spec: GridSpec,
    scale: Vec<f64>,
    /// The full quantization, including dense counts when the grid fits
    /// the dense budget (the patched-cloud pipeline — and any external
    /// kernel calling [`PatchedCloud::quantize_on`] — edits a copy of
    /// them).
    pub quant: CloudQuant,
    /// The scaled signature of the cached cloud on this grid.
    pub signature: Signature,
    /// Occupied cells of the cached cloud's histogram.
    pub occupied: usize,
    /// Rows skipped (missing coordinate) while histogramming.
    pub skipped: usize,
}

/// Quantization cache for one fixed point cloud that is compared against
/// many counterpart clouds — the dirty sample of a replication, whose EMD
/// signature the experiment engine reuses across all S strategy
/// evaluations.
///
/// Two layers are cached:
///
/// 1. the cloud's per-axis **sorted columns**, so the shared-support cover
///    rule merges pre-sorted columns instead of re-sorting the union for
///    every comparison;
/// 2. the cloud's **histogram + scaled signature per distinct grid**, so
///    comparisons that land on the same grid (e.g. a no-op strategy, or
///    repeated scoring) skip quantization entirely.
///
/// All methods take `&self`; the memo is internally synchronized, so one
/// cache can be shared across worker threads via `Arc`. Results are
/// bit-identical to the uncached pipeline regardless of hit/miss order:
/// every memoized value is a pure function of `(cloud, grid, scale)`.
#[derive(Debug)]
pub struct SignatureCache {
    rows: Vec<Vec<f64>>,
    sorted_columns: Vec<Vec<f64>>,
    memo: Mutex<Vec<Arc<CachedSide>>>,
    /// Pool of batch-transport arenas for callers that chain many exact
    /// solves against this cache (see [`SignatureCache::with_transport`]).
    transports: Mutex<Vec<BatchTransport>>,
}

impl SignatureCache {
    /// Builds a cache around a point cloud, sorting its per-axis columns
    /// once. Empty clouds are accepted (comparisons then cover only the
    /// counterpart cloud, matching the uncached pipeline).
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        let sorted_columns = sorted_union_columns(&rows, &[]).unwrap_or_default();
        SignatureCache {
            rows,
            sorted_columns,
            memo: Mutex::new(Vec::new()),
            transports: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a [`BatchTransport`] arena checked out of this
    /// cache's pool (created on first use, recycled afterwards — the
    /// engine's strategy/candidate loops reuse one allocation set per
    /// concurrent caller). The arena's warm chain is reset at checkout,
    /// so the outcome depends only on the solves `f` itself performs:
    /// pool checkout order across threads cannot leak state between
    /// callers, keeping engine results deterministic.
    pub fn with_transport<R>(&self, f: impl FnOnce(&mut BatchTransport) -> R) -> R {
        let mut arena = self.transports.lock().pop().unwrap_or_default();
        arena.reset_chain();
        let out = f(&mut arena);
        self.transports.lock().push(arena);
        out
    }

    /// The cached cloud.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of memoized `(grid, scale)` quantizations.
    pub fn memoized(&self) -> usize {
        self.memo.lock().len()
    }

    /// The cached cloud's per-axis sorted columns (one half of the
    /// cover-rule input; the other half comes from the counterpart cloud).
    /// Sorted by [`f64::total_cmp`], NaN-free — exactly
    /// [`sd_stats::sorted_union_columns`] of the cloud alone, so external
    /// kernels comparing sorted marginals (KS, Cramér–von Mises) read the
    /// same columns the EMD cover rule consumes.
    pub fn sorted_columns(&self) -> &[Vec<f64>] {
        &self.sorted_columns
    }

    /// Per-axis sorted columns of a counterpart cloud, dimensioned against
    /// the (non-empty) cached cloud.
    pub(crate) fn counterpart_columns(&self, b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let dim = self.sorted_columns.len();
        let mut out = Vec::with_capacity(dim);
        for k in 0..dim {
            let mut col_b = Vec::with_capacity(b.len());
            for row in b {
                assert_eq!(row.len(), dim, "ragged point cloud");
                let x = row[k];
                if !x.is_nan() {
                    col_b.push(x);
                }
            }
            col_b.sort_by(f64::total_cmp);
            out.push(col_b);
        }
        out
    }

    /// The cached cloud's quantization for `(spec, scale)`, built on first
    /// use and memoized. Errors with [`EmdError::EmptyInput`] when the
    /// cloud contributes no density on the grid (no complete rows).
    pub fn side_for(&self, spec: &GridSpec, scale: &[f64]) -> Result<Arc<CachedSide>> {
        {
            let memo = self.memo.lock();
            if let Some(entry) = memo.iter().find(|e| e.spec == *spec && e.scale == scale) {
                return Ok(Arc::clone(entry));
            }
        }
        // Build outside the lock: quantization is deterministic, so a
        // concurrent duplicate build yields identical bits and either copy
        // may be memoized.
        let quant = quantize(spec, &self.rows);
        if quant.total == 0.0 {
            return Err(EmdError::EmptyInput);
        }
        let signature = scaled_signature(quant.pairs.clone(), scale)?;
        let entry = Arc::new(CachedSide {
            spec: spec.clone(),
            scale: scale.to_vec(),
            occupied: quant.occupied,
            skipped: quant.skipped,
            quant,
            signature,
        });
        let mut memo = self.memo.lock();
        if let Some(existing) = memo.iter().find(|e| e.spec == *spec && e.scale == scale) {
            return Ok(Arc::clone(existing));
        }
        memo.push(Arc::clone(&entry));
        Ok(entry)
    }
}

/// A counterpart cloud expressed as sparse row edits against a
/// [`SignatureCache`]'s cloud: row `index` is replaced wholesale by a new
/// row, all other rows are shared.
///
/// This is how the experiment engine hands a *cleaned* sample to the EMD
/// pipeline: the cleaned cloud is the dirty cloud with a few percent of
/// rows rewritten, so its sorted columns are derived from the cached
/// sorted columns in `O(N + k log k)` (remove old values, merge new ones)
/// and — on dense grids — its histogram is the cached histogram with `k`
/// rows re-binned, instead of re-sorting and re-binning all `N` rows per
/// comparison. All derivations are exact: per-cell masses are integer
/// counts and multiset edits under [`f64::total_cmp`] are bit-precise, so
/// [`crate::GridEmd::distance_patched`] equals the unpatched pipeline on
/// the materialized cloud bit for bit.
#[derive(Debug)]
pub struct PatchedCloud<'a> {
    cache: &'a SignatureCache,
    /// `(row index, replacement row)`, ascending and unique by row.
    edits: Vec<(usize, Vec<f64>)>,
    /// Derived sorted columns, memoized so every kernel scoring this
    /// patched cloud (EMD, KL, KS, …) shares one derivation.
    columns_memo: OnceLock<Vec<Vec<f64>>>,
}

impl<'a> PatchedCloud<'a> {
    /// Builds a patched cloud. Edits may arrive in any order but must name
    /// distinct, in-range rows of the cached cloud, with matching
    /// dimension.
    pub fn new(cache: &'a SignatureCache, mut edits: Vec<(usize, Vec<f64>)>) -> Self {
        let dim = cache.rows().first().map(|r| r.len());
        for (row, new_row) in &edits {
            assert!(*row < cache.rows().len(), "edit row out of range");
            assert_eq!(Some(new_row.len()), dim, "edit dimension mismatch");
        }
        edits.sort_by_key(|&(row, _)| row);
        assert!(
            edits.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate edit rows"
        );
        PatchedCloud {
            cache,
            edits,
            columns_memo: OnceLock::new(),
        }
    }

    /// The cache this patch applies to.
    pub fn cache(&self) -> &SignatureCache {
        self.cache
    }

    /// Number of replaced rows.
    pub fn num_edits(&self) -> usize {
        self.edits.len()
    }

    /// The row edits, ascending and unique by row index.
    pub fn edits(&self) -> &[(usize, Vec<f64>)] {
        &self.edits
    }

    /// The fully materialized counterpart cloud (base rows with edits
    /// substituted) — the fallback for pipelines that need real rows.
    pub fn materialize(&self) -> Vec<Vec<f64>> {
        let mut rows = self.cache.rows().to_vec();
        for (row, new_row) in &self.edits {
            rows[*row] = new_row.clone();
        }
        rows
    }

    /// Per-axis sorted columns of the patched cloud, derived from the
    /// cached sorted columns: remove each edited row's old value, merge in
    /// its new value. Multiset edits under [`f64::total_cmp`] are
    /// bit-precise, so the result equals sorting the materialized cloud
    /// from scratch. Derived once and memoized — every kernel scoring this
    /// patched cloud shares the same columns.
    pub fn sorted_columns(&self) -> &[Vec<f64>] {
        self.columns_memo.get_or_init(|| {
            let dim = self.cache.sorted_columns.len();
            let mut out = Vec::with_capacity(dim);
            let mut removed = Vec::new();
            let mut added = Vec::new();
            for (k, col) in self.cache.sorted_columns.iter().enumerate() {
                removed.clear();
                added.clear();
                for (row, new_row) in &self.edits {
                    let old = self.cache.rows()[*row][k];
                    if !old.is_nan() {
                        removed.push(old);
                    }
                    if !new_row[k].is_nan() {
                        added.push(new_row[k]);
                    }
                }
                removed.sort_by(f64::total_cmp);
                added.sort_by(f64::total_cmp);
                out.push(remove_then_merge(col, &removed, &added));
            }
            out
        })
    }

    /// The patched cloud's quantization on `spec`, derived incrementally
    /// from the cached side's dense counts when available (`base` is the
    /// cached cloud's own quantization on the same `spec`, i.e.
    /// [`CachedSide::quant`]); falls back to materializing on sparse
    /// grids. Bit-identical to [`quantize`] on the materialized cloud.
    pub fn quantize_on(&self, spec: &GridSpec, base: &CloudQuant) -> CloudQuant {
        match &base.counts {
            Some(counts) => {
                let mut counts = counts.clone();
                let mut total = base.total;
                let mut skipped = base.skipped;
                for (row, new_row) in &self.edits {
                    match flat_cell_of(spec, &self.cache.rows()[*row]) {
                        Some(i) => {
                            counts[i] -= 1.0;
                            total -= 1.0;
                        }
                        None => skipped -= 1,
                    }
                    match flat_cell_of(spec, new_row) {
                        Some(i) => {
                            counts[i] += 1.0;
                            total += 1.0;
                        }
                        None => skipped += 1,
                    }
                }
                dense_quant(spec, counts, total, skipped)
            }
            None => quantize(spec, &self.materialize()),
        }
    }
}

/// Removes one instance of each value in `remove` from the ascending
/// column `col`, then merges in the ascending `add` — the sorted multiset
/// `col − remove + add`. Every removed value must be present.
fn remove_then_merge(col: &[f64], remove: &[f64], add: &[f64]) -> Vec<f64> {
    let mut kept = Vec::with_capacity(col.len() - remove.len() + add.len());
    let mut r = 0;
    for &x in col {
        if r < remove.len() && x.total_cmp(&remove[r]).is_eq() {
            r += 1;
        } else {
            kept.push(x);
        }
    }
    debug_assert_eq!(r, remove.len(), "removed value missing from column");
    if add.is_empty() {
        return kept;
    }
    merge_sorted(&kept, add)
}

/// Merges two ascending (by [`f64::total_cmp`]) slices into one ascending
/// vector — the multiset union, identical to sorting the concatenation.
fn merge_sorted(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].total_cmp(&b[j]).is_le() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Euclidean distance between two points of equal dimension.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Dense ground-distance matrix `c[i][j] = ‖p_i − q_j‖₂` between two point
/// sets, flattened row-major (`i * m + j`).
///
/// The `q` coordinates are flattened into one contiguous buffer first, so
/// the hot inner loop strides sequentially through memory (independent
/// per-element distance sums the autovectorizer can unroll) instead of
/// chasing one `Vec` allocation per point. Each distance still sums its
/// squared differences in ascending axis order, exactly like
/// [`euclidean`], so the matrix is bit-identical to the nested-`Vec`
/// formulation.
pub fn ground_distance_matrix(p: &[Vec<f64>], q: &[Vec<f64>]) -> Vec<f64> {
    let m = q.len();
    let dim = q.first().map_or(0, |r| r.len());
    if m == 0 || p.is_empty() || dim == 0 {
        return vec![0.0; p.len() * m];
    }
    let mut qflat = Vec::with_capacity(m * dim);
    for qj in q {
        qflat.extend_from_slice(qj);
    }
    let mut cost = vec![0.0f64; p.len() * m];
    for (pi, row) in p.iter().zip(cost.chunks_mut(m)) {
        for (c, qj) in row.iter_mut().zip(qflat.chunks_exact(dim)) {
            let mut acc = 0.0;
            for (x, y) in pi.iter().zip(qj) {
                acc += (x - y) * (x - y);
            }
            *c = acc.sqrt();
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_signature() {
        let s = Signature::new(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![1.0, 3.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.total(), 4.0);
        let nw = s.normalized_weights();
        assert!((nw[0] - 0.25).abs() < 1e-15);
        assert!((nw[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            Signature::new(vec![], vec![]),
            Err(EmdError::EmptyInput)
        ));
        assert!(Signature::new(vec![vec![1.0]], vec![]).is_err());
        assert!(matches!(
            Signature::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.5, 0.5]),
            Err(EmdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(matches!(
            Signature::new(vec![vec![1.0]], vec![-1.0]),
            Err(EmdError::InvalidWeight { .. })
        ));
        assert!(Signature::new(vec![vec![1.0]], vec![f64::NAN]).is_err());
        assert!(Signature::new(vec![vec![1.0]], vec![0.0]).is_err()); // zero total
        assert!(Signature::new(vec![vec![f64::NAN]], vec![1.0]).is_err());
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = Signature::from_pairs(vec![(vec![1.0], 0.5), (vec![2.0], 0.5)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], vec![2.0]);
    }

    #[test]
    fn euclidean_distances() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ground_matrix_layout() {
        let p = vec![vec![0.0], vec![1.0]];
        let q = vec![vec![0.0], vec![2.0], vec![4.0]];
        let c = ground_distance_matrix(&p, &q);
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], 0.0); // p0-q0
        assert_eq!(c[2], 4.0); // p0-q2
        assert_eq!(c[3], 1.0); // p1-q0
    }
}
