use crate::{EmdError, Result};
use sd_stats::Histogram;

/// Exact 1-D EMD between two empirical samples (each with uniform weights).
///
/// For one-dimensional distributions the Earth Mover's Distance has the
/// closed form `∫ |F(x) − G(x)| dx` — the L1 distance between the ECDFs.
/// NaN values are skipped; returns [`EmdError::EmptyInput`] when either
/// sample has no present values.
pub fn emd_1d_samples(a: &[f64], b: &[f64]) -> Result<f64> {
    let xs: Vec<f64> = a.iter().copied().filter(|x| !x.is_nan()).collect();
    let ys: Vec<f64> = b.iter().copied().filter(|x| !x.is_nan()).collect();
    let wa = vec![1.0 / xs.len().max(1) as f64; xs.len()];
    let wb = vec![1.0 / ys.len().max(1) as f64; ys.len()];
    emd_1d_weighted(&xs, &wa, &ys, &wb)
}

/// Exact 1-D EMD between two weighted point sets.
///
/// Weights on each side are normalized to unit total mass. Implemented by
/// sweeping the merged sorted support and integrating `|F − G|`.
pub fn emd_1d_weighted(
    a_points: &[f64],
    a_weights: &[f64],
    b_points: &[f64],
    b_weights: &[f64],
) -> Result<f64> {
    if a_points.len() != a_weights.len() || b_points.len() != b_weights.len() {
        return Err(EmdError::CostShape {
            expected: (a_points.len(), b_points.len()),
            got: (a_weights.len(), b_weights.len()),
        });
    }
    if a_points.is_empty() || b_points.is_empty() {
        return Err(EmdError::EmptyInput);
    }
    let ta: f64 = a_weights.iter().sum();
    let tb: f64 = b_weights.iter().sum();
    if ta <= 0.0 || tb <= 0.0 || ta.is_nan() || tb.is_nan() {
        return Err(EmdError::InvalidWeight { value: ta.min(tb) });
    }
    for &w in a_weights.iter().chain(b_weights) {
        if !w.is_finite() || w < 0.0 {
            return Err(EmdError::InvalidWeight { value: w });
        }
    }

    // Merge the two supports as (x, dF, dG) events.
    let mut events: Vec<(f64, f64, f64)> = Vec::with_capacity(a_points.len() + b_points.len());
    for (&x, &w) in a_points.iter().zip(a_weights) {
        if x.is_nan() {
            return Err(EmdError::InvalidWeight { value: x });
        }
        events.push((x, w / ta, 0.0));
    }
    for (&x, &w) in b_points.iter().zip(b_weights) {
        if x.is_nan() {
            return Err(EmdError::InvalidWeight { value: x });
        }
        events.push((x, 0.0, w / tb));
    }
    events.sort_by(|p, q| p.0.total_cmp(&q.0));

    let mut emd = 0.0f64;
    let mut f = 0.0f64; // F(x) running CDF of A
    let mut g = 0.0f64; // G(x) running CDF of B
    let mut prev_x = events[0].0;
    for &(x, da, db) in &events {
        emd += (f - g).abs() * (x - prev_x);
        f += da;
        g += db;
        prev_x = x;
    }
    Ok(emd)
}

/// Exact 1-D EMD between two histograms sharing one binning spec.
///
/// The ground distance between bins is `|center_i − center_j|`; for shared
/// uniform bins this reduces to the cumulative-difference sum times the
/// bin width. This is the paper's cross-bin `EMD(P, Q)` restricted to one
/// dimension, and is *not* affected by which bin the mass falls in within
/// a bin (§3.5: EMD "is not affected by binning differences").
pub fn emd_1d_histograms(p: &Histogram, q: &Histogram) -> Result<f64> {
    if p.spec() != q.spec() {
        return Err(EmdError::CostShape {
            expected: (p.counts().len(), p.counts().len()),
            got: (p.counts().len(), q.counts().len()),
        });
    }
    if p.total() == 0.0 || q.total() == 0.0 {
        return Err(EmdError::EmptyInput);
    }
    let pp = p.probabilities();
    let qq = q.probabilities();
    let width = p.spec().width();
    let mut cum = 0.0;
    let mut emd = 0.0;
    for (a, b) in pp.iter().zip(&qq) {
        cum += a - b;
        emd += cum.abs() * width;
    }
    Ok(emd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_stats::HistogramSpec;

    #[test]
    fn identical_samples_zero() {
        let a = [1.0, 2.0, 3.0];
        assert!(emd_1d_samples(&a, &a).unwrap().abs() < 1e-15);
    }

    #[test]
    fn translation_by_delta() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
        assert!((emd_1d_samples(&a, &b).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unequal_sample_sizes() {
        // A = {0}, B = {0, 1}: move half the mass from 0 to 1 → EMD 0.5.
        let d = emd_1d_samples(&[0.0], &[0.0, 1.0]).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_values_are_skipped() {
        let a = [0.0, f64::NAN, 1.0];
        let b = [0.0, 1.0];
        assert!(emd_1d_samples(&a, &b).unwrap().abs() < 1e-12);
        assert!(matches!(
            emd_1d_samples(&[f64::NAN], &[1.0]),
            Err(EmdError::EmptyInput)
        ));
    }

    #[test]
    fn weighted_point_masses() {
        // 0.75 mass at 0, 0.25 at 4 vs all mass at 1:
        // optimal plan moves 0.75 a distance 1 and 0.25 a distance 3 → 1.5.
        let d = emd_1d_weighted(&[0.0, 4.0], &[0.75, 0.25], &[1.0], &[1.0]).unwrap();
        assert!((d - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weights_are_normalized() {
        let d1 = emd_1d_weighted(&[0.0, 1.0], &[1.0, 1.0], &[0.5], &[1.0]).unwrap();
        let d2 = emd_1d_weighted(&[0.0, 1.0], &[10.0, 10.0], &[0.5], &[7.0]).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [0.0, 0.3, 0.9, 2.0];
        let b = [0.1, 0.5, 0.5];
        let d1 = emd_1d_samples(&a, &b).unwrap();
        let d2 = emd_1d_samples(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn histogram_emd_matches_sample_emd_on_bin_centers() {
        let spec = HistogramSpec::new(0.0, 10.0, 10);
        // Samples placed exactly at bin centres so quantization is exact.
        let a = [0.5, 1.5, 2.5, 3.5];
        let b = [4.5, 5.5, 6.5, 7.5];
        let ha = Histogram::from_values(spec, &a);
        let hb = Histogram::from_values(spec, &b);
        let d_hist = emd_1d_histograms(&ha, &hb).unwrap();
        let d_samp = emd_1d_samples(&a, &b).unwrap();
        assert!((d_hist - d_samp).abs() < 1e-12, "{d_hist} vs {d_samp}");
    }

    #[test]
    fn histogram_emd_requires_shared_spec() {
        let h1 = Histogram::from_values(HistogramSpec::new(0.0, 1.0, 4), &[0.5]);
        let h2 = Histogram::from_values(HistogramSpec::new(0.0, 2.0, 4), &[0.5]);
        assert!(emd_1d_histograms(&h1, &h2).is_err());
    }

    #[test]
    fn empty_histogram_rejected() {
        let spec = HistogramSpec::new(0.0, 1.0, 2);
        let h1 = Histogram::from_values(spec, &[0.5]);
        let h0 = Histogram::empty(spec);
        assert!(matches!(
            emd_1d_histograms(&h1, &h0),
            Err(EmdError::EmptyInput)
        ));
    }

    #[test]
    fn mismatched_weight_lengths_rejected() {
        assert!(emd_1d_weighted(&[1.0], &[1.0, 2.0], &[1.0], &[1.0]).is_err());
        assert!(emd_1d_weighted(&[1.0], &[-1.0], &[1.0], &[1.0]).is_err());
    }
}
