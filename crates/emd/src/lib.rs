//! Earth Mover's Distance engine.
//!
//! The paper (§3.5) measures *statistical distortion* as the Earth Mover's
//! Distance between the empirical distributions of a dirty data set and its
//! cleaned counterpart: `EMD(P, Q) = Σ f*_ij |b_i − b_j| / Σ f*_ij` where
//! `F* = argmin_F W(F; P, Q)` is the minimum-cost flow of density between
//! bins. Rust's EMD ecosystem is thin, so this crate implements the whole
//! stack from scratch:
//!
//! * [`emd_1d_samples`] / [`emd_1d_histograms`] — closed-form exact 1-D EMD
//!   (the L1 distance between ECDFs);
//! * [`TransportProblem`] — the transportation simplex (north-west-corner
//!   start + MODI pivoting), the default exact solver for
//!   signature-vs-signature EMD;
//! * [`MinCostFlow`] — successive-shortest-paths with potentials; slower
//!   but structurally independent, used to cross-validate the simplex;
//! * [`sinkhorn`] — entropy-regularized approximation for large signatures;
//! * [`GridEmd`] — the end-to-end pipeline the framework calls: pool two
//!   clouds of `v`-tuples, quantize onto a shared grid
//!   ([`sd_stats::GridHistogram`]), and run an exact solver on the sparse
//!   signatures (the approach of the paper's reference \[1\]).
//!
//! ```
//! use sd_emd::emd_1d_samples;
//!
//! // Shifting a distribution by δ moves all mass a distance of δ.
//! let a = [0.0, 1.0, 2.0];
//! let b = [0.5, 1.5, 2.5];
//! assert!((emd_1d_samples(&a, &b).unwrap() - 0.5).abs() < 1e-12);
//! ```

// Index-based loops are the clearer idiom in the dense numeric kernels
// of this crate.
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod basis_tree;
mod batch;
mod emd1d;
mod error;
mod flow;
mod grid_emd;
mod signature;
mod sinkhorn;
mod transport;

pub use batch::{BatchStats, BatchTransport, ChainFrame, SideFrame};
pub use emd1d::{emd_1d_histograms, emd_1d_samples, emd_1d_weighted};
pub use error::EmdError;
pub use flow::MinCostFlow;
pub use grid_emd::{CoverRule, DistanceScaling, GridEmd, GridEmdReport, SolverUsed};
pub use signature::{
    euclidean, ground_distance_matrix, quantize, scaled_signature, CachedSide, CloudQuant,
    PatchedCloud, Signature, SignatureCache,
};
pub use sinkhorn::{sinkhorn, SinkhornParams};
pub use transport::TransportProblem;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EmdError>;

/// Exact EMD between two signatures using the transportation simplex.
///
/// Both signatures must be non-empty; weights are normalized to unit mass
/// so the returned value is already the paper's normalized EMD.
pub fn emd(p: &Signature, q: &Signature) -> Result<f64> {
    let cost = ground_distance_matrix(p.points(), q.points());
    let mut problem = TransportProblem::new(p.normalized_weights(), q.normalized_weights(), cost)?;
    problem.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emd_between_identical_signatures_is_zero() {
        let p = Signature::new(vec![vec![0.0], vec![1.0]], vec![0.5, 0.5]).unwrap();
        let d = emd(&p, &p).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn emd_matches_point_mass_translation() {
        let p = Signature::new(vec![vec![0.0, 0.0]], vec![1.0]).unwrap();
        let q = Signature::new(vec![vec![3.0, 4.0]], vec![1.0]).unwrap();
        assert!((emd(&p, &q).unwrap() - 5.0).abs() < 1e-12);
    }
}
