use std::fmt;

/// Errors from the EMD solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum EmdError {
    /// A signature or sample was empty.
    EmptyInput,
    /// Supplies and demands are not balanced within tolerance.
    Unbalanced {
        /// Total supply.
        supply: f64,
        /// Total demand.
        demand: f64,
    },
    /// Weights must be non-negative and finite.
    InvalidWeight {
        /// The offending weight value.
        value: f64,
    },
    /// Points within one signature must share a dimension.
    DimensionMismatch {
        /// Dimension of the first point.
        expected: usize,
        /// Dimension of the offending point.
        got: usize,
    },
    /// The cost matrix shape disagrees with the supply/demand vectors.
    CostShape {
        /// Expected (rows, cols).
        expected: (usize, usize),
        /// Actual (rows, cols).
        got: (usize, usize),
    },
    /// The solver failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A simplex pivot found no blocking arc on its cycle. The cycle of a
    /// spanning-tree basis always contains one, so this means the basis or
    /// the flow values are corrupt — in practice, non-finite flow entries
    /// that defeat every `<`/`==` comparison in the ratio test.
    BrokenPivot {
        /// The entering cell id `i * m + j`.
        entering: usize,
    },
}

impl fmt::Display for EmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmdError::EmptyInput => write!(f, "empty signature or sample"),
            EmdError::Unbalanced { supply, demand } => {
                write!(f, "unbalanced problem: supply {supply} vs demand {demand}")
            }
            EmdError::InvalidWeight { value } => write!(f, "invalid weight {value}"),
            EmdError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "point dimension mismatch: expected {expected}, got {got}"
                )
            }
            EmdError::CostShape { expected, got } => write!(
                f,
                "cost matrix shape {got:?} does not match supplies/demands {expected:?}"
            ),
            EmdError::NoConvergence { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
            EmdError::BrokenPivot { entering } => write!(
                f,
                "simplex pivot on cell {entering} found no blocking arc \
                 (corrupt basis or non-finite flow)"
            ),
        }
    }
}

impl std::error::Error for EmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(EmdError::EmptyInput.to_string().contains("empty"));
        assert!(EmdError::Unbalanced {
            supply: 1.0,
            demand: 2.0
        }
        .to_string()
        .contains("unbalanced"));
        assert!(EmdError::NoConvergence { iterations: 5 }
            .to_string()
            .contains("5"));
        assert!(EmdError::BrokenPivot { entering: 7 }
            .to_string()
            .contains("cell 7"));
    }
}
