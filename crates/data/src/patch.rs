use crate::{Dataset, TimeSeries};

/// One rewritten cell of a series: attribute `attr` at time `t` takes
/// `value` (NaN marks the cell missing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEdit {
    /// Attribute index.
    pub attr: u32,
    /// Time index within the series.
    pub t: u32,
    /// The new value; NaN = set missing.
    pub value: f64,
}

/// A sparse edit log against a base [`Dataset`]: per series, the cells a
/// cleaning pass rewrote, in application order.
///
/// This is the cell-patch representation the experiment engine uses instead
/// of cloning the full dirty sample per strategy: cleaning records touched
/// cells here, and downstream stages materialize only what they need
/// (touched series for re-detection, patched pooled rows for distortion).
/// Edits are replayed in order, so a cell written twice (imputed, then
/// winsorized) ends at its final value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetPatch {
    edits: Vec<Vec<CellEdit>>,
}

impl DatasetPatch {
    /// An empty patch over `num_series` series.
    pub fn new(num_series: usize) -> Self {
        DatasetPatch {
            edits: vec![Vec::new(); num_series],
        }
    }

    /// Number of series the patch spans.
    pub fn num_series(&self) -> usize {
        self.edits.len()
    }

    /// Appends an edit to series `series`.
    pub fn record(&mut self, series: usize, attr: usize, t: usize, value: f64) {
        self.edits[series].push(CellEdit {
            attr: attr as u32,
            t: t as u32,
            value,
        });
    }

    /// The edit log of one series, in application order.
    pub fn series_edits(&self, series: usize) -> &[CellEdit] {
        &self.edits[series]
    }

    /// Whether series `series` has at least one edit.
    pub fn is_touched(&self, series: usize) -> bool {
        !self.edits[series].is_empty()
    }

    /// Indices of series with at least one edit.
    pub fn touched_series(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.edits.len()).filter(|&i| self.is_touched(i))
    }

    /// Total number of recorded edits.
    pub fn num_edits(&self) -> usize {
        self.edits.iter().map(Vec::len).sum()
    }

    /// Clones one base series and replays its edits.
    pub fn apply_series(&self, series: usize, base: &TimeSeries) -> TimeSeries {
        let mut out = base.clone();
        for e in &self.edits[series] {
            out.set(e.attr as usize, e.t as usize, e.value);
        }
        out
    }

    /// Materializes the fully patched dataset (a clone of `base` with all
    /// edits replayed) — the compatibility path for consumers that need an
    /// owned [`Dataset`].
    pub fn apply_to(&self, base: &Dataset) -> Dataset {
        assert_eq!(
            base.num_series(),
            self.edits.len(),
            "patch must align with base series"
        );
        let mut out = base.clone();
        for (i, series) in out.series_mut().iter_mut().enumerate() {
            for e in &self.edits[i] {
                series.set(e.attr as usize, e.t as usize, e.value);
            }
        }
        out
    }
}

/// A copy-on-write cleaned view over a base [`Dataset`]: touched series are
/// materialized clones, untouched series borrow the base.
///
/// Produced by the patch-recording cleaning path; the engine reads treated
/// series from here (only touched ones differ from the base) without ever
/// cloning the full dataset.
#[derive(Debug)]
pub struct CleanedView<'a> {
    base: &'a Dataset,
    patched: Vec<Option<TimeSeries>>,
    patch: DatasetPatch,
}

impl<'a> CleanedView<'a> {
    /// Assembles a view from a base, the per-series materialized clones
    /// (aligned with the base; `None` = untouched), and the edit log.
    pub fn new(base: &'a Dataset, patched: Vec<Option<TimeSeries>>, patch: DatasetPatch) -> Self {
        assert_eq!(
            base.num_series(),
            patched.len(),
            "view must align with base"
        );
        assert_eq!(
            base.num_series(),
            patch.num_series(),
            "patch must align with base"
        );
        CleanedView {
            base,
            patched,
            patch,
        }
    }

    /// The base (dirty) dataset.
    pub fn base(&self) -> &Dataset {
        self.base
    }

    /// The edit log.
    pub fn patch(&self) -> &DatasetPatch {
        &self.patch
    }

    /// Number of series.
    pub fn num_series(&self) -> usize {
        self.base.num_series()
    }

    /// The cleaned series at `i`: the materialized clone when touched, the
    /// base series otherwise.
    pub fn series_at(&self, i: usize) -> &TimeSeries {
        self.patched[i]
            .as_ref()
            .unwrap_or_else(|| self.base.series_at(i))
    }

    /// Whether series `i` was rewritten (a materialized clone exists).
    pub fn is_patched(&self, i: usize) -> bool {
        self.patched[i].is_some()
    }

    /// Materializes the full cleaned dataset (schema plus every series,
    /// cloned) — for consumers that need an owned [`Dataset`].
    pub fn to_dataset(&self) -> Dataset {
        let series = (0..self.num_series())
            .map(|i| self.series_at(i).clone())
            .collect();
        Dataset::new(
            self.base
                .attributes()
                .iter()
                .map(|a| a.name.clone())
                .collect::<Vec<_>>(),
            series,
        )
        .expect("view preserves the base schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn base() -> Dataset {
        let series = (0..3)
            .map(|i| {
                let mut s = TimeSeries::new(NodeId::new(0, 0, i as u32), 2, 4);
                for t in 0..4 {
                    s.set(0, t, (i * 10 + t) as f64);
                    s.set(1, t, 1.0);
                }
                s
            })
            .collect();
        Dataset::new(vec!["a", "b"], series).unwrap()
    }

    #[test]
    fn record_and_apply() {
        let ds = base();
        let mut p = DatasetPatch::new(3);
        p.record(1, 0, 2, 99.0);
        p.record(1, 0, 2, 50.0); // later edit wins
        p.record(2, 1, 0, f64::NAN);
        assert_eq!(p.num_edits(), 3);
        assert!(!p.is_touched(0) && p.is_touched(1) && p.is_touched(2));
        assert_eq!(p.touched_series().collect::<Vec<_>>(), vec![1, 2]);

        let out = p.apply_to(&ds);
        assert_eq!(out.series_at(1).get(0, 2), 50.0);
        assert!(out.series_at(2).is_missing(1, 0));
        assert_eq!(out.series_at(0).get(0, 0), 0.0);

        let s1 = p.apply_series(1, ds.series_at(1));
        assert_eq!(s1.get(0, 2), 50.0);
    }

    #[test]
    fn cleaned_view_serves_patched_and_base_series() {
        let ds = base();
        let mut p = DatasetPatch::new(3);
        p.record(1, 0, 0, -7.0);
        let patched = vec![None, Some(p.apply_series(1, ds.series_at(1))), None];
        let view = CleanedView::new(&ds, patched, p);
        assert!(view.is_patched(1) && !view.is_patched(0));
        assert_eq!(view.series_at(1).get(0, 0), -7.0);
        assert_eq!(view.series_at(0).get(0, 0), 0.0);
        let full = view.to_dataset();
        assert_eq!(full.num_series(), 3);
        assert_eq!(full.series_at(1).get(0, 0), -7.0);
        assert!(full.same_data(&view.patch().apply_to(&ds)));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_patch_panics() {
        let ds = base();
        DatasetPatch::new(2).apply_to(&ds);
    }
}
