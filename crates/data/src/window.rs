use crate::{is_missing, TimeSeries};

/// A borrowed `w`-step history window `F^w_t`: the values of one series for
/// times `t - w, …, t - 1` (§3.1).
///
/// Windows never include time `t` itself — they are the history available
/// when a streaming detector examines the arrival at `t`.
#[derive(Debug, Clone, Copy)]
pub struct Window<'a> {
    series: &'a TimeSeries,
    /// First time index included.
    start: usize,
    /// One past the last time index included (= `t`).
    end: usize,
}

impl<'a> Window<'a> {
    /// The `w`-step history before `t`, clipped at the start of the series.
    ///
    /// For `t = 0` the window is empty; for `t < w` it is the full prefix.
    pub fn history(series: &'a TimeSeries, t: usize, w: usize) -> Self {
        assert!(t <= series.len(), "window anchored past end of series");
        Window {
            series,
            start: t.saturating_sub(w),
            end: t,
        }
    }

    /// A window spanning the whole series (batch analyses).
    pub fn full(series: &'a TimeSeries) -> Self {
        Window {
            series,
            start: 0,
            end: series.len(),
        }
    }

    /// Number of time steps covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window covers no time steps.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The underlying series.
    pub fn series(&self) -> &TimeSeries {
        self.series
    }

    /// Contiguous slice of one attribute over the window.
    pub fn attribute(&self, attr: usize) -> &[f64] {
        &self.series.attribute(attr)[self.start..self.end]
    }

    /// Present (non-missing) values of one attribute over the window.
    pub fn present(&self, attr: usize) -> impl Iterator<Item = f64> + '_ {
        self.attribute(attr)
            .iter()
            .copied()
            .filter(|&x| !is_missing(x))
    }

    /// Mean of present values of one attribute, if any are present.
    pub fn mean(&self, attr: usize) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for x in self.present(attr) {
            sum += x;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Sample standard deviation of present values (requires ≥ 2 present).
    pub fn std_dev(&self, attr: usize) -> Option<f64> {
        let mean = self.mean(attr)?;
        let mut n = 0usize;
        let mut ss = 0.0;
        for x in self.present(attr) {
            ss += (x - mean) * (x - mean);
            n += 1;
        }
        (n >= 2).then(|| (ss / (n as f64 - 1.0)).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn series() -> TimeSeries {
        TimeSeries::from_columns(
            NodeId::new(0, 0, 0),
            vec![
                vec![1.0, 2.0, 3.0, 4.0, 5.0],
                vec![10.0, f64::NAN, 30.0, 40.0, 50.0],
            ],
        )
    }

    #[test]
    fn history_excludes_t() {
        let s = series();
        let w = Window::history(&s, 3, 2);
        assert_eq!(w.attribute(0), &[2.0, 3.0]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn history_clips_at_start() {
        let s = series();
        let w = Window::history(&s, 1, 10);
        assert_eq!(w.attribute(0), &[1.0]);
        let w0 = Window::history(&s, 0, 3);
        assert!(w0.is_empty());
    }

    #[test]
    fn full_window_covers_series() {
        let s = series();
        let w = Window::full(&s);
        assert_eq!(w.len(), 5);
        assert_eq!(w.attribute(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn present_skips_missing() {
        let s = series();
        let w = Window::full(&s);
        let vals: Vec<f64> = w.present(1).collect();
        assert_eq!(vals, vec![10.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn mean_and_std_dev() {
        let s = series();
        let w = Window::full(&s);
        assert_eq!(w.mean(0), Some(3.0));
        let sd = w.std_dev(0).unwrap();
        assert!((sd - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(w.mean(1), Some(32.5));
    }

    #[test]
    fn empty_window_has_no_stats() {
        let s = series();
        let w = Window::history(&s, 0, 4);
        assert_eq!(w.mean(0), None);
        assert_eq!(w.std_dev(0), None);
    }

    #[test]
    fn single_value_has_mean_but_no_std() {
        let s = series();
        let w = Window::history(&s, 1, 1);
        assert_eq!(w.mean(0), Some(1.0));
        assert_eq!(w.std_dev(0), None);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn anchor_past_end_panics() {
        let s = series();
        Window::history(&s, 6, 1);
    }
}
