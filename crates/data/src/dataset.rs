use crate::{NodeId, Record, TimeSeries};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from dataset construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A series' attribute count disagrees with the dataset's metadata.
    AttributeMismatch {
        /// Index of the offending series.
        series: usize,
        /// Attribute count declared by the dataset.
        expected: usize,
        /// Attribute count of the series.
        got: usize,
    },
    /// The dataset declared zero attributes.
    NoAttributes,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::AttributeMismatch {
                series,
                expected,
                got,
            } => write!(
                f,
                "series {series} has {got} attributes, dataset declares {expected}"
            ),
            DataError::NoAttributes => write!(f, "dataset must declare at least one attribute"),
        }
    }
}

impl std::error::Error for DataError {}

/// Descriptive metadata for one attribute of the stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeMeta {
    /// Human-readable attribute name, e.g. `"load"`.
    pub name: String,
}

/// A collection of sector time series sharing one attribute schema —
/// the paper's data set `D` (or `D_I`, `D_C`, …).
///
/// Series may have different lengths (`T_ijk` varies with node uptime,
/// §3.4), but all share the same `v` attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    attributes: Vec<AttributeMeta>,
    series: Vec<TimeSeries>,
}

impl Dataset {
    /// Creates a dataset, validating that every series matches the schema.
    pub fn new<S: Into<String>>(
        attribute_names: Vec<S>,
        series: Vec<TimeSeries>,
    ) -> Result<Self, DataError> {
        if attribute_names.is_empty() {
            return Err(DataError::NoAttributes);
        }
        let attributes: Vec<AttributeMeta> = attribute_names
            .into_iter()
            .map(|n| AttributeMeta { name: n.into() })
            .collect();
        for (i, s) in series.iter().enumerate() {
            if s.num_attributes() != attributes.len() {
                return Err(DataError::AttributeMismatch {
                    series: i,
                    expected: attributes.len(),
                    got: s.num_attributes(),
                });
            }
        }
        Ok(Dataset { attributes, series })
    }

    /// An empty dataset with the given schema.
    pub fn empty<S: Into<String>>(attribute_names: Vec<S>) -> Result<Self, DataError> {
        Dataset::new(attribute_names, Vec::new())
    }

    /// Number of attributes `v`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute metadata.
    pub fn attributes(&self) -> &[AttributeMeta] {
        &self.attributes
    }

    /// Index of the attribute with the given name, if present.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Number of series.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Mutable access to all series (cleaning strategies rewrite in place).
    pub fn series_mut(&mut self) -> &mut [TimeSeries] {
        &mut self.series
    }

    /// One series by index.
    pub fn series_at(&self, i: usize) -> &TimeSeries {
        &self.series[i]
    }

    /// Appends a series; its schema must match.
    pub fn push(&mut self, s: TimeSeries) -> Result<(), DataError> {
        if s.num_attributes() != self.num_attributes() {
            return Err(DataError::AttributeMismatch {
                series: self.series.len(),
                expected: self.num_attributes(),
                got: s.num_attributes(),
            });
        }
        self.series.push(s);
        Ok(())
    }

    /// Finds the series for a given node, if present.
    pub fn series_for(&self, node: NodeId) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.node() == node)
    }

    /// Total number of records (time instances summed over series).
    pub fn num_records(&self) -> usize {
        self.series.iter().map(TimeSeries::len).sum()
    }

    /// Total number of cells (`records × v`).
    pub fn num_cells(&self) -> usize {
        self.num_records() * self.num_attributes()
    }

    /// Pools every record of every series, in series order then time order.
    ///
    /// This is the flattening the paper uses to compute statistical
    /// distortion: "we computed EMD treating each time instance as a
    /// separate data point" (§6.1).
    pub fn pooled_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.num_records());
        for s in &self.series {
            out.extend(s.records());
        }
        out
    }

    /// Pools all present values of one attribute across series and time.
    pub fn pooled_attribute(&self, attr: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for s in &self.series {
            out.extend(s.attribute(attr).iter().copied().filter(|x| !x.is_nan()));
        }
        out
    }

    /// Fraction of cells missing over the whole dataset (0 when empty).
    pub fn missing_fraction(&self) -> f64 {
        let cells = self.num_cells();
        if cells == 0 {
            return 0.0;
        }
        let missing: usize = self.series.iter().map(TimeSeries::missing_cells).sum();
        missing as f64 / cells as f64
    }

    /// NaN-aware data equality (see [`TimeSeries::same_data`]).
    pub fn same_data(&self, other: &Dataset) -> bool {
        self.attributes == other.attributes
            && self.series.len() == other.series.len()
            && self
                .series
                .iter()
                .zip(&other.series)
                .all(|(a, b)| a.same_data(b))
    }

    /// A dataset of the same schema whose series are the `start..end` time
    /// window of every series (each clipped to its own length; series that
    /// end before `start` contribute an empty slice). The §3.3 windowed
    /// workloads operate on these slices.
    pub fn window_slice(&self, start: usize, end: usize) -> Dataset {
        Dataset {
            attributes: self.attributes.clone(),
            series: self.series.iter().map(|s| s.slice(start, end)).collect(),
        }
    }

    /// Builds a new dataset with the same schema from a subset of series
    /// indices (duplicates allowed — used by with-replacement sampling).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let series = indices.iter().map(|&i| self.series[i].clone()).collect();
        Dataset {
            attributes: self.attributes.clone(),
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize) -> Dataset {
        let series = (0..n)
            .map(|i| {
                let mut s = TimeSeries::new(NodeId::new(0, 0, i as u32), 2, 3);
                for t in 0..3 {
                    s.set(0, t, (i * 10 + t) as f64);
                    s.set(1, t, 1.0);
                }
                s
            })
            .collect();
        Dataset::new(vec!["a", "b"], series).unwrap()
    }

    #[test]
    fn schema_validation() {
        let bad = TimeSeries::new(NodeId::new(0, 0, 0), 3, 1);
        let err = Dataset::new(vec!["a", "b"], vec![bad]).unwrap_err();
        assert!(matches!(err, DataError::AttributeMismatch { got: 3, .. }));
        assert!(matches!(
            Dataset::new(Vec::<String>::new(), vec![]),
            Err(DataError::NoAttributes)
        ));
    }

    #[test]
    fn push_validates_schema() {
        let mut ds = make(1);
        assert!(ds.push(TimeSeries::new(NodeId::new(0, 0, 9), 2, 2)).is_ok());
        assert!(ds
            .push(TimeSeries::new(NodeId::new(0, 0, 8), 1, 2))
            .is_err());
        assert_eq!(ds.num_series(), 2);
    }

    #[test]
    fn attribute_lookup() {
        let ds = make(1);
        assert_eq!(ds.attribute_index("b"), Some(1));
        assert_eq!(ds.attribute_index("zzz"), None);
        assert_eq!(ds.attributes()[0].name, "a");
    }

    #[test]
    fn record_counts() {
        let ds = make(4);
        assert_eq!(ds.num_records(), 12);
        assert_eq!(ds.num_cells(), 24);
        assert_eq!(ds.pooled_records().len(), 12);
    }

    #[test]
    fn pooled_attribute_flattens_in_order() {
        let ds = make(2);
        let vals = ds.pooled_attribute(0);
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn missing_fraction_counts_nan_cells() {
        let mut ds = make(2);
        ds.series_mut()[0].set_missing(0, 0);
        ds.series_mut()[1].set_missing(1, 2);
        assert!((ds.missing_fraction() - 2.0 / 12.0).abs() < 1e-12);
        let empty = Dataset::empty(vec!["a", "b"]).unwrap();
        assert_eq!(empty.missing_fraction(), 0.0);
    }

    #[test]
    fn subset_allows_duplicates() {
        let ds = make(3);
        let sub = ds.subset(&[2, 2, 0]);
        assert_eq!(sub.num_series(), 3);
        assert_eq!(sub.series_at(0).node(), NodeId::new(0, 0, 2));
        assert_eq!(sub.series_at(1).node(), NodeId::new(0, 0, 2));
        assert_eq!(sub.series_at(2).node(), NodeId::new(0, 0, 0));
    }

    #[test]
    fn series_for_finds_node() {
        let ds = make(3);
        assert!(ds.series_for(NodeId::new(0, 0, 1)).is_some());
        assert!(ds.series_for(NodeId::new(9, 0, 0)).is_none());
    }
}
