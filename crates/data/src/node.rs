use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a Radio Network Controller — the top layer `N_i`.
pub type RncId = u32;

/// Identifier of a cell tower (Node B) within an RNC — the middle layer `N_ij`.
pub type TowerId = u32;

/// Fully-qualified address of a sector (antenna) in the three-layer
/// hierarchy `N_ijk`: RNC `i` → tower `j` → sector `k`.
///
/// Ordering is lexicographic over `(rnc, tower, sector)`, which groups
/// physically collocated equipment together — useful because glitches
/// cluster topologically (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId {
    /// RNC index `i`.
    pub rnc: RncId,
    /// Tower index `j` within the RNC.
    pub tower: TowerId,
    /// Sector index `k` on the tower.
    pub sector: u32,
}

impl NodeId {
    /// Creates a sector address.
    pub fn new(rnc: RncId, tower: TowerId, sector: u32) -> Self {
        NodeId { rnc, tower, sector }
    }

    /// Whether two sectors sit on the same tower (the paper's notion of
    /// collocated equipment — antennas on one cell tower).
    pub fn same_tower(&self, other: &NodeId) -> bool {
        self.rnc == other.rnc && self.tower == other.tower
    }

    /// Whether two sectors report to the same RNC.
    pub fn same_rnc(&self, other: &NodeId) -> bool {
        self.rnc == other.rnc
    }

    /// Whether `self` and `other` are neighbours: distinct sectors on the
    /// same tower. Outlier detection (§3.3) conditions on the window history
    /// of a node's neighbours.
    pub fn is_neighbor(&self, other: &NodeId) -> bool {
        self.same_tower(other) && self != other
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}.{}.{}", self.rnc, self.tower, self.sector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_hierarchical() {
        assert_eq!(NodeId::new(1, 2, 3).to_string(), "N1.2.3");
    }

    #[test]
    fn neighbor_requires_same_tower_distinct_sector() {
        let a = NodeId::new(0, 1, 0);
        let b = NodeId::new(0, 1, 1);
        let c = NodeId::new(0, 2, 0);
        assert!(a.is_neighbor(&b));
        assert!(!a.is_neighbor(&a));
        assert!(!a.is_neighbor(&c));
        assert!(a.same_rnc(&c));
        assert!(!a.same_tower(&c));
    }

    #[test]
    fn ordering_groups_collocated_sectors() {
        let mut ids = vec![
            NodeId::new(1, 0, 0),
            NodeId::new(0, 1, 1),
            NodeId::new(0, 1, 0),
            NodeId::new(0, 0, 5),
        ];
        ids.sort();
        assert_eq!(
            ids,
            vec![
                NodeId::new(0, 0, 5),
                NodeId::new(0, 1, 0),
                NodeId::new(0, 1, 1),
                NodeId::new(1, 0, 0),
            ]
        );
    }
}
