use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Regular three-layer network topology: `rncs` RNCs, each with
/// `towers_per_rnc` towers, each with `sectors_per_tower` sectors.
///
/// The paper's data comes from such a hierarchy (RNC → Node B → sector).
/// A regular shape is sufficient for the reproduction; the generator can
/// still make individual sectors behave differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of RNCs (`N_i`).
    pub rncs: u32,
    /// Towers per RNC (`N_ij`).
    pub towers_per_rnc: u32,
    /// Sectors per tower (`N_ijk`).
    pub sectors_per_tower: u32,
}

impl Topology {
    /// Creates a topology; all layer sizes must be non-zero.
    pub fn new(rncs: u32, towers_per_rnc: u32, sectors_per_tower: u32) -> Self {
        assert!(
            rncs > 0 && towers_per_rnc > 0 && sectors_per_tower > 0,
            "topology layers must be non-empty"
        );
        Topology {
            rncs,
            towers_per_rnc,
            sectors_per_tower,
        }
    }

    /// Total number of sectors (= number of time series).
    pub fn num_sectors(&self) -> usize {
        self.rncs as usize * self.towers_per_rnc as usize * self.sectors_per_tower as usize
    }

    /// Total number of towers.
    pub fn num_towers(&self) -> usize {
        self.rncs as usize * self.towers_per_rnc as usize
    }

    /// Enumerates every sector in lexicographic `(rnc, tower, sector)` order.
    pub fn sectors(&self) -> impl Iterator<Item = NodeId> + '_ {
        let t = *self;
        (0..t.rncs).flat_map(move |i| {
            (0..t.towers_per_rnc)
                .flat_map(move |j| (0..t.sectors_per_tower).map(move |k| NodeId::new(i, j, k)))
        })
    }

    /// The flat index of a sector in [`Topology::sectors`] order.
    pub fn sector_index(&self, node: NodeId) -> usize {
        assert!(self.contains(node), "node {node} outside topology");
        (node.rnc as usize * self.towers_per_rnc as usize + node.tower as usize)
            * self.sectors_per_tower as usize
            + node.sector as usize
    }

    /// Inverse of [`Topology::sector_index`].
    pub fn sector_at(&self, index: usize) -> NodeId {
        assert!(index < self.num_sectors(), "sector index out of range");
        let spt = self.sectors_per_tower as usize;
        let tpr = self.towers_per_rnc as usize;
        let sector = (index % spt) as u32;
        let tower_flat = index / spt;
        let tower = (tower_flat % tpr) as u32;
        let rnc = (tower_flat / tpr) as u32;
        NodeId::new(rnc, tower, sector)
    }

    /// Whether the node is addressable within this topology.
    pub fn contains(&self, node: NodeId) -> bool {
        node.rnc < self.rncs
            && node.tower < self.towers_per_rnc
            && node.sector < self.sectors_per_tower
    }

    /// The neighbours of a sector: all other sectors on the same tower.
    /// Outlier detection (§3.3) may condition on neighbour history.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        assert!(self.contains(node), "node {node} outside topology");
        (0..self.sectors_per_tower)
            .filter(|&k| k != node.sector)
            .map(|k| NodeId::new(node.rnc, node.tower, k))
            .collect()
    }

    /// The flat index of a sector's tower (`rnc * towers_per_rnc + tower`).
    pub fn tower_index(&self, node: NodeId) -> usize {
        assert!(self.contains(node), "node {node} outside topology");
        node.rnc as usize * self.towers_per_rnc as usize + node.tower as usize
    }

    /// Hop distance between two sectors in the RNC → tower → sector
    /// hierarchy: 0 for the node itself, 1 for collocated sectors (same
    /// tower), 2 for sectors under the same RNC, 3 otherwise.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(
            self.contains(a) && self.contains(b),
            "nodes must lie inside the topology"
        );
        if a == b {
            0
        } else if a.rnc == b.rnc && a.tower == b.tower {
            1
        } else if a.rnc == b.rnc {
            2
        } else {
            3
        }
    }

    /// All sectors within `hops` of `node` (excluding `node` itself), in
    /// [`Topology::sectors`] order: `hops = 1` is the tower neighbourhood
    /// ([`Topology::neighbors`]), `hops = 2` adds every sector under the
    /// same RNC, `hops ≥ 3` the entire network.
    pub fn khop_neighbors(&self, node: NodeId, hops: u32) -> Vec<NodeId> {
        assert!(self.contains(node), "node {node} outside topology");
        self.sectors()
            .filter(|&m| {
                let d = self.hop_distance(node, m);
                d > 0 && d <= hops
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_multiply() {
        let t = Topology::new(2, 3, 4);
        assert_eq!(t.num_sectors(), 24);
        assert_eq!(t.num_towers(), 6);
        assert_eq!(t.sectors().count(), 24);
    }

    #[test]
    fn index_roundtrip() {
        let t = Topology::new(2, 3, 4);
        for (i, node) in t.sectors().enumerate() {
            assert_eq!(t.sector_index(node), i);
            assert_eq!(t.sector_at(i), node);
        }
    }

    #[test]
    fn neighbors_are_same_tower() {
        let t = Topology::new(1, 2, 3);
        let n = NodeId::new(0, 1, 0);
        let nb = t.neighbors(n);
        assert_eq!(nb, vec![NodeId::new(0, 1, 1), NodeId::new(0, 1, 2)]);
        assert!(nb.iter().all(|m| m.is_neighbor(&n)));
    }

    #[test]
    fn khop_neighborhoods_grow_with_hops() {
        let t = Topology::new(2, 2, 3);
        let n = NodeId::new(0, 1, 0);
        assert_eq!(t.khop_neighbors(n, 0), vec![]);
        assert_eq!(t.khop_neighbors(n, 1), t.neighbors(n));
        let rnc_wide = t.khop_neighbors(n, 2);
        assert_eq!(rnc_wide.len(), 5); // 6 sectors under rnc 0, minus self
        assert!(rnc_wide.iter().all(|m| m.rnc == 0));
        assert_eq!(t.khop_neighbors(n, 3).len(), t.num_sectors() - 1);
        assert_eq!(t.hop_distance(n, n), 0);
        assert_eq!(t.hop_distance(n, NodeId::new(0, 1, 2)), 1);
        assert_eq!(t.hop_distance(n, NodeId::new(0, 0, 0)), 2);
        assert_eq!(t.hop_distance(n, NodeId::new(1, 0, 0)), 3);
    }

    #[test]
    fn tower_index_is_flat() {
        let t = Topology::new(2, 3, 4);
        for node in t.sectors() {
            assert_eq!(
                t.tower_index(node),
                t.sector_index(node) / t.sectors_per_tower as usize
            );
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let t = Topology::new(1, 1, 2);
        assert!(t.contains(NodeId::new(0, 0, 1)));
        assert!(!t.contains(NodeId::new(0, 0, 2)));
        assert!(!t.contains(NodeId::new(1, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_layer_rejected() {
        Topology::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn sector_index_checks_membership() {
        Topology::new(1, 1, 1).sector_index(NodeId::new(0, 0, 9));
    }
}
