use crate::{is_missing, NodeId, MISSING};
use serde::{Deserialize, Serialize};

/// One sector's multi-attribute stream: `v` attributes over `T` time steps.
///
/// Storage is attribute-major (`attr * len + t`), so per-attribute scans —
/// the dominant access pattern in detection, winsorization, and histogram
/// construction — are contiguous. Missing values are stored as NaN
/// (see [`crate::MISSING`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    node: NodeId,
    num_attributes: usize,
    len: usize,
    values: Vec<f64>,
}

/// An owned snapshot of one time instant of a series: the `v`-tuple `X^t`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Time index within the series.
    pub t: usize,
    /// Attribute values at `t`; NaN marks missing cells.
    pub values: Vec<f64>,
}

impl Record {
    /// Whether every attribute of the record is missing.
    pub fn fully_missing(&self) -> bool {
        self.values.iter().all(|&x| is_missing(x))
    }

    /// Whether at least one attribute is missing.
    pub fn any_missing(&self) -> bool {
        self.values.iter().any(|&x| is_missing(x))
    }
}

impl TimeSeries {
    /// Creates a series of `num_attributes × len` with every cell missing.
    pub fn new(node: NodeId, num_attributes: usize, len: usize) -> Self {
        TimeSeries {
            node,
            num_attributes,
            len,
            values: vec![MISSING; num_attributes * len],
        }
    }

    /// Creates a series from attribute-major columns.
    ///
    /// `columns[a][t]` is attribute `a` at time `t`; all columns must share
    /// one length.
    pub fn from_columns(node: NodeId, columns: Vec<Vec<f64>>) -> Self {
        let num_attributes = columns.len();
        let len = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|c| c.len() == len),
            "ragged attribute columns"
        );
        let mut values = Vec::with_capacity(num_attributes * len);
        for col in &columns {
            values.extend_from_slice(col);
        }
        TimeSeries {
            node,
            num_attributes,
            len,
            values,
        }
    }

    /// The sector this series belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of attributes `v`.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// Number of time steps `T`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the series has zero time steps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of attribute `attr` at time `t` (NaN when missing).
    #[inline]
    pub fn get(&self, attr: usize, t: usize) -> f64 {
        self.values[self.index(attr, t)]
    }

    /// Sets attribute `attr` at time `t`.
    #[inline]
    pub fn set(&mut self, attr: usize, t: usize, value: f64) {
        let i = self.index(attr, t);
        self.values[i] = value;
    }

    /// Marks attribute `attr` at time `t` missing.
    #[inline]
    pub fn set_missing(&mut self, attr: usize, t: usize) {
        self.set(attr, t, MISSING);
    }

    /// Whether attribute `attr` at time `t` is missing.
    #[inline]
    pub fn is_missing(&self, attr: usize, t: usize) -> bool {
        is_missing(self.get(attr, t))
    }

    /// Contiguous view of one attribute across all time steps.
    pub fn attribute(&self, attr: usize) -> &[f64] {
        assert!(attr < self.num_attributes, "attribute out of range");
        &self.values[attr * self.len..(attr + 1) * self.len]
    }

    /// Mutable view of one attribute across all time steps.
    pub fn attribute_mut(&mut self, attr: usize) -> &mut [f64] {
        assert!(attr < self.num_attributes, "attribute out of range");
        &mut self.values[attr * self.len..(attr + 1) * self.len]
    }

    /// The `v`-tuple at time `t` as an owned [`Record`].
    pub fn record(&self, t: usize) -> Record {
        assert!(t < self.len, "time index out of range");
        let values = (0..self.num_attributes).map(|a| self.get(a, t)).collect();
        Record { t, values }
    }

    /// Iterator over all records in time order.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len).map(|t| self.record(t))
    }

    /// Number of missing cells in the whole series.
    pub fn missing_cells(&self) -> usize {
        self.values.iter().filter(|&&x| is_missing(x)).count()
    }

    /// Number of time steps where at least one attribute is present.
    ///
    /// The paper normalizes each node's glitch score by the amount of data
    /// the node actually reported (`T_ijk`); fully-missing trailing steps are
    /// still counted as reported-but-missing here, so this returns `len`
    /// unless callers trim.
    pub fn populated_steps(&self) -> usize {
        (0..self.len)
            .filter(|&t| (0..self.num_attributes).any(|a| !self.is_missing(a, t)))
            .count()
    }

    /// Bitwise data equality that treats NaN (missing) cells as equal.
    ///
    /// The derived `PartialEq` follows IEEE semantics where `NaN != NaN`,
    /// so two identical series with missing values compare unequal; use
    /// this for determinism and round-trip checks.
    pub fn same_data(&self, other: &TimeSeries) -> bool {
        self.node == other.node
            && self.num_attributes == other.num_attributes
            && self.len == other.len
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()))
    }

    /// An owned sub-series covering times `start..end` (clipped to the
    /// series length), preserving the node and schema. Used by the windowed
    /// experiment mode to materialize one window of the stream.
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        let start = start.min(self.len);
        let end = end.clamp(start, self.len);
        let len = end - start;
        let mut values = Vec::with_capacity(self.num_attributes * len);
        for a in 0..self.num_attributes {
            values.extend_from_slice(&self.attribute(a)[start..end]);
        }
        TimeSeries {
            node: self.node,
            num_attributes: self.num_attributes,
            len,
            values,
        }
    }

    /// Applies `f` to every present (non-missing) cell of attribute `attr`.
    pub fn map_attribute_in_place(&mut self, attr: usize, mut f: impl FnMut(f64) -> f64) {
        for x in self.attribute_mut(attr) {
            if !is_missing(*x) {
                *x = f(*x);
            }
        }
    }

    #[inline]
    fn index(&self, attr: usize, t: usize) -> usize {
        assert!(
            attr < self.num_attributes && t < self.len,
            "series index out of range: attr {attr}, t {t}"
        );
        attr * self.len + t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeId {
        NodeId::new(0, 0, 0)
    }

    #[test]
    fn new_series_is_fully_missing() {
        let s = TimeSeries::new(node(), 3, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.num_attributes(), 3);
        assert_eq!(s.missing_cells(), 15);
        assert_eq!(s.populated_steps(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = TimeSeries::new(node(), 2, 3);
        s.set(1, 2, 42.0);
        assert_eq!(s.get(1, 2), 42.0);
        assert!(!s.is_missing(1, 2));
        s.set_missing(1, 2);
        assert!(s.is_missing(1, 2));
    }

    #[test]
    fn from_columns_layout() {
        let s =
            TimeSeries::from_columns(node(), vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(s.num_attributes(), 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(2, 0), 5.0);
        assert_eq!(s.attribute(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_columns_rejects_ragged() {
        TimeSeries::from_columns(node(), vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn record_extraction() {
        let s = TimeSeries::from_columns(node(), vec![vec![1.0, f64::NAN], vec![3.0, 4.0]]);
        let r0 = s.record(0);
        assert_eq!(r0.values, vec![1.0, 3.0]);
        assert!(!r0.any_missing());
        let r1 = s.record(1);
        assert!(r1.any_missing());
        assert!(!r1.fully_missing());
        assert_eq!(s.records().count(), 2);
    }

    #[test]
    fn fully_missing_record() {
        let s = TimeSeries::new(node(), 2, 1);
        assert!(s.record(0).fully_missing());
    }

    #[test]
    fn populated_steps_counts_partial_rows() {
        let mut s = TimeSeries::new(node(), 2, 4);
        s.set(0, 1, 5.0);
        s.set(1, 3, 6.0);
        assert_eq!(s.populated_steps(), 2);
    }

    #[test]
    fn map_attribute_skips_missing() {
        let mut s = TimeSeries::from_columns(node(), vec![vec![1.0, f64::NAN, 3.0]]);
        s.map_attribute_in_place(0, |x| x * 10.0);
        assert_eq!(s.get(0, 0), 10.0);
        assert!(s.is_missing(0, 1));
        assert_eq!(s.get(0, 2), 30.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = TimeSeries::new(node(), 1, 1);
        s.get(0, 1);
    }

    #[test]
    fn attribute_mut_is_contiguous() {
        let mut s = TimeSeries::new(node(), 2, 3);
        for (t, x) in s.attribute_mut(0).iter_mut().enumerate() {
            *x = t as f64;
        }
        assert_eq!(s.attribute(0), &[0.0, 1.0, 2.0]);
        assert!(s.attribute(1).iter().all(|x| x.is_nan()));
    }
}
