//! Per-node streaming window state: a bounded ring buffer of arrivals.
//!
//! The §3.3 online pipeline never sees a materialized stream — rows arrive
//! one at a time and only the last `capacity` of them are retained per
//! node. [`NodeState`] is that retention policy as a data structure: a
//! fixed-capacity, attribute-major ring buffer over one sector's arrivals,
//! able to [`NodeState::materialize`] any still-retained `[start, end)`
//! range as an owned [`TimeSeries`] bit-identical to
//! [`TimeSeries::slice`] on the full stream.
//!
//! Both execution paths share this type: the batch
//! `WindowedExperiment` replays each series through a `NodeState` to build
//! its per-window segments, and the `sd-serve` shards keep one live
//! `NodeState` per owned node, so windowed calibration reads the same
//! bytes whether the stream was replayed or served.
//!
//! # Retention contract
//!
//! A window calibration at `[start, start + w)` needs history back to
//! `start - w` (the screen's history depth equals the window length), so a
//! ring capacity of `2 w` rows per node is sufficient for any window/stride
//! geometry: the span between the oldest row still needed and the newest
//! row pushed never exceeds `2 w` as long as completed windows are
//! materialized promptly and [`NodeState::evict_below`] is advanced to the
//! next window's history base afterwards. Requesting rows older than the
//! ring surfaces a structured [`StateError::Evicted`] — bounded memory is
//! the contract, not a best effort.

use crate::{NodeId, TimeSeries, MISSING};
use std::fmt;

/// One KPI row in flight: a sector's `v`-tuple at time `t`.
///
/// This is the unit of ingestion for the streaming service: `sd-netsim`
/// emits these from a synthetic network and `sd-serve` routes them to
/// shards. Rows must arrive in time order *per node* (`t` strictly
/// increasing by 1); arbitrary interleaving across nodes is fine.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalRow {
    /// The sector that reported the row.
    pub node: NodeId,
    /// Absolute time step of the row within the node's stream.
    pub t: usize,
    /// Attribute values (NaN marks missing cells), in attribute order.
    pub values: Vec<f64>,
}

/// Why a [`NodeState`] operation could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// A materialization asked for rows older than the ring retains.
    Evicted {
        /// First time step the request needed.
        requested: usize,
        /// Oldest time step still in the ring.
        first_retained: usize,
    },
    /// A row arrived out of order for this node.
    OutOfOrder {
        /// Time step the ring expected next.
        expected: usize,
        /// Time step the row carried.
        got: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Evicted {
                requested,
                first_retained,
            } => write!(
                f,
                "rows from t={requested} were evicted (ring retains t>={first_retained})"
            ),
            StateError::OutOfOrder { expected, got } => write!(
                f,
                "row arrived out of order: expected t={expected}, got t={got}"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// A fixed-capacity ring buffer over one node's stream of KPI rows.
///
/// Storage is row-slot ring order internally and attribute-major on
/// [`NodeState::materialize`], matching [`TimeSeries`]. Capacity counts
/// time steps, not cells.
///
/// ```
/// use sd_data::{NodeId, NodeState};
///
/// let mut state = NodeState::new(NodeId::new(0, 0, 0), 2, 4);
/// for t in 0..6 {
///     state.push(&[t as f64, 10.0 + t as f64]).unwrap();
/// }
/// assert_eq!(state.first_retained(), 2); // rows 0 and 1 were evicted
/// let segment = state.materialize(3, 6).unwrap();
/// assert_eq!(segment.len(), 3);
/// assert_eq!(segment.get(0, 0), 3.0); // local t=0 is absolute t=3
/// assert!(state.materialize(1, 4).is_err()); // t=1 is gone
/// ```
#[derive(Debug, Clone)]
pub struct NodeState {
    node: NodeId,
    num_attributes: usize,
    capacity: usize,
    /// Absolute time of the oldest retained row.
    first_retained: usize,
    /// Absolute time the next arrival must carry.
    next_t: usize,
    /// Highest occupancy ever reached (for bounded-memory audits).
    high_water: usize,
    /// `capacity` row slots of `num_attributes` cells; row `t` lives in
    /// slot `t % capacity`.
    ring: Vec<f64>,
}

impl NodeState {
    /// Creates an empty ring for `node` whose stream starts at `t = 0`.
    ///
    /// # Panics
    ///
    /// If `num_attributes` or `capacity` is zero.
    pub fn new(node: NodeId, num_attributes: usize, capacity: usize) -> Self {
        Self::starting_at(node, num_attributes, capacity, 0)
    }

    /// Creates an empty ring whose first arrival will carry `t = start`.
    ///
    /// The batch path uses this to replay only the suffix of a series that
    /// a window calibration can actually reach, without pretending the
    /// earlier rows were retained.
    ///
    /// # Panics
    ///
    /// If `num_attributes` or `capacity` is zero.
    pub fn starting_at(node: NodeId, num_attributes: usize, capacity: usize, start: usize) -> Self {
        assert!(
            num_attributes > 0,
            "node state needs at least one attribute"
        );
        assert!(capacity > 0, "node state needs a positive ring capacity");
        NodeState {
            node,
            num_attributes,
            capacity,
            first_retained: start,
            next_t: start,
            high_water: 0,
            ring: vec![MISSING; capacity * num_attributes],
        }
    }

    /// Replays `series[from..to]` (clipped to the series length) through a
    /// fresh ring, as if those rows had streamed in.
    pub fn from_series(series: &TimeSeries, capacity: usize, from: usize, to: usize) -> Self {
        let v = series.num_attributes();
        let from = from.min(series.len());
        let to = to.clamp(from, series.len());
        let mut state = Self::starting_at(series.node(), v, capacity, from);
        let mut row = vec![MISSING; v];
        for t in from..to {
            for (a, cell) in row.iter_mut().enumerate() {
                *cell = series.get(a, t);
            }
            // In-order by construction; an error here would be a bug in
            // this loop, not in the caller's data.
            let _ = state.push(&row);
        }
        state
    }

    /// The sector this ring buffers.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of attributes per row.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// Ring capacity in time steps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absolute time of the oldest retained row.
    pub fn first_retained(&self) -> usize {
        self.first_retained
    }

    /// Absolute time the next arrival must carry (also: one past the
    /// newest retained row).
    pub fn next_t(&self) -> usize {
        self.next_t
    }

    /// Number of rows currently retained.
    pub fn occupancy(&self) -> usize {
        self.next_t - self.first_retained
    }

    /// Highest occupancy the ring ever reached. Never exceeds
    /// [`NodeState::capacity`] — the bounded-memory audit hook.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Whether no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Accepts the node's next row. When the ring is full the oldest row
    /// is evicted first, so occupancy never exceeds capacity.
    ///
    /// Returns [`StateError::OutOfOrder`] if `t` is supplied out of
    /// sequence (see [`NodeState::push_at`]); this arity-checked entry
    /// point never reorders.
    ///
    /// # Panics
    ///
    /// If `values.len()` disagrees with the ring's attribute count — a
    /// malformed row violates the ingestion contract.
    pub fn push(&mut self, values: &[f64]) -> Result<(), StateError> {
        assert_eq!(
            values.len(),
            self.num_attributes,
            "row arity disagrees with the node's schema"
        );
        if self.occupancy() == self.capacity {
            self.first_retained += 1;
        }
        let slot = (self.next_t % self.capacity) * self.num_attributes;
        self.ring[slot..slot + self.num_attributes].copy_from_slice(values);
        self.next_t += 1;
        self.high_water = self.high_water.max(self.occupancy());
        Ok(())
    }

    /// Accepts a row carrying an explicit time stamp, enforcing per-node
    /// time order: `t` must equal [`NodeState::next_t`].
    pub fn push_at(&mut self, t: usize, values: &[f64]) -> Result<(), StateError> {
        if t != self.next_t {
            return Err(StateError::OutOfOrder {
                expected: self.next_t,
                got: t,
            });
        }
        self.push(values)
    }

    /// Drops retained rows older than `t` (clipped to the retained range).
    /// The streaming shards call this after materializing a window, with
    /// `t` at the next window's history base.
    pub fn evict_below(&mut self, t: usize) {
        self.first_retained = self.first_retained.max(t.min(self.next_t));
    }

    /// Materializes retained rows `[start, end)` as an owned
    /// [`TimeSeries`], with `start` mapped to local time 0.
    ///
    /// The range is clipped to `[start, next_t)` exactly as
    /// [`TimeSeries::slice`] clips to the series length, so replaying a
    /// series through a sufficiently large ring and materializing yields a
    /// bit-identical segment. Asking for rows older than the ring retains
    /// is a [`StateError::Evicted`] — never silently truncated.
    pub fn materialize(&self, start: usize, end: usize) -> Result<TimeSeries, StateError> {
        let start_c = start.min(self.next_t);
        let end_c = end.clamp(start_c, self.next_t);
        if start_c < self.first_retained && start_c < end_c {
            return Err(StateError::Evicted {
                requested: start_c,
                first_retained: self.first_retained,
            });
        }
        let len = end_c - start_c;
        let mut columns = vec![Vec::with_capacity(len); self.num_attributes];
        for t in start_c..end_c {
            let slot = (t % self.capacity) * self.num_attributes;
            for (a, column) in columns.iter_mut().enumerate() {
                column.push(self.ring[slot + a]);
            }
        }
        Ok(TimeSeries::from_columns(self.node, columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn node() -> NodeId {
        NodeId::new(1, 2, 3)
    }

    fn series(len: usize) -> TimeSeries {
        let mut columns: Vec<Vec<f64>> = std::iter::repeat_with(|| Vec::with_capacity(len))
            .take(2)
            .collect();
        for t in 0..len {
            columns[0].push(t as f64);
            columns[1].push(if t % 5 == 0 {
                f64::NAN
            } else {
                100.0 + t as f64
            });
        }
        TimeSeries::from_columns(node(), columns)
    }

    #[test]
    fn materialize_matches_slice_bit_for_bit() {
        let s = series(37);
        for (start, end) in [(0, 10), (5, 20), (30, 37), (35, 50), (40, 45), (7, 7)] {
            let state = NodeState::from_series(&s, 64, 0, s.len());
            let segment = state.materialize(start, end).unwrap();
            assert!(
                segment.same_data(&s.slice(start, end)),
                "[{start}, {end}) diverged from slice"
            );
        }
    }

    #[test]
    fn ring_evicts_oldest_and_errors_on_evicted_reads() {
        let s = series(20);
        let state = NodeState::from_series(&s, 8, 0, s.len());
        assert_eq!(state.first_retained(), 12);
        assert_eq!(state.occupancy(), 8);
        let tail = state.materialize(12, 20).unwrap();
        assert!(tail.same_data(&s.slice(12, 20)));
        let err = state.materialize(11, 20).unwrap_err();
        assert_eq!(
            err,
            StateError::Evicted {
                requested: 11,
                first_retained: 12
            }
        );
        // A fully out-of-range (hence empty) request is fine.
        assert_eq!(state.materialize(3, 3).unwrap().len(), 0);
        assert_eq!(state.materialize(25, 30).unwrap().len(), 0);
    }

    #[test]
    fn occupancy_is_bounded_by_capacity() {
        let mut state = NodeState::new(node(), 2, 4);
        for t in 0..100 {
            state.push(&[t as f64, -(t as f64)]).unwrap();
            assert!(state.occupancy() <= 4);
        }
        assert_eq!(state.high_water(), 4);
        assert_eq!(state.first_retained(), 96);
    }

    #[test]
    fn push_at_enforces_per_node_order() {
        let mut state = NodeState::new(node(), 1, 4);
        state.push_at(0, &[1.0]).unwrap();
        state.push_at(1, &[2.0]).unwrap();
        let err = state.push_at(3, &[4.0]).unwrap_err();
        assert_eq!(
            err,
            StateError::OutOfOrder {
                expected: 2,
                got: 3
            }
        );
        let err = state.push_at(1, &[2.0]).unwrap_err();
        assert_eq!(
            err,
            StateError::OutOfOrder {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn evict_below_advances_retention() {
        let mut state = NodeState::new(node(), 1, 8);
        for t in 0..6 {
            state.push(&[t as f64]).unwrap();
        }
        state.evict_below(4);
        assert_eq!(state.first_retained(), 4);
        assert!(state.materialize(3, 6).is_err());
        assert_eq!(state.materialize(4, 6).unwrap().len(), 2);
        // Clipped to next_t: eviction can never outrun the stream.
        state.evict_below(50);
        assert_eq!(state.first_retained(), 6);
        assert!(state.is_empty());
    }

    #[test]
    fn starting_at_replays_a_suffix() {
        let s = series(30);
        let state = NodeState::from_series(&s, 64, 10, 25);
        assert_eq!(state.first_retained(), 10);
        assert_eq!(state.next_t(), 25);
        let segment = state.materialize(10, 25).unwrap();
        assert!(segment.same_data(&s.slice(10, 25)));
    }

    #[test]
    fn missing_cells_round_trip_through_the_ring() {
        let s = series(15); // every 5th value of attribute 1 is NaN
        let state = NodeState::from_series(&s, 32, 0, s.len());
        let segment = state.materialize(0, 15).unwrap();
        assert!(segment.is_missing(1, 0));
        assert!(segment.is_missing(1, 5));
        assert!(!segment.is_missing(1, 1));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn malformed_rows_violate_the_contract() {
        let mut state = NodeState::new(node(), 3, 4);
        let _ = state.push(&[1.0, 2.0]);
    }
}
