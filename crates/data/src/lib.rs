//! Hierarchical network time-series data model.
//!
//! The paper (§3.1) studies data streams collected on a three-layer
//! mobility-network hierarchy: an RNC (`N_i`) contains cell towers / Node Bs
//! (`N_ij`), which contain sectors (antennas, `N_ijk`). Each sector emits a
//! time series of `v` attributes; analyses operate on the current `w`-step
//! window of the stream.
//!
//! This crate provides that model:
//!
//! * [`NodeId`] — fully-qualified sector address within the hierarchy;
//! * [`Topology`] — layer sizes plus enumeration and neighbour queries;
//! * [`TimeSeries`] — one sector's `v × T` stream, column-major with
//!   NaN-as-missing;
//! * [`Dataset`] — a collection of series with attribute metadata, plus
//!   record pooling (the paper computes EMD "treating each time instance as
//!   a separate data point");
//! * [`Window`] — a borrowed `w`-step history view `F^w_t`;
//! * [`NodeState`] / [`ArrivalRow`] — a bounded per-sector ring buffer over
//!   streaming arrivals, shared by the batch windowed mode and the
//!   `sd-serve` ingestion shards;
//! * [`DatasetPatch`] / [`CleanedView`] — sparse cell-edit logs and the
//!   copy-on-write cleaned view the experiment engine materializes from
//!   them (touched series cloned, untouched series borrowed).
//!
//! ```
//! use sd_data::{Dataset, NodeId, TimeSeries};
//!
//! let mut series = TimeSeries::new(NodeId::new(0, 1, 2), 3, 4);
//! series.set(0, 0, 10.0);
//! series.set_missing(1, 0);
//! assert!(series.is_missing(1, 0));
//!
//! let ds = Dataset::new(vec!["load", "volume", "ratio"], vec![series]).unwrap();
//! assert_eq!(ds.num_series(), 1);
//! assert_eq!(ds.num_attributes(), 3);
//! ```

#![forbid(unsafe_code)]
mod dataset;
mod node;
mod node_state;
mod patch;
mod series;
mod topology;
mod window;

pub use dataset::{AttributeMeta, DataError, Dataset};
pub use node::{NodeId, RncId, TowerId};
pub use node_state::{ArrivalRow, NodeState, StateError};
pub use patch::{CellEdit, CleanedView, DatasetPatch};
pub use series::{Record, TimeSeries};
pub use topology::Topology;
pub use window::Window;

/// Sentinel used to represent a missing (unpopulated) measurement.
///
/// NaN is the natural missing marker for telemetry: it propagates through
/// arithmetic and cannot be confused with any legitimate KPI value. All
/// comparisons in this workspace go through [`is_missing`] /
/// [`TimeSeries::is_missing`] rather than raw equality.
pub const MISSING: f64 = f64::NAN;

/// Whether a value represents a missing measurement.
#[inline]
pub fn is_missing(x: f64) -> bool {
    x.is_nan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_sentinel_is_detected() {
        assert!(is_missing(MISSING));
        assert!(is_missing(f64::NAN));
        assert!(!is_missing(0.0));
        assert!(!is_missing(f64::INFINITY));
    }
}
