use rand::Rng;

/// Priority sampling for subset-sum estimation (Duffield, Lund & Thorup,
/// the paper's reference \[5\]).
///
/// Each item of weight `w` receives priority `q = w / u` with `u ~ U(0,1)`;
/// the sampler keeps the `k` largest priorities. With `τ` the (k+1)-th
/// largest priority, `Σ max(w_i, τ)` over sampled subset members is an
/// unbiased estimator of the subset's weight sum.
#[derive(Debug, Clone)]
pub struct PrioritySampler<T> {
    k: usize,
    /// Kept entries `(priority, weight, item)`, sorted descending.
    entries: Vec<(f64, f64, T)>,
    /// The (k+1)-th largest priority seen so far.
    threshold: f64,
    overflowed: bool,
}

impl<T> PrioritySampler<T> {
    /// Creates a sampler keeping `k` items.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        PrioritySampler {
            k,
            entries: Vec::with_capacity(k + 1),
            threshold: 0.0,
            overflowed: false,
        }
    }

    /// Number of kept items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no items are kept.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers an item with weight `w > 0`.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, weight: f64, rng: &mut R) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.offer_with_priority(item, weight, weight / u);
    }

    /// Offers an item with an externally supplied priority.
    pub fn offer_with_priority(&mut self, item: T, weight: f64, priority: f64) {
        let pos = self.entries.partition_point(|&(p, _, _)| p >= priority);
        self.entries.insert(pos, (priority, weight, item));
        if self.entries.len() > self.k {
            let (evicted, _, _) = self.entries.pop().expect("len > k");
            self.threshold = self.threshold.max(evicted);
            self.overflowed = true;
        }
    }

    /// The kept items with weights, descending by priority.
    pub fn items(&self) -> impl Iterator<Item = (&T, f64)> {
        self.entries.iter().map(|(_, w, item)| (item, *w))
    }

    /// Estimates the total weight of items matching `predicate`:
    /// exact before overflow, `Σ max(w, τ)` after.
    pub fn estimate_subset_sum(&self, mut predicate: impl FnMut(&T) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|(_, _, item)| predicate(item))
            .map(|(_, w, _)| {
                if self.overflowed {
                    w.max(self.threshold)
                } else {
                    *w
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_before_overflow() {
        let mut s = PrioritySampler::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..4 {
            s.offer(i, 2.0, &mut rng);
        }
        assert_eq!(s.len(), 4);
        assert!((s.estimate_subset_sum(|_| true) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn keeps_largest_priorities() {
        let mut s = PrioritySampler::new(2);
        s.offer_with_priority("a", 1.0, 10.0);
        s.offer_with_priority("b", 1.0, 30.0);
        s.offer_with_priority("c", 1.0, 20.0);
        let kept: Vec<&str> = s.items().map(|(i, _)| *i).collect();
        assert_eq!(kept, vec!["b", "c"]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn estimator_is_unbiased_on_average() {
        let mut rng = StdRng::seed_from_u64(17);
        let weights: Vec<f64> = (0..300).map(|i| 1.0 + (i % 10) as f64).collect();
        let true_total: f64 = weights.iter().sum();
        let runs = 300;
        let mut acc = 0.0;
        for _ in 0..runs {
            let mut s = PrioritySampler::new(48);
            for (i, &w) in weights.iter().enumerate() {
                s.offer(i, w, &mut rng);
            }
            acc += s.estimate_subset_sum(|_| true);
        }
        let avg = acc / runs as f64;
        let rel_err = (avg - true_total).abs() / true_total;
        assert!(rel_err < 0.08, "relative error {rel_err}");
    }

    #[test]
    fn subset_estimates_partition_the_total() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut s = PrioritySampler::new(32);
        for i in 0..200 {
            s.offer(i, 1.0, &mut rng);
        }
        let evens = s.estimate_subset_sum(|i| i % 2 == 0);
        let odds = s.estimate_subset_sum(|i| i % 2 == 1);
        let all = s.estimate_subset_sum(|_| true);
        assert!((evens + odds - all).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_weight_panics() {
        let mut s = PrioritySampler::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        s.offer(0, f64::INFINITY, &mut rng);
    }
}
