use rand::Rng;

/// Bottom-k sketch over a weighted stream (Cohen & Kaplan, the paper's
/// reference \[4\]).
///
/// Each item gets the rank `r = u^(1/w)` with `u ~ U(0,1)`; the sketch
/// keeps the `k` smallest ranks. Subset sums are estimated with the
/// rank-conditioning estimator: an included item contributes
/// `w / (1 − τ^w)`-style inclusion-probability corrections; the standard
/// practical estimator uses the (k+1)-th smallest rank `τ` as threshold and
/// weights each kept item by `max(w, ln(1−τ)⁻¹…)`. Here we implement the
/// widely used priority-style estimator for bottom-k with exponential
/// ranks: rank `r = −ln(u)/w` (equivalent ordering), threshold `τ` =
/// (k+1)-th rank, and estimate `Σ max(w_i, 1/τ)` over kept subset members.
#[derive(Debug, Clone)]
pub struct BottomKSketch<T> {
    k: usize,
    /// Kept entries `(rank, weight, item)`, sorted ascending by rank.
    entries: Vec<(f64, f64, T)>,
    /// The smallest rank evicted so far (the (k+1)-th overall), if any.
    threshold: Option<f64>,
}

impl<T> BottomKSketch<T> {
    /// Creates a sketch keeping `k` items.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        BottomKSketch {
            k,
            entries: Vec::with_capacity(k + 1),
            threshold: None,
        }
    }

    /// Number of items currently kept (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch holds no items.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers an item with weight `w > 0`, drawing its rank from `rng`.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, weight: f64, rng: &mut R) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        // Exponential rank: smaller for heavier items on average.
        let rank = -u.ln() / weight;
        self.offer_with_rank(item, weight, rank);
    }

    /// Offers an item with an externally supplied rank (for deterministic
    /// tests and coordinated sketches).
    pub fn offer_with_rank(&mut self, item: T, weight: f64, rank: f64) {
        let pos = self.entries.partition_point(|&(r, _, _)| r <= rank);
        self.entries.insert(pos, (rank, weight, item));
        if self.entries.len() > self.k {
            let (evicted_rank, _, _) = self.entries.pop().expect("len > k");
            self.threshold = Some(match self.threshold {
                Some(t) => t.min(evicted_rank),
                None => evicted_rank,
            });
        }
    }

    /// The kept items with their weights, ascending by rank.
    pub fn items(&self) -> impl Iterator<Item = (&T, f64)> {
        self.entries.iter().map(|(_, w, item)| (item, *w))
    }

    /// Estimates the total weight of items matching `predicate`.
    ///
    /// Unbiased in expectation once the sketch has overflowed; before
    /// overflow (fewer than `k` items seen) it is the exact subset sum.
    pub fn estimate_subset_sum(&self, mut predicate: impl FnMut(&T) -> bool) -> f64 {
        match self.threshold {
            None => self
                .entries
                .iter()
                .filter(|(_, _, item)| predicate(item))
                .map(|(_, w, _)| w)
                .sum(),
            Some(tau) => self
                .entries
                .iter()
                .filter(|(_, _, item)| predicate(item))
                .map(|(_, w, _)| w.max(1.0 / tau))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_before_overflow() {
        let mut sketch = BottomKSketch::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            sketch.offer(i, (i + 1) as f64, &mut rng);
        }
        assert_eq!(sketch.len(), 5);
        let total = sketch.estimate_subset_sum(|_| true);
        assert!((total - 15.0).abs() < 1e-12);
        let evens = sketch.estimate_subset_sum(|i| i % 2 == 0);
        assert!((evens - 9.0).abs() < 1e-12); // weights 1 + 3 + 5
    }

    #[test]
    fn keeps_only_k_smallest_ranks() {
        let mut sketch = BottomKSketch::new(3);
        for i in 0..6 {
            sketch.offer_with_rank(i, 1.0, i as f64);
        }
        assert_eq!(sketch.len(), 3);
        let kept: Vec<i32> = sketch.items().map(|(i, _)| *i).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn heavier_items_are_kept_preferentially() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut kept_heavy = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let mut sketch = BottomKSketch::new(5);
            // One heavy item among 50 light ones.
            sketch.offer("heavy", 100.0, &mut rng);
            for i in 0..50 {
                sketch.offer("light", 1.0, &mut rng);
                let _ = i;
            }
            if sketch.items().any(|(item, _)| *item == "heavy") {
                kept_heavy += 1;
            }
        }
        assert!(
            kept_heavy > trials * 80 / 100,
            "heavy item kept only {kept_heavy}/{trials}"
        );
    }

    #[test]
    fn subset_sum_estimate_is_close_on_average() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 500;
        let true_total: f64 = (0..n).map(|i| 1.0 + (i % 7) as f64).sum();
        let mut sum_est = 0.0;
        let runs = 200;
        for _ in 0..runs {
            let mut sketch = BottomKSketch::new(64);
            for i in 0..n {
                sketch.offer(i, 1.0 + (i % 7) as f64, &mut rng);
            }
            sum_est += sketch.estimate_subset_sum(|_| true);
        }
        let avg = sum_est / runs as f64;
        let rel_err = (avg - true_total).abs() / true_total;
        assert!(rel_err < 0.1, "relative error {rel_err}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let mut sketch = BottomKSketch::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        sketch.offer(1, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        BottomKSketch::<i32>::new(0);
    }
}
