use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_data::Dataset;
use std::collections::BTreeMap;

/// Topology-preserving sampler: draws **towers** with replacement and takes
/// every sector on each drawn tower.
///
/// This is the §6.1 future-work direction implemented: "glitches tend to
/// cluster both temporally as well as topologically (spatially) because
/// they are often driven by physical phenomena related to collocated
/// equipment like antennae on a cell tower. Our future work focuses on
/// developing sampling schemes for preserving network topology." Sampling
/// whole towers keeps collocated sectors together so spatial glitch
/// correlation survives into the replication samples.
#[derive(Debug, Clone, Copy)]
pub struct TowerStratifiedSampler {
    /// Number of towers drawn per sample.
    pub towers: usize,
    /// Base seed (per-replication derivation as in `ReplicationSampler`).
    pub seed: u64,
}

impl TowerStratifiedSampler {
    /// Creates a sampler drawing `towers` towers per sample.
    pub fn new(towers: usize, seed: u64) -> Self {
        assert!(towers > 0, "tower count must be positive");
        TowerStratifiedSampler { towers, seed }
    }

    /// Draws a topology-preserving sample for `replication`.
    ///
    /// Series are grouped by `(rnc, tower)`; each drawn tower contributes
    /// all of its series (in stable node order).
    pub fn sample(&self, pool: &Dataset, replication: usize) -> Dataset {
        assert!(!pool.is_empty(), "pool is empty");
        // Group series indices by tower.
        let mut towers: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for (i, s) in pool.series().iter().enumerate() {
            let node = s.node();
            towers.entry((node.rnc, node.tower)).or_default().push(i);
        }
        let keys: Vec<(u32, u32)> = towers.keys().copied().collect();
        let mut z = self
            .seed
            .wrapping_add((replication as u64).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        let mut rng = StdRng::seed_from_u64(z ^ (z >> 27));

        let mut indices = Vec::new();
        for _ in 0..self.towers {
            let key = keys[rng.gen_range(0..keys.len())];
            indices.extend_from_slice(&towers[&key]);
        }
        pool.subset(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{TimeSeries, Topology};

    fn pool() -> Dataset {
        let topo = Topology::new(2, 3, 4); // 6 towers, 24 sectors
        let series = topo
            .sectors()
            .map(|node| {
                let mut s = TimeSeries::new(node, 1, 2);
                s.set(0, 0, 1.0);
                s.set(0, 1, 2.0);
                s
            })
            .collect();
        Dataset::new(vec!["a"], series).unwrap()
    }

    #[test]
    fn sample_contains_whole_towers() {
        let sampler = TowerStratifiedSampler::new(3, 7);
        let sample = sampler.sample(&pool(), 0);
        assert_eq!(sample.num_series(), 12, "3 towers × 4 sectors");
        // Every drawn tower must appear with all four sectors. BTreeMap
        // keeps even this assertion walk deterministic (sd-lint D001).
        let mut by_tower: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for s in sample.series() {
            *by_tower.entry((s.node().rnc, s.node().tower)).or_default() += 1;
        }
        for (&tower, &count) in &by_tower {
            assert_eq!(count % 4, 0, "tower {tower:?} split across the sample");
        }
    }

    #[test]
    fn deterministic_per_replication() {
        let sampler = TowerStratifiedSampler::new(2, 9);
        let p = pool();
        let a = sampler.sample(&p, 5);
        let b = sampler.sample(&p, 5);
        assert!(a.same_data(&b));
    }

    #[test]
    fn different_replications_differ() {
        let sampler = TowerStratifiedSampler::new(2, 9);
        let p = pool();
        // Across several replications at least one sample should differ.
        let base = sampler.sample(&p, 0);
        let differs = (1..10).any(|r| !sampler.sample(&p, r).same_data(&base));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_towers_panics() {
        TowerStratifiedSampler::new(0, 1);
    }
}

#[cfg(test)]
mod pinned {
    use super::*;
    use sd_data::{TimeSeries, Topology};

    /// Bit-identity regression pinned before the D001 cleanup: the drawn
    /// tower sequence (and thus the sampled node order) must stay exactly
    /// what it was — the sampler's own result path always went through a
    /// seeded RNG over a `BTreeMap`, and this proves the test-side map
    /// swap changed nothing observable.
    #[test]
    fn sample_nodes_are_pinned() {
        let topo = Topology::new(2, 3, 4);
        let series = topo
            .sectors()
            .map(|node| {
                let mut s = TimeSeries::new(node, 1, 2);
                s.set(0, 0, 1.0);
                s.set(0, 1, 2.0);
                s
            })
            .collect();
        let pool = Dataset::new(vec!["a"], series).unwrap();
        let sample = TowerStratifiedSampler::new(3, 7).sample(&pool, 0);
        let nodes: Vec<(u32, u32, u32)> = sample
            .series()
            .iter()
            .map(|s| (s.node().rnc, s.node().tower, s.node().sector))
            .collect();
        assert_eq!(
            nodes,
            vec![
                (0, 2, 0),
                (0, 2, 1),
                (0, 2, 2),
                (0, 2, 3),
                (0, 1, 0),
                (0, 1, 1),
                (0, 1, 2),
                (0, 1, 3),
                (1, 1, 0),
                (1, 1, 1),
                (1, 1, 2),
                (1, 1, 3),
            ]
        );
    }
}
