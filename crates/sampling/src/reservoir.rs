use rand::Rng;

/// Classic reservoir sampling (Vitter's Algorithm R): a uniform sample of
/// `k` items from a stream of unknown length, one pass, O(k) memory.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    k: usize,
    seen: usize,
    reservoir: Vec<T>,
}

impl<T> ReservoirSampler<T> {
    /// Creates a reservoir of capacity `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        ReservoirSampler {
            k,
            seen: 0,
            reservoir: Vec::with_capacity(k),
        }
    }

    /// Number of stream items observed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The current sample (uniform over everything seen).
    pub fn sample(&self) -> &[T] {
        &self.reservoir
    }

    /// Offers the next stream item.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.reservoir.len() < self.k {
            self.reservoir.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if j < self.k {
                self.reservoir[j] = item;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_before_evicting() {
        let mut r = ReservoirSampler::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..3 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample(), &[0, 1, 2]);
        assert_eq!(r.seen(), 3);
    }

    #[test]
    fn sample_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20usize;
        let k = 4usize;
        let runs = 40_000;
        let mut counts = vec![0usize; n];
        for _ in 0..runs {
            let mut r = ReservoirSampler::new(k);
            for i in 0..n {
                r.offer(i, &mut rng);
            }
            for &i in r.sample() {
                counts[i] += 1;
            }
        }
        let expected = runs as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.08, "item {i}: count {c}, expected {expected}");
        }
    }

    #[test]
    fn keeps_k_items_regardless_of_stream_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = ReservoirSampler::new(5);
        for i in 0..10_000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 5);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReservoirSampler::<i32>::new(0);
    }
}
