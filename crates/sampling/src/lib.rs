//! Sampling substrate for the experimental framework (§2.1.1).
//!
//! The framework "consists of repeated evaluations of strategies on small
//! samples of data": `R` replications, each a test pair `{D^i, D^i_I}` of
//! `B` series sampled **with replacement** — entire time series, never
//! individual points, to preserve temporal structure (§4.2).
//!
//! Beyond the replication sampler the crate implements the sampling schemes
//! the paper cites for scaling to very large databases: bottom-k sketches
//! (Cohen & Kaplan, ref \[4\]), priority sampling for subset sums (Duffield,
//! Lund & Thorup, ref \[5\]), classic reservoir sampling (Olken's
//! random-sampling-from-databases lineage, ref \[11\]), weighted sampling via
//! the alias method, and a tower-stratified sampler that preserves network
//! topology — the §6.1 future-work direction.

#![forbid(unsafe_code)]
mod bottomk;
mod priority;
mod replicate;
mod reservoir;
mod stratified;
mod weighted;

pub use bottomk::BottomKSketch;
pub use priority::PrioritySampler;
pub use replicate::{ReplicationSampler, TestPair};
pub use reservoir::ReservoirSampler;
pub use stratified::TowerStratifiedSampler;
pub use weighted::WeightedSampler;
