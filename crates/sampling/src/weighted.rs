use rand::Rng;

/// Weighted with-replacement sampling via Walker's alias method: O(n)
/// construction, O(1) per draw.
///
/// The framework lets users gear sampling "to a user's specific needs by
/// differential weighting of subsets of data" (§2.1.1); this is the
/// mechanism.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    /// Scaled probability in `[0, 1]` of choosing the "home" index.
    prob: Vec<f64>,
    /// Fallback index when the home draw fails.
    alias: Vec<usize>,
}

impl WeightedSampler {
    /// Builds the alias table. Weights must be non-negative and finite with
    /// a positive sum.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must have positive sum");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical stragglers round to 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        WeightedSampler { prob, alias }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the sampler has no items (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Draws `count` indices with replacement.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 7.0];
        let sampler = WeightedSampler::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "index {i}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_items_are_never_drawn() {
        let sampler = WeightedSampler::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_item() {
        let sampler = WeightedSampler::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.len(), 1);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn sample_many_length() {
        let sampler = WeightedSampler::new(&[1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample_many(17, &mut rng).len(), 17);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        WeightedSampler::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        WeightedSampler::new(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        WeightedSampler::new(&[1.0, -2.0]);
    }
}
