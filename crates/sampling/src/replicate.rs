use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_data::Dataset;

/// One replication's test pair `{D^i, D^i_I}` (§2.1.1).
#[derive(Debug, Clone)]
pub struct TestPair {
    /// The dirty sample `D^i`.
    pub dirty: Dataset,
    /// The ideal sample `D^i_I`.
    pub ideal: Dataset,
    /// Which replication this pair belongs to.
    pub replication: usize,
}

/// Samples test pairs of entire series, with replacement, deterministically
/// per `(seed, replication)` so experiments are reproducible and
/// replications are independent.
///
/// "We maintained the temporal structure by sampling entire time series and
/// not individual data points" (§4.2).
#[derive(Debug, Clone, Copy)]
pub struct ReplicationSampler {
    /// Number of series `B` drawn into each side of a pair.
    pub sample_size: usize,
    /// Base seed; replication `i` uses an RNG derived from `(seed, i)`.
    pub seed: u64,
}

impl ReplicationSampler {
    /// Creates a sampler.
    pub fn new(sample_size: usize, seed: u64) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        ReplicationSampler { sample_size, seed }
    }

    /// Draws the test pair for replication `replication`.
    ///
    /// `dirty_pool` and `ideal_pool` are the partitions of the full data
    /// (the dirty part of `D` and the identified ideal set `D_I`).
    pub fn sample_pair(
        &self,
        dirty_pool: &Dataset,
        ideal_pool: &Dataset,
        replication: usize,
    ) -> TestPair {
        assert!(!dirty_pool.is_empty(), "dirty pool is empty");
        assert!(!ideal_pool.is_empty(), "ideal pool is empty");
        let mut rng = self.replication_rng(replication);
        let dirty = self.draw(dirty_pool, &mut rng);
        let ideal = self.draw(ideal_pool, &mut rng);
        TestPair {
            dirty,
            ideal,
            replication,
        }
    }

    /// Draws `sample_size` series with replacement from one pool.
    pub fn sample_one(&self, pool: &Dataset, replication: usize) -> Dataset {
        assert!(!pool.is_empty(), "pool is empty");
        let mut rng = self.replication_rng(replication);
        self.draw(pool, &mut rng)
    }

    fn draw(&self, pool: &Dataset, rng: &mut StdRng) -> Dataset {
        let n = pool.num_series();
        let indices: Vec<usize> = (0..self.sample_size).map(|_| rng.gen_range(0..n)).collect();
        pool.subset(&indices)
    }

    fn replication_rng(&self, replication: usize) -> StdRng {
        // SplitMix-style mix keeps per-replication streams decorrelated.
        let mut z = self
            .seed
            .wrapping_add((replication as u64).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    fn pool(n: usize, tag: f64) -> Dataset {
        let series = (0..n)
            .map(|i| {
                let mut s = TimeSeries::new(NodeId::new(0, 0, i as u32), 1, 3);
                for t in 0..3 {
                    s.set(0, t, tag + i as f64);
                }
                s
            })
            .collect();
        Dataset::new(vec!["a"], series).unwrap()
    }

    #[test]
    fn pair_has_requested_size() {
        let sampler = ReplicationSampler::new(10, 7);
        let pair = sampler.sample_pair(&pool(5, 0.0), &pool(3, 100.0), 0);
        assert_eq!(pair.dirty.num_series(), 10);
        assert_eq!(pair.ideal.num_series(), 10);
        assert_eq!(pair.replication, 0);
    }

    #[test]
    fn sampling_is_deterministic_per_replication() {
        let sampler = ReplicationSampler::new(8, 42);
        let d = pool(20, 0.0);
        let i = pool(20, 100.0);
        let a = sampler.sample_pair(&d, &i, 3);
        let b = sampler.sample_pair(&d, &i, 3);
        assert!(a.dirty.same_data(&b.dirty));
        assert!(a.ideal.same_data(&b.ideal));
        let c = sampler.sample_pair(&d, &i, 4);
        assert!(!a.dirty.same_data(&c.dirty));
    }

    #[test]
    fn replacement_duplicates_when_pool_is_small() {
        let sampler = ReplicationSampler::new(50, 1);
        let sample = sampler.sample_one(&pool(2, 0.0), 0);
        assert_eq!(sample.num_series(), 50);
        // Only two distinct values can appear.
        let mut values: Vec<f64> = sample.series().iter().map(|s| s.get(0, 0)).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        assert!(values.len() <= 2);
    }

    #[test]
    fn draws_cover_the_pool() {
        let sampler = ReplicationSampler::new(200, 11);
        let sample = sampler.sample_one(&pool(10, 0.0), 0);
        let mut seen = [false; 10];
        for s in sample.series() {
            seen[s.get(0, 0) as usize] = true;
        }
        assert!(
            seen.iter().filter(|&&x| x).count() >= 9,
            "with-replacement draws should cover nearly all of a small pool"
        );
    }

    #[test]
    #[should_panic(expected = "pool is empty")]
    fn empty_pool_panics() {
        let sampler = ReplicationSampler::new(5, 1);
        let empty = Dataset::empty(vec!["a"]).unwrap();
        sampler.sample_one(&empty, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_size_panics() {
        ReplicationSampler::new(0, 1);
    }
}
