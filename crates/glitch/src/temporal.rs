use crate::{GlitchMatrix, GlitchType};
use sd_stats::{autocorrelation, pearson};

/// Spatio-temporal glitch statistics (§6.1): the glitch sequence of a
/// series treated as a multivariate counting process.
///
/// "Glitches tend to cluster both temporally as well as topologically
/// (spatially) because they are often driven by physical phenomena related
/// to collocated equipment." These statistics quantify that clustering:
/// burstiness via the Fano factor of windowed counts, persistence via
/// lag-1 autocorrelation of the indicator process, and cross-type linkage
/// via the correlation of indicator series.
#[derive(Debug, Clone, PartialEq)]
pub struct CountingProcess {
    /// Record-level indicator per time step (1.0 = glitch present).
    indicator: Vec<f64>,
}

impl CountingProcess {
    /// Builds the record-level counting process of one glitch type over a
    /// series' annotations.
    pub fn from_matrix(matrix: &GlitchMatrix, glitch: GlitchType) -> Self {
        let indicator = (0..matrix.len())
            .map(|t| {
                if matrix.record_has(glitch, t) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        CountingProcess { indicator }
    }

    /// Pools several series into one aggregate process (per-step counts).
    pub fn aggregate(matrices: &[GlitchMatrix], glitch: GlitchType, horizon: usize) -> Self {
        let counts = crate::counts_per_time(matrices, glitch, horizon);
        CountingProcess {
            indicator: counts.into_iter().map(|c| c as f64).collect(),
        }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.indicator.len()
    }

    /// Whether the process covers zero steps.
    pub fn is_empty(&self) -> bool {
        self.indicator.is_empty()
    }

    /// The raw per-step values.
    pub fn values(&self) -> &[f64] {
        &self.indicator
    }

    /// Total number of events `N(T)`.
    pub fn total(&self) -> f64 {
        self.indicator.iter().sum()
    }

    /// Cumulative counting function `N(t)`.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.indicator
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    /// Lag-`k` autocorrelation of the process (None when degenerate).
    /// Positive values at small lags are the temporal-clustering signature.
    pub fn autocorrelation(&self, lag: usize) -> Option<f64> {
        autocorrelation(&self.indicator, lag)
    }

    /// Fano factor of windowed counts: `Var(N_w) / E(N_w)` over
    /// non-overlapping windows of `window` steps. A Poisson (memoryless)
    /// process gives 1; bursty processes give > 1.
    pub fn fano_factor(&self, window: usize) -> Option<f64> {
        assert!(window > 0, "window must be positive");
        let num_windows = self.indicator.len() / window;
        if num_windows < 2 {
            return None;
        }
        let counts: Vec<f64> = (0..num_windows)
            .map(|w| self.indicator[w * window..(w + 1) * window].iter().sum())
            .collect();
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return None;
        }
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0);
        Some(var / mean)
    }

    /// Pearson correlation with another process of equal length —
    /// the cross-type linkage statistic (e.g. missing vs inconsistent).
    pub fn cross_correlation(&self, other: &CountingProcess) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        pearson(&self.indicator, &other.indicator)
    }

    /// Mean inter-arrival gap between events (None with < 2 events).
    /// For a series-level indicator process this is the mean dry spell
    /// between glitch records.
    pub fn mean_interarrival(&self) -> Option<f64> {
        let times: Vec<usize> = self
            .indicator
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0.0)
            .map(|(t, _)| t)
            .collect();
        if times.len() < 2 {
            return None;
        }
        let gaps: f64 = times.windows(2).map(|w| (w[1] - w[0]) as f64).sum();
        Some(gaps / (times.len() - 1) as f64)
    }
}

/// Tower-level spatial clustering: the fraction of glitch mass explained
/// by the dirtiest half of towers. Glitches spread uniformly over towers
/// give ≈ 0.5; topologically clustered glitches give values near 1.
///
/// `tower_of[i]` maps series `i` to its tower index.
pub fn spatial_concentration(
    matrices: &[GlitchMatrix],
    tower_of: &[usize],
    glitch: GlitchType,
) -> Option<f64> {
    if matrices.len() != tower_of.len() || matrices.is_empty() {
        return None;
    }
    let num_towers = tower_of.iter().max()? + 1;
    let mut per_tower = vec![0.0f64; num_towers];
    let mut total = 0.0;
    for (m, &tower) in matrices.iter().zip(tower_of) {
        let c = m.count_records(glitch) as f64;
        per_tower[tower] += c;
        total += c;
    }
    if total == 0.0 {
        return None;
    }
    per_tower.sort_by(|a, b| b.total_cmp(a));
    let top_half: f64 = per_tower.iter().take(num_towers.div_ceil(2)).sum();
    Some(top_half / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty_matrix() -> GlitchMatrix {
        // Two dense bursts separated by a long gap.
        let mut m = GlitchMatrix::new(1, 60);
        for t in 5..12 {
            m.set(0, GlitchType::Missing, t);
        }
        for t in 40..48 {
            m.set(0, GlitchType::Missing, t);
        }
        m
    }

    fn spread_matrix() -> GlitchMatrix {
        // The same 15 events spread evenly.
        let mut m = GlitchMatrix::new(1, 60);
        for k in 0..15 {
            m.set(0, GlitchType::Missing, k * 4);
        }
        m
    }

    #[test]
    fn cumulative_counts_events() {
        let p = CountingProcess::from_matrix(&bursty_matrix(), GlitchType::Missing);
        assert_eq!(p.len(), 60);
        assert_eq!(p.total(), 15.0);
        let cum = p.cumulative();
        assert_eq!(cum[59], 15.0);
        assert!(cum.windows(2).all(|w| w[1] >= w[0]), "N(t) is monotone");
    }

    #[test]
    fn bursty_process_has_higher_fano_factor() {
        let bursty = CountingProcess::from_matrix(&bursty_matrix(), GlitchType::Missing);
        let spread = CountingProcess::from_matrix(&spread_matrix(), GlitchType::Missing);
        let f_bursty = bursty.fano_factor(10).unwrap();
        let f_spread = spread.fano_factor(10).unwrap();
        assert!(
            f_bursty > f_spread,
            "bursty {f_bursty} should exceed spread {f_spread}"
        );
        assert!(f_bursty > 1.0, "bursts are over-dispersed");
    }

    #[test]
    fn bursty_process_is_autocorrelated() {
        let bursty = CountingProcess::from_matrix(&bursty_matrix(), GlitchType::Missing);
        assert!(bursty.autocorrelation(1).unwrap() > 0.5);
    }

    #[test]
    fn cross_correlation_detects_co_occurrence() {
        let mut m = GlitchMatrix::new(1, 40);
        for t in (0..40).step_by(3) {
            m.set(0, GlitchType::Missing, t);
            m.set(0, GlitchType::Inconsistent, t); // perfectly linked
        }
        let a = CountingProcess::from_matrix(&m, GlitchType::Missing);
        let b = CountingProcess::from_matrix(&m, GlitchType::Inconsistent);
        assert!((a.cross_correlation(&b).unwrap() - 1.0).abs() < 1e-12);
        let empty = CountingProcess::from_matrix(&m, GlitchType::Outlier);
        assert_eq!(a.cross_correlation(&empty), None, "degenerate correlate");
    }

    #[test]
    fn interarrival_gap() {
        let spread = CountingProcess::from_matrix(&spread_matrix(), GlitchType::Missing);
        assert!((spread.mean_interarrival().unwrap() - 4.0).abs() < 1e-12);
        let empty = CountingProcess::from_matrix(&GlitchMatrix::new(1, 10), GlitchType::Missing);
        assert_eq!(empty.mean_interarrival(), None);
    }

    #[test]
    fn aggregate_pools_series() {
        let p = CountingProcess::aggregate(
            &[bursty_matrix(), spread_matrix()],
            GlitchType::Missing,
            60,
        );
        assert_eq!(p.total(), 30.0);
    }

    #[test]
    fn spatial_concentration_separates_clustered_from_uniform() {
        // 4 towers; all glitches on towers 0 and 1.
        let clustered = vec![
            bursty_matrix(),
            bursty_matrix(),
            GlitchMatrix::new(1, 60),
            GlitchMatrix::new(1, 60),
        ];
        let towers = vec![0, 1, 2, 3];
        let c = spatial_concentration(&clustered, &towers, GlitchType::Missing).unwrap();
        assert!((c - 1.0).abs() < 1e-12, "all mass on the dirtiest half");

        let uniform = vec![
            spread_matrix(),
            spread_matrix(),
            spread_matrix(),
            spread_matrix(),
        ];
        let u = spatial_concentration(&uniform, &towers, GlitchType::Missing).unwrap();
        assert!((u - 0.5).abs() < 1e-12);
        assert!(spatial_concentration(&uniform, &towers, GlitchType::Outlier).is_none());
    }
}
