//! Glitch detection and scoring (§2.1.3, §3.2–3.4 of the paper).
//!
//! A *glitch* is a detectable data-quality defect. The paper's case study
//! tracks three types — missing values, constraint inconsistencies, and
//! 3-σ outliers — and annotates every cell of the `n × v` data matrix with
//! a glitch bit vector `g_ij(k)`. This crate provides:
//!
//! * [`GlitchType`] — the glitch taxonomy (`m = 3` types, extensible);
//! * [`GlitchMatrix`] — the per-series `v × m × T` bit tensor `G_t`;
//! * [`ConstraintSet`] — declarative inconsistency rules, including the
//!   paper's cross-attribute rule ("Attribute 1 should not be populated if
//!   Attribute 3 is missing");
//! * [`OutlierDetector`] — 3-σ limits calibrated on the ideal data set
//!   `D_I`, with optional attribute transforms and a p-value output mode;
//! * [`GlitchDetector`] — the orchestrator producing annotations for a
//!   whole [`Dataset`];
//! * [`GlitchIndex`] — the weighted glitch score
//!   `G(D) = I₁ₓᵥ [Σ_ijk Σ_t G_t,ijk / T_ijk] W`;
//! * [`GlitchReport`] — record-level percentages (the Table 1 quantities)
//!   and per-time-step counts (the Figure 3 series).

#![forbid(unsafe_code)]
mod constraints;
mod detector;
mod index;
mod matrix;
mod report;
mod temporal;
mod types;

pub use constraints::{Constraint, ConstraintSet};
pub use detector::{GlitchDetector, OutlierDetector, WindowedOutlierDetector};
pub use index::{GlitchIndex, GlitchWeights};
pub use matrix::GlitchMatrix;
pub use report::{co_occurrence, counts_per_time, CoOccurrence, GlitchReport};
pub use temporal::{spatial_concentration, CountingProcess};
pub use types::GlitchType;

use sd_data::Dataset;

/// Detects all glitches in `dataset` with the given detector configuration,
/// returning one [`GlitchMatrix`] per series (aligned by index).
pub fn detect_all(detector: &GlitchDetector, dataset: &Dataset) -> Vec<GlitchMatrix> {
    dataset
        .series()
        .iter()
        .map(|s| detector.detect_series(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    #[test]
    fn end_to_end_detection_smoke() {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 2, 3);
        s.set(0, 0, 1.0);
        s.set(0, 1, -1.0); // violates NonNegative
        s.set(1, 0, 0.5);
        s.set(1, 1, 0.5);
        s.set(1, 2, 0.5);
        // (0, 2) left missing.
        let ds = Dataset::new(vec!["a", "b"], vec![s]).unwrap();
        let detector = GlitchDetector::new(
            ConstraintSet::new(vec![Constraint::NonNegative { attr: 0 }]),
            None,
        );
        let matrices = detect_all(&detector, &ds);
        assert_eq!(matrices.len(), 1);
        let g = &matrices[0];
        assert!(g.get(0, GlitchType::Missing, 2));
        assert!(g.get(0, GlitchType::Inconsistent, 1));
        assert!(!g.get(1, GlitchType::Missing, 0));
    }
}
