use crate::{GlitchMatrix, GlitchType};

/// User-supplied weights `ω_k` for the glitch types (§2.1.3).
///
/// The paper's experiments weight missing and inconsistent values 0.25 each
/// and outliers 0.5 (§5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchWeights {
    /// Weight of missing-value glitches.
    pub missing: f64,
    /// Weight of inconsistency glitches.
    pub inconsistent: f64,
    /// Weight of outlier glitches.
    pub outlier: f64,
}

impl GlitchWeights {
    /// The paper's weights: (0.25, 0.25, 0.5).
    pub fn paper() -> Self {
        GlitchWeights {
            missing: 0.25,
            inconsistent: 0.25,
            outlier: 0.5,
        }
    }

    /// Equal weights (1, 1, 1) — raw glitch counting.
    pub fn uniform() -> Self {
        GlitchWeights {
            missing: 1.0,
            inconsistent: 1.0,
            outlier: 1.0,
        }
    }

    /// The weight of a glitch type.
    pub fn weight(&self, g: GlitchType) -> f64 {
        match g {
            GlitchType::Missing => self.missing,
            GlitchType::Inconsistent => self.inconsistent,
            GlitchType::Outlier => self.outlier,
        }
    }

    /// Validates that every weight is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        GlitchType::ALL
            .iter()
            .all(|&g| self.weight(g).is_finite() && self.weight(g) >= 0.0)
    }
}

impl Default for GlitchWeights {
    fn default() -> Self {
        GlitchWeights::paper()
    }
}

/// The weighted glitch index of §3.4:
///
/// `G(D) = I₁ₓᵥ [ Σ_ijk ( Σ_t G_t,ijk / T_ijk ) ] W`
///
/// Each node's bit tensor is summed over time and **normalized by that
/// node's series length** `T_ijk`, "to adjust for the amount of data
/// available at each node, to ensure that it contributes equally to the
/// overall glitch score"; the per-node scores are then summed over nodes,
/// attributes, and weighted over glitch types.
#[derive(Debug, Clone, Copy)]
pub struct GlitchIndex {
    weights: GlitchWeights,
}

impl GlitchIndex {
    /// Creates an index with the given weights.
    pub fn new(weights: GlitchWeights) -> Self {
        assert!(weights.is_valid(), "glitch weights must be non-negative");
        GlitchIndex { weights }
    }

    /// The weights in use.
    pub fn weights(&self) -> GlitchWeights {
        self.weights
    }

    /// Per-node normalized score `(Σ_t Σ_a G_t) · W / T` for one series.
    /// Empty series score 0.
    pub fn node_score(&self, g: &GlitchMatrix) -> f64 {
        if g.is_empty() {
            return 0.0;
        }
        let t = g.len() as f64;
        GlitchType::ALL
            .iter()
            .map(|&k| self.weights.weight(k) * g.count_cells(k) as f64 / t)
            .sum()
    }

    /// The data-set glitch index: sum of node scores (the literal §3.4
    /// formula — grows with the number of series).
    pub fn dataset_score(&self, matrices: &[GlitchMatrix]) -> f64 {
        matrices.iter().map(|g| self.node_score(g)).sum()
    }

    /// Sample-size-invariant glitch score: `100 × mean(node score)`.
    ///
    /// The paper plots B = 100 and B = 500 panels on the same 0–30
    /// improvement axis (Figs. 6–7), so its reported improvement cannot be
    /// the raw sum over nodes; normalizing by the number of series (and
    /// expressing in percentage points) reproduces that invariance.
    pub fn normalized_score(&self, matrices: &[GlitchMatrix]) -> f64 {
        if matrices.is_empty() {
            return 0.0;
        }
        100.0 * self.dataset_score(matrices) / matrices.len() as f64
    }

    /// Glitch improvement `G(D) − G(D_C)` between dirty and cleaned
    /// annotations (positive = cleaner), on the sample-size-invariant
    /// [`GlitchIndex::normalized_score`] scale.
    pub fn improvement(&self, dirty: &[GlitchMatrix], cleaned: &[GlitchMatrix]) -> f64 {
        self.normalized_score(dirty) - self.normalized_score(cleaned)
    }

    /// Ranks series by node score, descending (dirtiest first) —
    /// the ranking used for cost-proxy partial cleaning (§5.2).
    /// Returns series indices.
    pub fn rank_dirtiest(&self, matrices: &[GlitchMatrix]) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = matrices
            .iter()
            .enumerate()
            .map(|(i, g)| (i, self.node_score(g)))
            .collect();
        // Stable ordering: score descending, index ascending on ties.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.into_iter().map(|(i, _)| i).collect()
    }
}

impl Default for GlitchIndex {
    fn default() -> Self {
        GlitchIndex::new(GlitchWeights::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with(
        missing: usize,
        inconsistent: usize,
        outlier: usize,
        len: usize,
    ) -> GlitchMatrix {
        let mut g = GlitchMatrix::new(1, len);
        for t in 0..missing {
            g.set(0, GlitchType::Missing, t);
        }
        for t in 0..inconsistent {
            g.set(0, GlitchType::Inconsistent, t);
        }
        for t in 0..outlier {
            g.set(0, GlitchType::Outlier, t);
        }
        g
    }

    #[test]
    fn node_score_weights_and_normalizes() {
        let idx = GlitchIndex::new(GlitchWeights::paper());
        let g = matrix_with(2, 4, 1, 10);
        // (0.25*2 + 0.25*4 + 0.5*1) / 10 = 2.0 / 10.
        assert!((idx.node_score(&g) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn normalization_equalizes_node_lengths() {
        let idx = GlitchIndex::default();
        // Same glitch *fraction*, different lengths → same score.
        let short = matrix_with(1, 0, 0, 10);
        let long = matrix_with(10, 0, 0, 100);
        assert!((idx.node_score(&short) - idx.node_score(&long)).abs() < 1e-12);
    }

    #[test]
    fn dataset_score_sums_nodes() {
        let idx = GlitchIndex::new(GlitchWeights::uniform());
        let a = matrix_with(1, 0, 0, 10); // 0.1
        let b = matrix_with(0, 2, 0, 10); // 0.2
        assert!((idx.dataset_score(&[a, b]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_positive_when_cleaned() {
        let idx = GlitchIndex::default();
        let dirty = vec![matrix_with(5, 5, 5, 10)];
        let clean = vec![matrix_with(0, 1, 0, 10)];
        assert!(idx.improvement(&dirty, &clean) > 0.0);
        assert_eq!(idx.improvement(&dirty, &dirty), 0.0);
    }

    #[test]
    fn rank_dirtiest_orders_by_score() {
        let idx = GlitchIndex::new(GlitchWeights::uniform());
        let clean = matrix_with(0, 0, 0, 10);
        let medium = matrix_with(3, 0, 0, 10);
        let filthy = matrix_with(9, 9, 9, 10);
        let order = idx.rank_dirtiest(&[clean, filthy, medium]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn rank_is_stable_on_ties() {
        let idx = GlitchIndex::default();
        let a = matrix_with(1, 0, 0, 10);
        let b = matrix_with(1, 0, 0, 10);
        assert_eq!(idx.rank_dirtiest(&[a, b]), vec![0, 1]);
    }

    #[test]
    fn empty_matrix_scores_zero() {
        let idx = GlitchIndex::default();
        assert_eq!(idx.node_score(&GlitchMatrix::new(3, 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn invalid_weights_rejected() {
        GlitchIndex::new(GlitchWeights {
            missing: -1.0,
            inconsistent: 0.0,
            outlier: 0.0,
        });
    }

    #[test]
    fn weights_accessors() {
        let w = GlitchWeights::paper();
        assert_eq!(w.weight(GlitchType::Missing), 0.25);
        assert_eq!(w.weight(GlitchType::Outlier), 0.5);
        assert!(w.is_valid());
        assert_eq!(GlitchWeights::default(), w);
    }
}
