use crate::{ConstraintSet, GlitchMatrix, GlitchType};
use sd_data::{Dataset, TimeSeries, Window};
use sd_stats::{AttributeTransform, Summary};

/// 3-σ outlier detector calibrated on the ideal data set `D_I` (§4.1).
///
/// For each attribute the limits are `mean ± k·σ` of the pooled ideal
/// values, computed **in the working space** of that attribute's transform
/// (the paper shows the log transform flips which tail is flagged, §5.3).
/// The detector also offers the paper's "alternatively" output: a two-sided
/// Gaussian p-value per cell instead of a hard flag.
#[derive(Debug, Clone)]
pub struct OutlierDetector {
    /// Per-attribute `(lo, hi)` limits in working space.
    limits: Vec<(f64, f64)>,
    /// Per-attribute working-space `(mean, std)` for p-values.
    moments: Vec<(f64, f64)>,
    /// Per-attribute transform applied before comparison.
    transforms: Vec<AttributeTransform>,
    /// The σ multiplier `k`.
    k: f64,
}

impl OutlierDetector {
    /// Fits `k`-σ limits to the pooled per-attribute values of `ideal`,
    /// each transformed by the matching entry of `transforms`.
    ///
    /// Attributes whose ideal sample is empty get infinite limits (nothing
    /// is flagged).
    pub fn fit(ideal: &Dataset, transforms: &[AttributeTransform], k: f64) -> Self {
        assert_eq!(
            transforms.len(),
            ideal.num_attributes(),
            "one transform per attribute required"
        );
        assert!(k > 0.0, "sigma multiplier must be positive");
        let mut limits = Vec::with_capacity(ideal.num_attributes());
        let mut moments = Vec::with_capacity(ideal.num_attributes());
        for (attr, tf) in transforms.iter().enumerate() {
            let mut values = ideal.pooled_attribute(attr);
            tf.forward_slice(&mut values);
            let summary = Summary::from_slice(&values);
            if summary.is_empty() {
                limits.push((f64::NEG_INFINITY, f64::INFINITY));
                moments.push((0.0, f64::INFINITY));
            } else {
                limits.push(summary.sigma_limits(k));
                moments.push((summary.mean, summary.std_dev()));
            }
        }
        OutlierDetector {
            limits,
            moments,
            transforms: transforms.to_vec(),
            k,
        }
    }

    /// Per-attribute `(lo, hi)` limits in working space.
    pub fn limits(&self) -> &[(f64, f64)] {
        &self.limits
    }

    /// The σ multiplier the detector was fitted with.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Whether the (present) raw value `x` of attribute `attr` is an
    /// outlier. Missing values are never outliers.
    pub fn is_outlier(&self, attr: usize, x: f64) -> bool {
        if x.is_nan() {
            return false;
        }
        let w = self.transforms[attr].forward(x);
        let (lo, hi) = self.limits[attr];
        w < lo || w > hi
    }

    /// Two-sided Gaussian p-value of the raw value under the fitted
    /// working-space moments — the paper's alternative detector output that
    /// lets users move the outlyingness threshold after the fact. Missing
    /// values return `None`.
    pub fn p_value(&self, attr: usize, x: f64) -> Option<f64> {
        if x.is_nan() {
            return None;
        }
        let (mean, std) = self.moments[attr];
        if !std.is_finite() || std <= 0.0 {
            return Some(1.0);
        }
        let z = ((self.transforms[attr].forward(x) - mean) / std).abs();
        Some(2.0 * (1.0 - standard_normal_cdf(z)))
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max absolute error ≈ 1.5e-7, ample for thresholding p-values).
fn standard_normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let signed = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + signed)
}

/// Streaming outlier detector of the form `f_O(X^t | X^{F^w_t}, X^{F^w_t}_N)`
/// (§3.3): flags a value whose deviation from its own `w`-step history mean
/// (pooled with neighbour history when provided) exceeds `k` standard
/// deviations.
///
/// This is the paper's streaming formulation; the batch experiments use
/// [`OutlierDetector`] calibrated on `D_I`, and this type is provided as
/// the §6.1-flavoured extension for online use.
#[derive(Debug, Clone, Copy)]
pub struct WindowedOutlierDetector {
    /// History window length `w`.
    pub window: usize,
    /// σ multiplier.
    pub k: f64,
    /// Minimum history points required before flagging anything.
    pub min_history: usize,
}

impl WindowedOutlierDetector {
    /// Creates a windowed detector.
    pub fn new(window: usize, k: f64) -> Self {
        WindowedOutlierDetector {
            window,
            k,
            min_history: 5,
        }
    }

    /// Whether attribute `attr` of `series` at time `t` is an outlier with
    /// respect to its own window history plus optional neighbour series.
    pub fn is_outlier(
        &self,
        series: &TimeSeries,
        neighbors: &[&TimeSeries],
        attr: usize,
        t: usize,
    ) -> bool {
        let x = series.get(attr, t);
        if x.is_nan() {
            return false;
        }
        let mut values: Vec<f64> = Window::history(series, t, self.window)
            .present(attr)
            .collect();
        for nb in neighbors {
            let upto = t.min(nb.len());
            values.extend(Window::history(nb, upto, self.window).present(attr));
        }
        if values.len() < self.min_history {
            return false;
        }
        let s = Summary::from_slice(&values);
        let (lo, hi) = s.sigma_limits(self.k);
        x < lo || x > hi
    }

    /// Weight-pooled variant of [`WindowedOutlierDetector::is_outlier`]:
    /// own history enters with weight 1, each neighbour's history with its
    /// supplied weight (non-positive weights are skipped).
    ///
    /// The screen uses the weighted mean, the reliability-weights variance
    /// estimator `Σw(x−μ)² / (V₁ − V₂/V₁)` (which reduces to the sample
    /// variance when every weight is 1), and Kish's effective sample size
    /// `V₁²/V₂` in place of the raw count for the `min_history` guard — so
    /// a value backed mostly by faintly-weighted remote history is still
    /// treated as under-evidenced.
    pub fn is_outlier_weighted(
        &self,
        series: &TimeSeries,
        neighbors: &[(&TimeSeries, f64)],
        attr: usize,
        t: usize,
    ) -> bool {
        let x = series.get(attr, t);
        if x.is_nan() {
            return false;
        }
        let mut values: Vec<(f64, f64)> = Window::history(series, t, self.window)
            .present(attr)
            .map(|v| (v, 1.0))
            .collect();
        for &(nb, w) in neighbors {
            if w <= 0.0 {
                continue;
            }
            let upto = t.min(nb.len());
            values.extend(
                Window::history(nb, upto, self.window)
                    .present(attr)
                    .map(|v| (v, w)),
            );
        }
        let v1: f64 = values.iter().map(|&(_, w)| w).sum();
        let v2: f64 = values.iter().map(|&(_, w)| w * w).sum();
        if v2 <= 0.0 || (v1 * v1) / v2 < self.min_history as f64 {
            return false;
        }
        let mean = values.iter().map(|&(v, w)| v * w).sum::<f64>() / v1;
        let denom = v1 - v2 / v1;
        if denom <= 0.0 {
            return false;
        }
        let var = values
            .iter()
            .map(|&(v, w)| w * (v - mean) * (v - mean))
            .sum::<f64>()
            / denom;
        let spread = self.k * var.sqrt();
        x < mean - spread || x > mean + spread
    }
}

/// Orchestrates the three detectors over a series / data set, producing the
/// `v × m × T` bit tensor `G_t` of §3.3.
///
/// Missing and inconsistency detection run on **raw** values (the paper's
/// Table 1 shows identical missing/inconsistent rates with and without the
/// log transform); outlier detection runs in the transform's working space
/// via the fitted [`OutlierDetector`]. Detection with `outliers = None`
/// flags only missing/inconsistent cells.
#[derive(Debug, Clone)]
pub struct GlitchDetector {
    constraints: ConstraintSet,
    outliers: Option<OutlierDetector>,
}

impl GlitchDetector {
    /// Creates a detector from constraint rules and an optional fitted
    /// outlier detector.
    pub fn new(constraints: ConstraintSet, outliers: Option<OutlierDetector>) -> Self {
        GlitchDetector {
            constraints,
            outliers,
        }
    }

    /// The inconsistency rules.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The outlier detector, if configured.
    pub fn outlier_detector(&self) -> Option<&OutlierDetector> {
        self.outliers.as_ref()
    }

    /// Annotates one series.
    pub fn detect_series(&self, series: &TimeSeries) -> GlitchMatrix {
        let v = series.num_attributes();
        let mut g = GlitchMatrix::new(v, series.len());
        let mut record = vec![0.0; v];
        for t in 0..series.len() {
            for (a, slot) in record.iter_mut().enumerate() {
                *slot = series.get(a, t);
            }
            // Missing.
            for (a, &x) in record.iter().enumerate() {
                if x.is_nan() {
                    g.set(a, GlitchType::Missing, t);
                }
            }
            // Inconsistent.
            for a in self.constraints.violations(&record) {
                g.set(a, GlitchType::Inconsistent, t);
            }
            // Outliers.
            if let Some(od) = &self.outliers {
                for (a, &x) in record.iter().enumerate() {
                    if od.is_outlier(a, x) {
                        g.set(a, GlitchType::Outlier, t);
                    }
                }
            }
        }
        g
    }

    /// Annotates every series of a data set (aligned by index).
    pub fn detect_dataset(&self, dataset: &Dataset) -> Vec<GlitchMatrix> {
        dataset
            .series()
            .iter()
            .map(|s| self.detect_series(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraint;
    use sd_data::NodeId;

    fn ideal_dataset() -> Dataset {
        // Attribute 0 ~ N(100, ~5): values 90..110.
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 21);
        for t in 0..21 {
            s.set(0, t, 90.0 + t as f64);
        }
        Dataset::new(vec!["a"], vec![s]).unwrap()
    }

    #[test]
    fn outlier_limits_flag_extremes_only() {
        let ds = ideal_dataset();
        let od = OutlierDetector::fit(&ds, &[AttributeTransform::Identity], 3.0);
        assert!(!od.is_outlier(0, 100.0));
        assert!(od.is_outlier(0, 1000.0));
        assert!(od.is_outlier(0, -1000.0));
        assert!(!od.is_outlier(0, f64::NAN), "missing is never an outlier");
        let (lo, hi) = od.limits()[0];
        assert!(lo < 90.0 && hi > 110.0);
        assert_eq!(od.k(), 3.0);
    }

    #[test]
    fn log_transform_moves_the_flagged_tail() {
        // Heavily right-skewed raw values (log-space spread 3..9): the raw
        // σ is huge, so small positives sit inside the raw 3-σ band, while
        // in log space they fall far below the lower limit.
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 50);
        for t in 0..50 {
            s.set(0, t, (3.0 + 0.12 * t as f64).exp());
        }
        let ds = Dataset::new(vec!["a"], vec![s]).unwrap();
        let raw = OutlierDetector::fit(&ds, &[AttributeTransform::Identity], 3.0);
        let log = OutlierDetector::fit(&ds, &[AttributeTransform::log()], 3.0);
        // A tiny positive dropout value: extreme in log space, maybe not raw.
        let dropout = 0.001;
        assert!(log.is_outlier(0, dropout));
        assert!(!raw.is_outlier(0, dropout));
    }

    #[test]
    fn p_values_decrease_with_distance() {
        let ds = ideal_dataset();
        let od = OutlierDetector::fit(&ds, &[AttributeTransform::Identity], 3.0);
        let p_center = od.p_value(0, 100.0).unwrap();
        let p_far = od.p_value(0, 200.0).unwrap();
        assert!(p_center > 0.5);
        assert!(p_far < 0.01);
        assert!(p_far < p_center);
        assert_eq!(od.p_value(0, f64::NAN), None);
    }

    #[test]
    fn standard_normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn detector_combines_all_three_types() {
        let ds = ideal_dataset();
        let od = OutlierDetector::fit(&ds, &[AttributeTransform::Identity], 3.0);
        let det = GlitchDetector::new(
            ConstraintSet::new(vec![Constraint::NonNegative { attr: 0 }]),
            Some(od),
        );
        let mut s = TimeSeries::new(NodeId::new(0, 0, 1), 1, 4);
        s.set(0, 0, 100.0); // clean
        s.set(0, 1, -50.0); // inconsistent
        s.set(0, 2, 10_000.0); // outlier
                               // t=3 missing
        let g = det.detect_series(&s);
        assert!(!g.record_has_any(0));
        assert!(g.get(0, GlitchType::Inconsistent, 1));
        assert!(g.get(0, GlitchType::Outlier, 2));
        assert!(g.get(0, GlitchType::Missing, 3));
    }

    #[test]
    fn windowed_detector_uses_history() {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 12);
        for t in 0..11 {
            s.set(0, t, 10.0 + (t % 3) as f64); // stable around 10-12
        }
        s.set(0, 11, 500.0); // spike
        let w = WindowedOutlierDetector::new(10, 3.0);
        assert!(w.is_outlier(&s, &[], 0, 11));
        assert!(!w.is_outlier(&s, &[], 0, 10));
        // Not enough history at the start.
        assert!(!w.is_outlier(&s, &[], 0, 1));
    }

    #[test]
    fn windowed_detector_pools_neighbor_history() {
        // Own history too short, neighbours supply the context.
        let mut own = TimeSeries::new(NodeId::new(0, 0, 0), 1, 3);
        own.set(0, 0, 10.0);
        own.set(0, 1, 11.0);
        own.set(0, 2, 900.0); // spike at t=2 with 2 own history points
        let mut nb1 = TimeSeries::new(NodeId::new(0, 0, 1), 1, 3);
        let mut nb2 = TimeSeries::new(NodeId::new(0, 0, 2), 1, 3);
        for t in 0..3 {
            nb1.set(0, t, 10.5);
            nb2.set(0, t, 9.5 + t as f64 * 0.5);
        }
        let w = WindowedOutlierDetector::new(10, 3.0);
        assert!(!w.is_outlier(&own, &[], 0, 2), "insufficient history alone");
        assert!(
            w.is_outlier(&own, &[&nb1, &nb2], 0, 2),
            "neighbours provide context"
        );
    }

    #[test]
    fn weighted_pooling_matches_unweighted_at_unit_weights() {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 12);
        for t in 0..11 {
            s.set(0, t, 10.0 + (t % 3) as f64);
        }
        s.set(0, 11, 500.0);
        let mut nb = TimeSeries::new(NodeId::new(0, 0, 1), 1, 12);
        for t in 0..12 {
            nb.set(0, t, 10.5);
        }
        let w = WindowedOutlierDetector::new(10, 3.0);
        for t in [1, 10, 11] {
            assert_eq!(
                w.is_outlier(&s, &[&nb], 0, t),
                w.is_outlier_weighted(&s, &[(&nb, 1.0)], 0, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn faint_weights_do_not_satisfy_min_history() {
        // Two own points + many neighbour points at weight 0.01: the Kish
        // effective sample size stays ≈ 2, under the min-history guard.
        let mut own = TimeSeries::new(NodeId::new(0, 0, 0), 1, 3);
        own.set(0, 0, 10.0);
        own.set(0, 1, 11.0);
        own.set(0, 2, 900.0);
        let mut nb = TimeSeries::new(NodeId::new(0, 0, 1), 1, 3);
        for t in 0..3 {
            nb.set(0, t, 10.5);
        }
        let w = WindowedOutlierDetector::new(10, 3.0);
        assert!(!w.is_outlier_weighted(&own, &[(&nb, 0.01)], 0, 2));
        assert!(
            w.is_outlier_weighted(&own, &[(&nb, 1.0), (&nb, 1.0)], 0, 2),
            "full-weight neighbours provide the evidence"
        );
        assert!(
            !w.is_outlier_weighted(&own, &[(&nb, -1.0), (&nb, 0.0)], 0, 2),
            "non-positive weights are skipped"
        );
    }

    #[test]
    fn empty_ideal_attribute_disables_flagging() {
        let s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 3); // all missing
        let ds = Dataset::new(vec!["a"], vec![s]).unwrap();
        let od = OutlierDetector::fit(&ds, &[AttributeTransform::Identity], 3.0);
        assert!(!od.is_outlier(0, 1e12));
        assert_eq!(od.p_value(0, 5.0), Some(1.0));
    }
}
