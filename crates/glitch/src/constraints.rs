use sd_data::is_missing;
use serde::{Deserialize, Serialize};

/// A declarative inconsistency rule over the attributes of one record.
///
/// The paper's case study (§4.1) uses exactly three: "(1) Attribute 1
/// should be greater than or equal to zero, (2) Attribute 3 should lie in
/// the interval [0, 1], and (3) Attribute 1 should not be populated if
/// Attribute 3 is missing." All three shapes — plus a generic pairwise
/// comparison — are expressible here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// `attr >= 0` (violated by present negative values).
    NonNegative {
        /// Attribute index.
        attr: usize,
    },
    /// `lo <= attr <= hi` (violated by present values outside the range).
    Range {
        /// Attribute index.
        attr: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `attr` must not be populated when `other` is missing — the paper's
    /// cross-attribute rule. A violation flags `attr`.
    NotPopulatedIf {
        /// The attribute that must not be populated.
        attr: usize,
        /// The attribute whose missingness triggers the rule.
        other: usize,
    },
    /// `attr > other` when both are present; a violation flags both.
    GreaterThan {
        /// Left attribute.
        attr: usize,
        /// Right attribute.
        other: usize,
    },
}

impl Constraint {
    /// Evaluates the constraint on a record, pushing the indices of
    /// attributes to flag as inconsistent into `flags`.
    ///
    /// Missing values never violate value constraints (they are already
    /// *missing* glitches); only present values can be inconsistent.
    pub fn evaluate(&self, record: &[f64], flags: &mut Vec<usize>) {
        match *self {
            Constraint::NonNegative { attr } => {
                let x = record[attr];
                if !is_missing(x) && x < 0.0 {
                    flags.push(attr);
                }
            }
            Constraint::Range { attr, lo, hi } => {
                let x = record[attr];
                if !is_missing(x) && (x < lo || x > hi) {
                    flags.push(attr);
                }
            }
            Constraint::NotPopulatedIf { attr, other } => {
                if !is_missing(record[attr]) && is_missing(record[other]) {
                    flags.push(attr);
                }
            }
            Constraint::GreaterThan { attr, other } => {
                let a = record[attr];
                let b = record[other];
                if !is_missing(a) && !is_missing(b) && a <= b {
                    flags.push(attr);
                    flags.push(other);
                }
            }
        }
    }

    /// The largest attribute index this constraint references.
    pub fn max_attr(&self) -> usize {
        match *self {
            Constraint::NonNegative { attr } => attr,
            Constraint::Range { attr, .. } => attr,
            Constraint::NotPopulatedIf { attr, other } => attr.max(other),
            Constraint::GreaterThan { attr, other } => attr.max(other),
        }
    }
}

/// An ordered collection of constraints evaluated together.
///
/// The paper sets "a single flag for all inconsistency types" per
/// attribute; [`ConstraintSet::violations`] returns the deduplicated set of
/// flagged attribute indices for one record.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Creates a constraint set.
    pub fn new(constraints: Vec<Constraint>) -> Self {
        ConstraintSet { constraints }
    }

    /// The paper's three case-study constraints, parameterized by the
    /// attribute indices of "Attribute 1" and "Attribute 3".
    pub fn paper_rules(attr1: usize, attr3: usize) -> Self {
        ConstraintSet::new(vec![
            Constraint::NonNegative { attr: attr1 },
            Constraint::Range {
                attr: attr3,
                lo: 0.0,
                hi: 1.0,
            },
            Constraint::NotPopulatedIf {
                attr: attr1,
                other: attr3,
            },
        ])
    }

    /// The constraints, in evaluation order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Evaluates every constraint on a record and returns the sorted,
    /// deduplicated attribute indices flagged as inconsistent.
    pub fn violations(&self, record: &[f64]) -> Vec<usize> {
        let mut flags = Vec::new();
        for c in &self.constraints {
            c.evaluate(record, &mut flags);
        }
        flags.sort_unstable();
        flags.dedup();
        flags
    }

    /// The number of attributes a record must have for safe evaluation.
    pub fn required_attributes(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.max_attr() + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::MISSING;

    #[test]
    fn non_negative_flags_negatives_only() {
        let c = Constraint::NonNegative { attr: 0 };
        let mut flags = Vec::new();
        c.evaluate(&[-0.5, 1.0], &mut flags);
        assert_eq!(flags, vec![0]);
        flags.clear();
        c.evaluate(&[0.0, 1.0], &mut flags);
        assert!(flags.is_empty());
        flags.clear();
        c.evaluate(&[MISSING, 1.0], &mut flags);
        assert!(flags.is_empty(), "missing is not inconsistent");
    }

    #[test]
    fn range_is_inclusive() {
        let c = Constraint::Range {
            attr: 1,
            lo: 0.0,
            hi: 1.0,
        };
        let mut flags = Vec::new();
        c.evaluate(&[0.0, 1.0], &mut flags);
        assert!(flags.is_empty());
        c.evaluate(&[0.0, 1.0001], &mut flags);
        assert_eq!(flags, vec![1]);
        flags.clear();
        c.evaluate(&[0.0, -0.1], &mut flags);
        assert_eq!(flags, vec![1]);
    }

    #[test]
    fn not_populated_if_cross_rule() {
        let c = Constraint::NotPopulatedIf { attr: 0, other: 2 };
        let mut flags = Vec::new();
        // Attr 0 populated while attr 2 missing → violation on attr 0.
        c.evaluate(&[5.0, 0.0, MISSING], &mut flags);
        assert_eq!(flags, vec![0]);
        flags.clear();
        // Both missing → fine.
        c.evaluate(&[MISSING, 0.0, MISSING], &mut flags);
        assert!(flags.is_empty());
        // Both populated → fine.
        c.evaluate(&[5.0, 0.0, 0.5], &mut flags);
        assert!(flags.is_empty());
    }

    #[test]
    fn greater_than_flags_both_sides() {
        let c = Constraint::GreaterThan { attr: 0, other: 1 };
        let mut flags = Vec::new();
        c.evaluate(&[1.0, 2.0], &mut flags);
        assert_eq!(flags, vec![0, 1]);
        flags.clear();
        c.evaluate(&[3.0, 2.0], &mut flags);
        assert!(flags.is_empty());
        c.evaluate(&[MISSING, 2.0], &mut flags);
        assert!(flags.is_empty());
    }

    #[test]
    fn paper_rules_match_case_study() {
        let set = ConstraintSet::paper_rules(0, 2);
        // Clean record: nothing flagged.
        assert!(set.violations(&[10.0, 5.0, 0.7]).is_empty());
        // Negative attr 1.
        assert_eq!(set.violations(&[-1.0, 5.0, 0.7]), vec![0]);
        // Attr 3 out of [0, 1].
        assert_eq!(set.violations(&[10.0, 5.0, 1.3]), vec![2]);
        // Attr 1 populated while attr 3 missing.
        assert_eq!(set.violations(&[10.0, 5.0, MISSING]), vec![0]);
        // Double violation deduplicates: negative attr1 and attr3 missing.
        assert_eq!(set.violations(&[-10.0, 5.0, MISSING]), vec![0]);
    }

    #[test]
    fn required_attributes() {
        let set = ConstraintSet::paper_rules(0, 2);
        assert_eq!(set.required_attributes(), 3);
        assert_eq!(ConstraintSet::default().required_attributes(), 0);
        assert!(ConstraintSet::default().is_empty());
    }
}
