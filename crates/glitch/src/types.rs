use serde::{Deserialize, Serialize};
use std::fmt;

/// The glitch taxonomy of the paper's case study (§3.2): missing values,
/// constraint inconsistencies, and distributional outliers.
///
/// The methodology "will work on any glitch that can be detected and
/// flagged"; the enum is the closed set used by this reproduction, with
/// [`GlitchType::ALL`] and index mapping so scores and matrices can stay
/// dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GlitchType {
    /// The value is not populated.
    Missing,
    /// The value violates a domain constraint (possibly cross-attribute).
    Inconsistent,
    /// The value falls outside the calibrated outlyingness threshold.
    Outlier,
}

impl GlitchType {
    /// All glitch types, in index order (`m = 3`).
    pub const ALL: [GlitchType; 3] = [
        GlitchType::Missing,
        GlitchType::Inconsistent,
        GlitchType::Outlier,
    ];

    /// Number of glitch types `m`.
    pub const COUNT: usize = 3;

    /// Dense index of this type (0-based, stable).
    pub fn index(self) -> usize {
        match self {
            GlitchType::Missing => 0,
            GlitchType::Inconsistent => 1,
            GlitchType::Outlier => 2,
        }
    }

    /// Inverse of [`GlitchType::index`].
    pub fn from_index(i: usize) -> Option<GlitchType> {
        GlitchType::ALL.get(i).copied()
    }
}

impl fmt::Display for GlitchType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GlitchType::Missing => "missing",
            GlitchType::Inconsistent => "inconsistent",
            GlitchType::Outlier => "outlier",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, t) in GlitchType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(GlitchType::from_index(i), Some(*t));
        }
        assert_eq!(GlitchType::from_index(3), None);
        assert_eq!(GlitchType::COUNT, GlitchType::ALL.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(GlitchType::Missing.to_string(), "missing");
        assert_eq!(GlitchType::Inconsistent.to_string(), "inconsistent");
        assert_eq!(GlitchType::Outlier.to_string(), "outlier");
    }
}
