use crate::GlitchType;

/// The per-series glitch bit tensor `G_t` (§3.3): for each attribute
/// `a ∈ 0..v`, glitch type `k ∈ 0..m`, and time `t ∈ 0..T`, whether the
/// glitch is flagged.
///
/// Stored as one byte per `(attribute, time)` cell with one bit per glitch
/// type — compact enough for the paper-scale data (20 000 × 170 × 3 cells)
/// while keeping per-cell access O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlitchMatrix {
    num_attributes: usize,
    len: usize,
    /// `bits[attr * len + t]` holds a bitmask over glitch-type indices.
    bits: Vec<u8>,
}

impl GlitchMatrix {
    /// An all-clear matrix for a `v × T` series.
    pub fn new(num_attributes: usize, len: usize) -> Self {
        GlitchMatrix {
            num_attributes,
            len,
            bits: vec![0; num_attributes * len],
        }
    }

    /// Number of attributes `v`.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// Number of time steps `T`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix covers zero time steps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flags glitch `g` on attribute `attr` at time `t`.
    #[inline]
    pub fn set(&mut self, attr: usize, g: GlitchType, t: usize) {
        let i = self.cell(attr, t);
        self.bits[i] |= 1 << g.index();
    }

    /// Clears glitch `g` on attribute `attr` at time `t`.
    #[inline]
    pub fn clear(&mut self, attr: usize, g: GlitchType, t: usize) {
        let i = self.cell(attr, t);
        self.bits[i] &= !(1 << g.index());
    }

    /// Whether glitch `g` is flagged on attribute `attr` at time `t`.
    #[inline]
    pub fn get(&self, attr: usize, g: GlitchType, t: usize) -> bool {
        self.bits[self.cell(attr, t)] & (1 << g.index()) != 0
    }

    /// Whether any glitch is flagged on attribute `attr` at time `t`.
    #[inline]
    pub fn any(&self, attr: usize, t: usize) -> bool {
        self.bits[self.cell(attr, t)] != 0
    }

    /// The glitch vector `g_ij(k)` of one cell, as booleans indexed by
    /// [`GlitchType::index`].
    pub fn cell_vector(&self, attr: usize, t: usize) -> [bool; GlitchType::COUNT] {
        let b = self.bits[self.cell(attr, t)];
        let mut out = [false; GlitchType::COUNT];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = b & (1 << k) != 0;
        }
        out
    }

    /// Whether glitch `g` is flagged on **any** attribute at time `t`
    /// (the record-level view used for Table 1 percentages).
    pub fn record_has(&self, g: GlitchType, t: usize) -> bool {
        (0..self.num_attributes).any(|a| self.get(a, g, t))
    }

    /// Whether any glitch of any type is flagged at time `t`.
    pub fn record_has_any(&self, t: usize) -> bool {
        (0..self.num_attributes).any(|a| self.any(a, t))
    }

    /// Number of flagged cells for glitch type `g` over the whole series.
    pub fn count_cells(&self, g: GlitchType) -> usize {
        let mask = 1u8 << g.index();
        self.bits.iter().filter(|&&b| b & mask != 0).count()
    }

    /// Number of time steps where glitch `g` is flagged on ≥ 1 attribute.
    pub fn count_records(&self, g: GlitchType) -> usize {
        (0..self.len).filter(|&t| self.record_has(g, t)).count()
    }

    /// Total flagged cells across all types (multi-glitch cells count once
    /// per type).
    pub fn total_flags(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    #[inline]
    fn cell(&self, attr: usize, t: usize) -> usize {
        assert!(
            attr < self.num_attributes && t < self.len,
            "glitch matrix index out of range: attr {attr}, t {t}"
        );
        attr * self.len + t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut g = GlitchMatrix::new(2, 3);
        assert!(!g.get(0, GlitchType::Missing, 0));
        g.set(0, GlitchType::Missing, 0);
        assert!(g.get(0, GlitchType::Missing, 0));
        assert!(!g.get(0, GlitchType::Outlier, 0));
        g.clear(0, GlitchType::Missing, 0);
        assert!(!g.get(0, GlitchType::Missing, 0));
    }

    #[test]
    fn multiple_types_coexist_on_one_cell() {
        let mut g = GlitchMatrix::new(1, 1);
        g.set(0, GlitchType::Missing, 0);
        g.set(0, GlitchType::Inconsistent, 0);
        let v = g.cell_vector(0, 0);
        assert_eq!(v, [true, true, false]);
        assert!(g.any(0, 0));
        assert_eq!(g.total_flags(), 2);
    }

    #[test]
    fn record_level_queries() {
        let mut g = GlitchMatrix::new(3, 2);
        g.set(2, GlitchType::Outlier, 1);
        assert!(!g.record_has(GlitchType::Outlier, 0));
        assert!(g.record_has(GlitchType::Outlier, 1));
        assert!(g.record_has_any(1));
        assert!(!g.record_has_any(0));
        assert_eq!(g.count_records(GlitchType::Outlier), 1);
    }

    #[test]
    fn counts() {
        let mut g = GlitchMatrix::new(2, 4);
        g.set(0, GlitchType::Missing, 0);
        g.set(1, GlitchType::Missing, 0);
        g.set(0, GlitchType::Missing, 2);
        assert_eq!(g.count_cells(GlitchType::Missing), 3);
        assert_eq!(g.count_records(GlitchType::Missing), 2);
        assert_eq!(g.count_cells(GlitchType::Outlier), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let g = GlitchMatrix::new(1, 1);
        g.get(1, GlitchType::Missing, 0);
    }

    #[test]
    fn empty_matrix() {
        let g = GlitchMatrix::new(3, 0);
        assert!(g.is_empty());
        assert_eq!(g.count_cells(GlitchType::Missing), 0);
    }
}
