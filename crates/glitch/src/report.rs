use crate::{GlitchMatrix, GlitchType};

/// Record-level glitch co-occurrence between two glitch types: the
/// fraction of records carrying both.
///
/// The paper observes "considerable overlap between missing and
/// inconsistent values" (Fig. 3 discussion, §4.2) — partly by construction,
/// since the cross-attribute rule turns certain missing patterns into
/// inconsistencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoOccurrence {
    /// First glitch type.
    pub a: GlitchType,
    /// Second glitch type.
    pub b: GlitchType,
    /// Fraction of records flagged with both types.
    pub both: f64,
    /// Jaccard overlap `|A ∩ B| / |A ∪ B|` (0 when neither occurs).
    pub jaccard: f64,
}

/// Aggregated glitch percentages over a set of annotated series — the
/// quantities reported in Table 1 (record-level percentages, where a record
/// is one time instance of one series) and plotted in Figure 3
/// (per-time-step counts).
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchReport {
    /// Total number of records across all series.
    pub total_records: usize,
    /// Record-level percentage (0–100) per glitch type, indexed by
    /// [`GlitchType::index`].
    pub record_pct: [f64; GlitchType::COUNT],
    /// Cell-level percentage (0–100) per glitch type.
    pub cell_pct: [f64; GlitchType::COUNT],
}

impl GlitchReport {
    /// Builds a report from per-series glitch matrices.
    pub fn from_matrices(matrices: &[GlitchMatrix]) -> Self {
        let mut total_records = 0usize;
        let mut total_cells = 0usize;
        let mut rec_counts = [0usize; GlitchType::COUNT];
        let mut cell_counts = [0usize; GlitchType::COUNT];
        for g in matrices {
            total_records += g.len();
            total_cells += g.len() * g.num_attributes();
            for &k in &GlitchType::ALL {
                rec_counts[k.index()] += g.count_records(k);
                cell_counts[k.index()] += g.count_cells(k);
            }
        }
        let pct = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                100.0 * num as f64 / den as f64
            }
        };
        let mut record_pct = [0.0; GlitchType::COUNT];
        let mut cell_pct = [0.0; GlitchType::COUNT];
        for &k in &GlitchType::ALL {
            record_pct[k.index()] = pct(rec_counts[k.index()], total_records);
            cell_pct[k.index()] = pct(cell_counts[k.index()], total_cells);
        }
        GlitchReport {
            total_records,
            record_pct,
            cell_pct,
        }
    }

    /// Record-level percentage for one glitch type.
    pub fn record_percentage(&self, g: GlitchType) -> f64 {
        self.record_pct[g.index()]
    }

    /// Cell-level percentage for one glitch type.
    pub fn cell_percentage(&self, g: GlitchType) -> f64 {
        self.cell_pct[g.index()]
    }
}

/// Per-time-step record counts of one glitch type across many annotated
/// series — the Figure 3 series ("counts of three types of glitches …
/// roughly 5000 data points at any given time").
///
/// `horizon` fixes the output length; series shorter than the horizon
/// simply stop contributing.
pub fn counts_per_time(matrices: &[GlitchMatrix], g: GlitchType, horizon: usize) -> Vec<usize> {
    let mut counts = vec![0usize; horizon];
    for m in matrices {
        let upto = m.len().min(horizon);
        for (t, slot) in counts.iter_mut().enumerate().take(upto) {
            if m.record_has(g, t) {
                *slot += 1;
            }
        }
    }
    counts
}

/// Record-level co-occurrence between two glitch types across series.
pub fn co_occurrence(matrices: &[GlitchMatrix], a: GlitchType, b: GlitchType) -> CoOccurrence {
    let mut both = 0usize;
    let mut either = 0usize;
    let mut total = 0usize;
    for m in matrices {
        for t in 0..m.len() {
            let ha = m.record_has(a, t);
            let hb = m.record_has(b, t);
            both += (ha && hb) as usize;
            either += (ha || hb) as usize;
            total += 1;
        }
    }
    CoOccurrence {
        a,
        b,
        both: if total == 0 {
            0.0
        } else {
            both as f64 / total as f64
        },
        jaccard: if either == 0 {
            0.0
        } else {
            both as f64 / either as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> Vec<GlitchMatrix> {
        // Series 0: 4 records, missing at t0 (both attrs), outlier at t1.
        let mut a = GlitchMatrix::new(2, 4);
        a.set(0, GlitchType::Missing, 0);
        a.set(1, GlitchType::Missing, 0);
        a.set(0, GlitchType::Outlier, 1);
        // Series 1: 2 records, inconsistent+missing at t1.
        let mut b = GlitchMatrix::new(2, 2);
        b.set(0, GlitchType::Inconsistent, 1);
        b.set(0, GlitchType::Missing, 1);
        vec![a, b]
    }

    #[test]
    fn report_percentages() {
        let r = GlitchReport::from_matrices(&two_series());
        assert_eq!(r.total_records, 6);
        // Missing records: t0 of series 0 and t1 of series 1 → 2/6.
        assert!((r.record_percentage(GlitchType::Missing) - 100.0 * 2.0 / 6.0).abs() < 1e-12);
        assert!((r.record_percentage(GlitchType::Outlier) - 100.0 / 6.0).abs() < 1e-12);
        // Missing cells: 3 of 12.
        assert!((r.cell_percentage(GlitchType::Missing) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn report_of_empty_input() {
        let r = GlitchReport::from_matrices(&[]);
        assert_eq!(r.total_records, 0);
        assert_eq!(r.record_percentage(GlitchType::Missing), 0.0);
    }

    #[test]
    fn counts_per_time_aggregates_across_series() {
        let counts = counts_per_time(&two_series(), GlitchType::Missing, 4);
        assert_eq!(counts, vec![1, 1, 0, 0]);
        let out = counts_per_time(&two_series(), GlitchType::Outlier, 4);
        assert_eq!(out, vec![0, 1, 0, 0]);
    }

    #[test]
    fn horizon_truncates_and_pads() {
        let counts = counts_per_time(&two_series(), GlitchType::Missing, 2);
        assert_eq!(counts.len(), 2);
        let longer = counts_per_time(&two_series(), GlitchType::Missing, 10);
        assert_eq!(longer.len(), 10);
        assert_eq!(longer[9], 0);
    }

    #[test]
    fn co_occurrence_overlap() {
        let c = co_occurrence(&two_series(), GlitchType::Missing, GlitchType::Inconsistent);
        // Both at t1 of series 1 → 1/6 of records; union = t0 s0, t1 s1 → 2.
        assert!((c.both - 1.0 / 6.0).abs() < 1e-12);
        assert!((c.jaccard - 0.5).abs() < 1e-12);
    }

    #[test]
    fn co_occurrence_of_absent_types_is_zero() {
        let m = GlitchMatrix::new(1, 3);
        let c = co_occurrence(&[m], GlitchType::Missing, GlitchType::Outlier);
        assert_eq!(c.both, 0.0);
        assert_eq!(c.jaccard, 0.0);
    }
}
