//! Statistics substrate for the statistical-distortion framework.
//!
//! Provides the descriptive machinery the paper's experiments rest on:
//! moment summaries that tolerate missing (NaN) values, quantiles and
//! ECDFs, 1-D histograms and sparse N-D grid histograms (the signatures fed
//! to the EMD engine), KL divergence as an alternative distortion distance,
//! correlation helpers for the glitch co-occurrence analyses, and the
//! attribute transforms (natural log) studied as an experimental factor
//! (§5.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlation;
mod ecdf;
mod grid;
mod histogram;
mod kl;
mod pairwise;
mod quantile;
mod summary;
mod transform;

pub use correlation::{autocorrelation, pearson};
pub use ecdf::{cvm_statistic_sorted, ks_statistic_sorted, Ecdf};
pub use grid::{sorted_union_columns, GridHistogram, GridSpec};
pub use histogram::{Histogram, HistogramSpec};
pub use kl::{jensen_shannon_divergence, kl_divergence};
pub use pairwise::SumTree;
pub use quantile::{
    median, quantile, quantile_of_sorted, quantile_of_sorted_pair, select_sorted_pair,
};
pub use summary::Summary;
pub use transform::AttributeTransform;

/// Convenience: the values of `xs` with NaNs removed, sorted ascending.
pub fn sorted_present(xs: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(f64::total_cmp);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_present_drops_nan_and_sorts() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(sorted_present(&xs), vec![1.0, 2.0, 3.0]);
        assert!(sorted_present(&[f64::NAN]).is_empty());
    }
}
