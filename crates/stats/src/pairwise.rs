use std::collections::BTreeMap;

/// A fixed-shape pairwise-summation tree over `d`-dimensional leaf
/// vectors, supporting exact sparse re-summation.
///
/// Naive sequential summation cannot be updated incrementally without
/// changing its floating-point rounding: editing leaf `i` perturbs every
/// prefix after it. This tree fixes the association order instead — leaves
/// sit at the bottom of a perfect binary tree (padded with zero leaves to a
/// power of two) and every internal node is the element-wise sum of its two
/// children. The root is then a pure function of the leaf multiset *and
/// the tree shape*, so:
///
/// * rebuilding the tree from scratch over edited leaves, and
/// * [`SumTree::root_with_edits`], which re-sums only the `O(k log n)`
///   nodes on the paths from `k` edited leaves to the root,
///
/// produce **bit-identical** roots. The distortion kernels lean on this to
/// give the Mahalanobis metric an incremental cleaned-side mean that
/// matches its materialized reference path bit for bit.
#[derive(Debug, Clone)]
pub struct SumTree {
    dims: usize,
    slots: usize,
    /// Leaf capacity: `slots.next_power_of_two().max(1)`.
    cap: usize,
    /// 1-based heap layout, `dims` floats per node: node `i` has children
    /// `2i` and `2i + 1`; leaf `j` lives at node `cap + j`.
    nodes: Vec<f64>,
}

impl SumTree {
    /// Builds the tree over `slots` leaves of dimension `dims`. `leaf` is
    /// called once per slot with a zeroed buffer to fill in; leaving the
    /// buffer untouched contributes nothing (the natural encoding for
    /// "this row is excluded from the sum").
    pub fn build(dims: usize, slots: usize, mut leaf: impl FnMut(usize, &mut [f64])) -> Self {
        assert!(dims > 0, "sum tree needs at least one dimension");
        let cap = slots.next_power_of_two().max(1);
        let mut nodes = vec![0.0f64; 2 * cap * dims];
        for j in 0..slots {
            let off = (cap + j) * dims;
            leaf(j, &mut nodes[off..off + dims]);
        }
        for i in (1..cap).rev() {
            for k in 0..dims {
                nodes[i * dims + k] = nodes[2 * i * dims + k] + nodes[(2 * i + 1) * dims + k];
            }
        }
        SumTree {
            dims,
            slots,
            cap,
            nodes,
        }
    }

    /// Leaf dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of (unpadded) leaf slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The tree's root: the pairwise sum of every leaf.
    pub fn root(&self) -> &[f64] {
        &self.nodes[self.dims..2 * self.dims]
    }

    /// The root the tree would have if each `(slot, new leaf value)` edit
    /// were applied — bit-identical to rebuilding the whole tree over the
    /// edited leaves, computed by re-summing only the affected root paths.
    /// Edit slots must be in range; later duplicates overwrite earlier
    /// ones, matching a rebuild after sequential leaf stores.
    pub fn root_with_edits(&self, edits: &[(usize, Vec<f64>)]) -> Vec<f64> {
        if edits.is_empty() {
            return self.root().to_vec();
        }
        let mut overlay: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (slot, value) in edits {
            assert!(*slot < self.slots, "edit slot out of range");
            assert_eq!(value.len(), self.dims, "edit dimension mismatch");
            overlay.insert(self.cap + slot, value.clone());
        }
        // All leaves share one depth (perfect tree), so the frontier stays
        // level-synchronized: children are final before any parent reads
        // them.
        let mut frontier: Vec<usize> = overlay.keys().copied().collect();
        while frontier[0] > 1 {
            let mut parents: Vec<usize> = frontier.iter().map(|i| i / 2).collect();
            parents.dedup();
            for &p in &parents {
                let mut sum = vec![0.0f64; self.dims];
                for child in [2 * p, 2 * p + 1] {
                    let values = match overlay.get(&child) {
                        Some(v) => v.as_slice(),
                        None => &self.nodes[child * self.dims..(child + 1) * self.dims],
                    };
                    for (s, x) in sum.iter_mut().zip(values) {
                        *s += x;
                    }
                }
                overlay.insert(p, sum);
            }
            frontier = parents;
        }
        overlay.remove(&1).expect("root reached")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(seed: u64, slots: usize, dims: usize) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 200.0 - 100.0
        };
        (0..slots)
            .map(|_| (0..dims).map(|_| next()).collect())
            .collect()
    }

    fn build_from(rows: &[Vec<f64>], dims: usize) -> SumTree {
        SumTree::build(dims, rows.len(), |j, buf| buf.copy_from_slice(&rows[j]))
    }

    #[test]
    fn root_sums_all_leaves() {
        let rows = leaves(3, 13, 2);
        let tree = build_from(&rows, 2);
        assert_eq!(tree.slots(), 13);
        assert_eq!(tree.dims(), 2);
        for k in 0..2 {
            let naive: f64 = rows.iter().map(|r| r[k]).sum();
            assert!((tree.root()[k] - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn edits_are_bit_identical_to_rebuild() {
        for (slots, dims, num_edits) in [
            (1usize, 1usize, 1usize),
            (7, 3, 3),
            (64, 2, 10),
            (33, 4, 33),
        ] {
            let rows = leaves(slots as u64 * 31 + dims as u64, slots, dims);
            let tree = build_from(&rows, dims);
            let edit_rows = leaves(99 + slots as u64, num_edits, dims);
            let edits: Vec<(usize, Vec<f64>)> = edit_rows
                .into_iter()
                .enumerate()
                .map(|(i, v)| ((i * 5) % slots, v))
                .collect();
            let fast = tree.root_with_edits(&edits);
            let mut edited = rows.clone();
            for (slot, v) in &edits {
                edited[*slot] = v.clone();
            }
            let rebuilt = build_from(&edited, dims);
            for (k, (f, r)) in fast.iter().zip(rebuilt.root()).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "slots={slots} dims={dims} k={k}");
            }
        }
    }

    #[test]
    fn empty_edit_list_returns_root() {
        let rows = leaves(1, 5, 2);
        let tree = build_from(&rows, 2);
        assert_eq!(tree.root_with_edits(&[]), tree.root().to_vec());
    }

    #[test]
    fn untouched_zero_leaves_encode_exclusion() {
        // Slots the builder leaves untouched contribute exactly nothing.
        let tree = SumTree::build(2, 4, |j, buf| {
            if j % 2 == 0 {
                buf[0] = 1.0;
                buf[1] = 10.0;
            }
        });
        assert_eq!(tree.root(), &[2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn out_of_range_edit_panics() {
        let tree = SumTree::build(1, 2, |_, b| b[0] = 1.0);
        tree.root_with_edits(&[(2, vec![0.0])]);
    }
}
