/// A per-attribute value transform studied as an experimental factor.
///
/// The paper applies a natural-log transformation to Attribute 1 before
/// cleaning (§5.3) and shows that it flips which tail of the distribution
/// is winsorized — "a cautionary tale against the blind use of attribute
/// transformations". Transforms here are invertible so cleaned values can
/// be mapped back to the raw scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeTransform {
    /// Leave the attribute unchanged.
    Identity,
    /// Natural logarithm with a positive floor: `ln(max(x, floor))`.
    ///
    /// Telemetry KPIs can contain zeros, near-zero dropouts, and corrupted
    /// negative values; flooring maps all of these to one extreme
    /// left-tail point instead of producing `-inf`/NaN (which would be
    /// conflated with *missing*). This preserves the paper's observed
    /// behaviour: in log space the distribution is left-skewed and the
    /// *lower* tail gets flagged and winsorized.
    Log {
        /// Values at or below this floor map to `ln(floor)`. Must be > 0.
        floor: f64,
    },
}

impl AttributeTransform {
    /// A log transform with the default floor of `1e-6`.
    pub fn log() -> Self {
        AttributeTransform::Log { floor: 1e-6 }
    }

    /// Forward transform of a single value. NaN (missing) passes through.
    pub fn forward(&self, x: f64) -> f64 {
        match *self {
            AttributeTransform::Identity => x,
            AttributeTransform::Log { floor } => {
                debug_assert!(floor > 0.0, "log floor must be positive");
                if x.is_nan() {
                    x
                } else {
                    x.max(floor).ln()
                }
            }
        }
    }

    /// Inverse transform of a single value. NaN passes through.
    ///
    /// For [`AttributeTransform::Log`] the inverse is `exp`, so any value a
    /// cleaning strategy produced in log space maps back to a positive raw
    /// value — matching the paper, where negative imputations occur only
    /// *without* the log transform.
    pub fn inverse(&self, y: f64) -> f64 {
        match *self {
            AttributeTransform::Identity => y,
            AttributeTransform::Log { .. } => {
                if y.is_nan() {
                    y
                } else {
                    y.exp()
                }
            }
        }
    }

    /// Applies the forward transform to a slice in place.
    pub fn forward_slice(&self, xs: &mut [f64]) {
        if matches!(self, AttributeTransform::Identity) {
            return;
        }
        for x in xs {
            *x = self.forward(*x);
        }
    }

    /// Applies the inverse transform to a slice in place.
    pub fn inverse_slice(&self, xs: &mut [f64]) {
        if matches!(self, AttributeTransform::Identity) {
            return;
        }
        for x in xs {
            *x = self.inverse(*x);
        }
    }

    /// Whether this is the identity transform.
    pub fn is_identity(&self) -> bool {
        matches!(self, AttributeTransform::Identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        let t = AttributeTransform::Identity;
        assert_eq!(t.forward(3.5), 3.5);
        assert_eq!(t.inverse(3.5), 3.5);
        assert!(t.is_identity());
    }

    #[test]
    fn log_roundtrip_for_positive_values() {
        let t = AttributeTransform::log();
        for &x in &[0.001, 1.0, 42.0, 1e6] {
            let y = t.forward(x);
            assert!((t.inverse(y) - x).abs() / x < 1e-12);
        }
    }

    #[test]
    fn log_floors_nonpositive_values() {
        let t = AttributeTransform::Log { floor: 1e-6 };
        let y_neg = t.forward(-5.0);
        let y_zero = t.forward(0.0);
        assert_eq!(y_neg, (1e-6f64).ln());
        assert_eq!(y_zero, y_neg);
        // Floored values come back as the floor, not the original negative.
        assert!((t.inverse(y_neg) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn missing_passes_through_both_ways() {
        let t = AttributeTransform::log();
        assert!(t.forward(f64::NAN).is_nan());
        assert!(t.inverse(f64::NAN).is_nan());
    }

    #[test]
    fn slice_transforms_roundtrip() {
        let t = AttributeTransform::log();
        let mut xs = [1.0, 10.0, f64::NAN];
        t.forward_slice(&mut xs);
        assert!((xs[0] - 0.0).abs() < 1e-12);
        assert!((xs[1] - 10.0f64.ln()).abs() < 1e-12);
        assert!(xs[2].is_nan());
        t.inverse_slice(&mut xs);
        assert!((xs[0] - 1.0).abs() < 1e-12);
        assert!((xs[1] - 10.0).abs() < 1e-11);
        assert!(xs[2].is_nan());
    }

    #[test]
    fn log_is_monotone_on_positive_reals() {
        let t = AttributeTransform::log();
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let y = t.forward(i as f64 * 0.37);
            assert!(y > prev);
            prev = y;
        }
    }
}
