/// Quantile of an **ascending-sorted** slice by linear interpolation
/// (type-7 estimator, the R/NumPy default).
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = h - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Element at ascending rank `k` (0-based, by [`f64::total_cmp`]) of the
/// multiset union of two ascending-sorted slices, without materializing
/// the merge. Equal values are interchangeable, so the result is
/// bit-identical to `merge(a, b)[k]`.
pub fn select_sorted_pair(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert!(k < a.len() + b.len(), "rank out of range");
    let (a, b) = if a.len() > b.len() { (b, a) } else { (a, b) };
    // Binary search the number `i` of elements taken from `a`: the
    // smallest split where b's untaken prefix no longer precedes a[i].
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        if j > 0 && b[j - 1].total_cmp(&a[i]).is_gt() {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let i = lo;
    let j = k - i;
    let next_a = (i < a.len()).then(|| a[i]);
    let next_b = (j < b.len()).then(|| b[j]);
    match (next_a, next_b) {
        (Some(x), Some(y)) => {
            if x.total_cmp(&y).is_le() {
                x
            } else {
                y
            }
        }
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => unreachable!("k < a.len() + b.len()"),
    }
}

/// Type-7 quantile of the union of two ascending-sorted slices —
/// bit-identical to `quantile_of_sorted(&merge(a, b), q)` with the merge
/// elided (two rank selections instead of an `O(n)` copy).
pub fn quantile_of_sorted_pair(a: &[f64], b: &[f64], q: f64) -> Option<f64> {
    let len = a.len() + b.len();
    if len == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (len as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Some(select_sorted_pair(a, b, lo));
    }
    let frac = h - lo as f64;
    let xlo = select_sorted_pair(a, b, lo);
    let xhi = select_sorted_pair(a, b, hi);
    Some(xlo + frac * (xhi - xlo))
}

/// Quantile of an unsorted slice, skipping NaNs. `None` when no present
/// values remain.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    let sorted = crate::sorted_present(xs);
    quantile_of_sorted(&sorted, q)
}

/// Median of an unsorted slice, skipping NaNs.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_small_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn nan_is_skipped() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn pair_selection_matches_merge() {
        let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]),
            (vec![], vec![1.0, 2.0]),
            (vec![7.0], vec![]),
            (vec![1.0, 1.0, 1.0], vec![1.0, 2.0]),
            (vec![-3.0, 0.0, 0.0, 9.0], vec![-3.0, 12.0]),
            (vec![f64::NEG_INFINITY, 2.0], vec![2.0, f64::INFINITY]),
        ];
        for (a, b) in cases {
            let mut merged = [a.clone(), b.clone()].concat();
            merged.sort_by(f64::total_cmp);
            for (k, expected) in merged.iter().enumerate() {
                assert_eq!(
                    select_sorted_pair(&a, &b, k).to_bits(),
                    expected.to_bits(),
                    "k={k} a={a:?} b={b:?}"
                );
            }
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
                assert_eq!(
                    quantile_of_sorted_pair(&a, &b, q).map(f64::to_bits),
                    quantile_of_sorted(&merged, q).map(f64::to_bits),
                    "q={q} a={a:?} b={b:?}"
                );
            }
        }
        assert_eq!(quantile_of_sorted_pair(&[], &[], 0.5), None);
    }

    #[test]
    fn q_is_clamped() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), Some(1.0));
        assert_eq!(quantile(&xs, 2.0), Some(2.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }
}
