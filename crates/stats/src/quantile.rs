/// Quantile of an **ascending-sorted** slice by linear interpolation
/// (type-7 estimator, the R/NumPy default).
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = h - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Quantile of an unsorted slice, skipping NaNs. `None` when no present
/// values remain.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    let sorted = crate::sorted_present(xs);
    quantile_of_sorted(&sorted, q)
}

/// Median of an unsorted slice, skipping NaNs.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_small_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn nan_is_skipped() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn q_is_clamped() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), Some(1.0));
        assert_eq!(quantile(&xs, 2.0), Some(2.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }
}
