/// Kullback–Leibler divergence `KL(P ‖ Q)` between two discrete
/// distributions given as probability vectors over the same bins.
///
/// One of the alternative distortion distances named in Definition 1 of the
/// paper. Zero bins are smoothed with `epsilon` mass (re-normalized), since
/// empirical histograms routinely contain empty bins where the other
/// histogram does not.
///
/// Panics if the vectors have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64], epsilon: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "KL requires matching bin counts");
    assert!(epsilon > 0.0, "epsilon must be positive");
    if p.is_empty() {
        return 0.0;
    }
    let smooth = |v: &[f64]| -> Vec<f64> {
        let total: f64 = v.iter().map(|x| x + epsilon).sum();
        v.iter().map(|x| (x + epsilon) / total).collect()
    };
    let ps = smooth(p);
    let qs = smooth(q);
    ps.iter()
        .zip(&qs)
        .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 })
        .sum()
}

/// Jensen–Shannon divergence — a symmetrized, bounded (by `ln 2`) variant
/// of KL, useful when neither data set is privileged as "reference".
pub fn jensen_shannon_divergence(p: &[f64], q: &[f64], epsilon: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "JS requires matching bin counts");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m, epsilon) + 0.5 * kl_divergence(q, &m, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p, EPS).abs() < 1e-9);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d = kl_divergence(&p, &q, EPS);
        assert!(d > 0.5);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.8, 0.15, 0.05];
        let q = [0.4, 0.4, 0.2];
        let d1 = kl_divergence(&p, &q, EPS);
        let d2 = kl_divergence(&q, &p, EPS);
        assert!((d1 - d2).abs() > 1e-3);
    }

    #[test]
    fn kl_handles_zero_bins_via_smoothing() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = kl_divergence(&p, &q, 1e-9);
        assert!(d.is_finite());
        assert!(d > 1.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 0.0, 1.0];
        let d1 = jensen_shannon_divergence(&p, &q, EPS);
        let d2 = jensen_shannon_divergence(&q, &p, EPS);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 <= 2.0f64.ln() + 1e-9);
        assert!(d1 > 0.5);
    }

    #[test]
    fn empty_inputs_give_zero() {
        assert_eq!(kl_divergence(&[], &[], EPS), 0.0);
    }

    #[test]
    #[should_panic(expected = "matching bin counts")]
    fn mismatched_lengths_panic() {
        kl_divergence(&[1.0], &[0.5, 0.5], EPS);
    }
}
