/// Moment summary of a sample, computed over present (non-NaN) values.
///
/// A `Summary` over an empty (or all-missing) slice has `n == 0` and NaN
/// statistics; callers should check [`Summary::is_empty`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of present values.
    pub n: usize,
    /// Number of missing (NaN) values that were skipped.
    pub missing: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (denominator `n - 1`; 0 when `n < 2`).
    pub variance: f64,
    /// Minimum present value.
    pub min: f64,
    /// Maximum present value.
    pub max: f64,
    /// Sample skewness (adjusted Fisher–Pearson; NaN when `n < 3`).
    pub skewness: f64,
    /// Excess kurtosis (NaN when `n < 4`).
    pub kurtosis: f64,
}

impl Summary {
    /// Computes a summary over the present values of `xs`.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut n = 0usize;
        let mut missing = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;

        // One-pass streaming moments (Welford / Pébay update).
        for &x in xs {
            if x.is_nan() {
                missing += 1;
                continue;
            }
            n += 1;
            let nf = n as f64;
            let delta = x - mean;
            let delta_n = delta / nf;
            let delta_n2 = delta_n * delta_n;
            let term1 = delta * delta_n * (nf - 1.0);
            mean += delta_n;
            m4 += term1 * delta_n2 * (nf * nf - 3.0 * nf + 3.0) + 6.0 * delta_n2 * m2
                - 4.0 * delta_n * m3;
            m3 += term1 * delta_n * (nf - 2.0) - 3.0 * delta_n * m2;
            m2 += term1;
            if x < min {
                min = x;
            }
            if x > max {
                max = x;
            }
        }

        if n == 0 {
            return Summary {
                n,
                missing,
                mean: f64::NAN,
                variance: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                skewness: f64::NAN,
                kurtosis: f64::NAN,
            };
        }

        let nf = n as f64;
        let variance = if n >= 2 { m2 / (nf - 1.0) } else { 0.0 };
        let skewness = if n >= 3 && m2 > 0.0 {
            // Adjusted Fisher–Pearson standardized moment coefficient.
            let g1 = (nf.sqrt() * m3) / m2.powf(1.5);
            ((nf * (nf - 1.0)).sqrt() / (nf - 2.0)) * g1
        } else {
            f64::NAN
        };
        let kurtosis = if n >= 4 && m2 > 0.0 {
            (nf * m4) / (m2 * m2) - 3.0
        } else {
            f64::NAN
        };

        Summary {
            n,
            missing,
            mean,
            variance,
            min,
            max,
            skewness,
            kurtosis,
        }
    }

    /// Whether there were no present values.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// The paper's 3-σ limits `(mean - k σ, mean + k σ)` for outlier rules.
    pub fn sigma_limits(&self, k: f64) -> (f64, f64) {
        let s = self.std_dev();
        (self.mean - k * s, self.mean + k * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn missing_values_are_skipped_and_counted() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(s.n, 2);
        assert_eq!(s.missing, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::from_slice(&[]);
        assert!(s.is_empty());
        assert!(s.mean.is_nan());
        let s2 = Summary::from_slice(&[f64::NAN]);
        assert!(s2.is_empty());
        assert_eq!(s2.missing, 1);
    }

    #[test]
    fn skewness_sign_tracks_tail() {
        let right: Vec<f64> = (0..200).map(|i| ((i as f64) / 20.0).exp()).collect();
        assert!(Summary::from_slice(&right).skewness > 1.0);
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!(Summary::from_slice(&left).skewness < -1.0);
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(Summary::from_slice(&sym).skewness.abs() < 1e-9);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let k = Summary::from_slice(&xs).kurtosis;
        assert!(
            (k + 1.2).abs() < 0.05,
            "uniform excess kurtosis ≈ -1.2, got {k}"
        );
    }

    #[test]
    fn small_samples_have_nan_higher_moments() {
        assert!(Summary::from_slice(&[1.0, 2.0]).skewness.is_nan());
        assert!(Summary::from_slice(&[1.0, 2.0, 3.0]).kurtosis.is_nan());
        assert_eq!(Summary::from_slice(&[5.0]).variance, 0.0);
    }

    #[test]
    fn sigma_limits_bracket_mean() {
        let s = Summary::from_slice(&[0.0, 10.0]);
        let (lo, hi) = s.sigma_limits(3.0);
        assert!(lo < s.mean && s.mean < hi);
        assert!((hi - s.mean - 3.0 * s.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let s = Summary::from_slice(&[7.0; 10]);
        assert_eq!(s.variance, 0.0);
        assert!(s.skewness.is_nan());
    }
}
