use crate::HistogramSpec;
use std::collections::BTreeMap;

/// Uniform binning of a `d`-dimensional box: one [`HistogramSpec`] per axis.
///
/// The paper pools every time instance of every sampled series into a cloud
/// of `v`-tuples and measures statistical distortion as the EMD between two
/// such clouds (§3.5, §6.1). Exact EMD over tens of thousands of raw points
/// is infeasible; like reference \[1\] of the paper we first quantize each
/// cloud onto a shared grid, producing a sparse *signature* (occupied cell →
/// mass) that the transportation solver consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    axes: Vec<HistogramSpec>,
}

/// Empty column half for the single-column pair delegations.
const EMPTY: &[f64] = &[];

impl GridSpec {
    /// Creates a grid from per-axis specs (at least one axis).
    pub fn new(axes: Vec<HistogramSpec>) -> Self {
        assert!(!axes.is_empty(), "grid needs at least one axis");
        GridSpec { axes }
    }

    /// Builds a grid covering the union of two point clouds, with `bins`
    /// bins per axis. Points are rows; all rows must have equal length.
    /// Axes where *neither* cloud has a present value get a degenerate
    /// (widened) spec. Returns `None` when the clouds are empty.
    pub fn covering(a: &[Vec<f64>], b: &[Vec<f64>], bins: usize) -> Option<Self> {
        Self::covering_quantiles(a, b, bins, 0.0, 1.0)
    }

    /// Like [`GridSpec::covering`], but spans only the `[qlo, qhi]`
    /// quantile range of each axis (over the union of the clouds).
    ///
    /// Heavy-tailed telemetry (load spikes hundreds of times the typical
    /// value) would otherwise stretch the axes until the entire data bulk
    /// collapses into a single cell and the EMD goes blind. Out-of-range
    /// values are clamped into the edge bins by
    /// [`HistogramSpec::bin_of`], so no mass is dropped.
    pub fn covering_quantiles(
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        bins: usize,
        qlo: f64,
        qhi: f64,
    ) -> Option<Self> {
        let columns = sorted_union_columns(a, b)?;
        Some(Self::from_sorted_columns_quantiles(
            &columns, bins, qlo, qhi,
        ))
    }

    /// Quantile cover from per-axis columns that are already sorted
    /// ascending (by [`f64::total_cmp`]) and NaN-free — the seam that lets
    /// callers cache one cloud's sorted columns and merge in the other
    /// cloud instead of re-sorting the union from scratch.
    /// [`GridSpec::covering_quantiles`] delegates here, so both paths are
    /// bit-identical by construction. Empty columns get a degenerate
    /// (widened) axis.
    pub fn from_sorted_columns_quantiles(
        columns: &[Vec<f64>],
        bins: usize,
        qlo: f64,
        qhi: f64,
    ) -> Self {
        let pairs: Vec<(&[f64], &[f64])> = columns.iter().map(|c| (c.as_slice(), EMPTY)).collect();
        Self::from_sorted_column_pairs_quantiles(&pairs, bins, qlo, qhi)
    }

    /// Quantile cover where each axis's union column is given as **two**
    /// sorted halves (e.g. a cached cloud's column and a derived
    /// counterpart column): quantiles are read by two-array rank selection
    /// ([`crate::quantile_of_sorted_pair`]), so the union is never
    /// materialized. This is the single implementation behind every
    /// quantile cover — the merged-column entry points delegate here with
    /// an empty second half.
    pub fn from_sorted_column_pairs_quantiles(
        pairs: &[(&[f64], &[f64])],
        bins: usize,
        qlo: f64,
        qhi: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&qlo) && (0.0..=1.0).contains(&qhi) && qlo < qhi,
            "quantiles must satisfy 0 <= qlo < qhi <= 1"
        );
        assert!(!pairs.is_empty(), "grid needs at least one axis");
        let mut axes = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            let (Some(lo), Some(hi)) = (
                crate::quantile_of_sorted_pair(a, b, qlo),
                crate::quantile_of_sorted_pair(a, b, qhi),
            ) else {
                axes.push(HistogramSpec::new(0.0, 0.0, bins));
                continue;
            };
            axes.push(HistogramSpec::new(lo, hi, bins));
        }
        GridSpec { axes }
    }

    /// Robust cover: each axis spans `median ± z_range · IQR` of the union,
    /// with values outside clamping into the edge bins.
    ///
    /// For heavy-tailed telemetry this is the cover that keeps the data
    /// bulk resolved (several bins across the interquartile range) while
    /// spikes, dropouts, and wild model-imputed values accumulate in the
    /// edge bins at a *bounded but large* ground distance — exactly the
    /// "mass moved into low-likelihood regions" signal the statistical-
    /// distortion metric must see. Degenerate axes (IQR = 0) fall back to
    /// the min–max cover.
    pub fn covering_robust(
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        bins: usize,
        z_range: f64,
    ) -> Option<Self> {
        let columns = sorted_union_columns(a, b)?;
        Some(Self::from_sorted_columns_robust(&columns, bins, z_range))
    }

    /// Robust cover from per-axis columns that are already sorted ascending
    /// (by [`f64::total_cmp`]) and NaN-free. [`GridSpec::covering_robust`]
    /// delegates here; see [`GridSpec::from_sorted_columns_quantiles`] for
    /// the caching rationale.
    pub fn from_sorted_columns_robust(columns: &[Vec<f64>], bins: usize, z_range: f64) -> Self {
        let pairs: Vec<(&[f64], &[f64])> = columns.iter().map(|c| (c.as_slice(), EMPTY)).collect();
        Self::from_sorted_column_pairs_robust(&pairs, bins, z_range)
    }

    /// Robust cover over per-axis sorted column **pairs**; see
    /// [`GridSpec::from_sorted_column_pairs_quantiles`] for the pair
    /// representation. Single implementation behind every robust cover.
    pub fn from_sorted_column_pairs_robust(
        pairs: &[(&[f64], &[f64])],
        bins: usize,
        z_range: f64,
    ) -> Self {
        assert!(z_range > 0.0, "z_range must be positive");
        assert!(!pairs.is_empty(), "grid needs at least one axis");
        let mut axes = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            let (Some(median), Some(q1), Some(q3)) = (
                crate::quantile_of_sorted_pair(a, b, 0.5),
                crate::quantile_of_sorted_pair(a, b, 0.25),
                crate::quantile_of_sorted_pair(a, b, 0.75),
            ) else {
                axes.push(HistogramSpec::new(0.0, 0.0, bins));
                continue;
            };
            let iqr = q3 - q1;
            if iqr > 0.0 {
                axes.push(HistogramSpec::new(
                    median - z_range * iqr,
                    median + z_range * iqr,
                    bins,
                ));
            } else {
                let lo = crate::select_sorted_pair(a, b, 0);
                let hi = crate::select_sorted_pair(a, b, a.len() + b.len() - 1);
                axes.push(HistogramSpec::new(lo, hi, bins));
            }
        }
        GridSpec { axes }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis specs.
    pub fn axes(&self) -> &[HistogramSpec] {
        &self.axes
    }

    /// Cell coordinates of a point; `None` if any coordinate is NaN
    /// (records with missing attributes carry no density — the paper's EMD
    /// compares the distributions of observed tuples).
    pub fn cell_of(&self, point: &[f64]) -> Option<Vec<u32>> {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let mut cell = Vec::with_capacity(self.dim());
        for (spec, &x) in self.axes.iter().zip(point) {
            cell.push(spec.bin_of(x)? as u32);
        }
        Some(cell)
    }

    /// Centre of a cell in data coordinates.
    pub fn center_of(&self, cell: &[u32]) -> Vec<f64> {
        assert_eq!(cell.len(), self.dim(), "cell dimension mismatch");
        self.axes
            .iter()
            .zip(cell)
            .map(|(spec, &i)| spec.center(i as usize))
            .collect()
    }
}

/// Per-axis sorted (by [`f64::total_cmp`]), NaN-free columns of the union
/// of two point clouds. `None` when both clouds are empty.
///
/// This is the shared quantization input behind the [`GridSpec::covering`]
/// family: the sorted union column of each axis is what the quantile and
/// robust covers consume.
pub fn sorted_union_columns(a: &[Vec<f64>], b: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let dim = a.first().or_else(|| b.first())?.len();
    let mut columns = Vec::with_capacity(dim);
    for k in 0..dim {
        let mut column = Vec::with_capacity(a.len() + b.len());
        for row in a.iter().chain(b.iter()) {
            assert_eq!(row.len(), dim, "ragged point cloud");
            let x = row[k];
            if !x.is_nan() {
                column.push(x);
            }
        }
        column.sort_by(f64::total_cmp);
        columns.push(column);
    }
    Some(columns)
}

/// A sparse multi-dimensional histogram over a [`GridSpec`].
#[derive(Debug, Clone)]
pub struct GridHistogram {
    spec: GridSpec,
    // Keyed by cell coordinates in a BTreeMap so iteration *is* the
    // sorted cell order every consumer needs — no hash-seed-dependent
    // order exists anywhere in this result path (sd-lint D001).
    cells: BTreeMap<Vec<u32>, f64>,
    total: f64,
    skipped: usize,
}

impl GridHistogram {
    /// An empty histogram over the grid.
    pub fn empty(spec: GridSpec) -> Self {
        GridHistogram {
            spec,
            cells: BTreeMap::new(),
            total: 0.0,
            skipped: 0,
        }
    }

    /// Histogram of a point cloud. Rows with any missing coordinate are
    /// counted in [`GridHistogram::skipped`] rather than binned.
    pub fn from_points(spec: GridSpec, points: &[Vec<f64>]) -> Self {
        let mut h = GridHistogram::empty(spec);
        for p in points {
            h.add(p);
        }
        h
    }

    /// Adds one point with unit mass.
    pub fn add(&mut self, point: &[f64]) {
        match self.spec.cell_of(point) {
            Some(cell) => {
                *self.cells.entry(cell).or_insert(0.0) += 1.0;
                self.total += 1.0;
            }
            None => self.skipped += 1,
        }
    }

    /// The grid spec.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of occupied cells.
    pub fn occupied(&self) -> usize {
        self.cells.len()
    }

    /// Total binned mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of points skipped because of missing coordinates.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Occupied cells with their raw masses, sorted by cell coordinates.
    ///
    /// Used to align two histograms over the union of their occupied cells
    /// (e.g. for KL divergence, which is a same-bin distance).
    pub fn cell_masses(&self) -> Vec<(Vec<u32>, f64)> {
        // BTreeMap iteration is already in ascending cell order — the
        // same `Vec<u32>::cmp` the former sort used.
        self.cells.iter().map(|(c, &m)| (c.clone(), m)).collect()
    }

    /// The signature: `(cell centre, probability)` for every occupied cell,
    /// sorted by cell coordinates for determinism. Empty histogram yields an
    /// empty signature.
    pub fn signature(&self) -> Vec<(Vec<f64>, f64)> {
        if self.total == 0.0 {
            return Vec::new();
        }
        self.cells
            .iter()
            .map(|(cell, &mass)| (self.spec.center_of(cell), mass / self.total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(bins: usize) -> GridSpec {
        GridSpec::new(vec![
            HistogramSpec::new(0.0, 1.0, bins),
            HistogramSpec::new(0.0, 1.0, bins),
        ])
    }

    #[test]
    fn cell_of_maps_points() {
        let g = unit_grid(2);
        assert_eq!(g.cell_of(&[0.1, 0.9]), Some(vec![0, 1]));
        assert_eq!(g.cell_of(&[0.9, 0.1]), Some(vec![1, 0]));
        assert_eq!(g.cell_of(&[f64::NAN, 0.5]), None);
    }

    #[test]
    fn center_roundtrip() {
        let g = unit_grid(4);
        let cell = g.cell_of(&[0.3, 0.8]).unwrap();
        let c = g.center_of(&cell);
        assert!((c[0] - 0.375).abs() < 1e-12);
        assert!((c[1] - 0.875).abs() < 1e-12);
    }

    #[test]
    fn covering_spans_both_clouds() {
        let a = vec![vec![0.0, 10.0]];
        let b = vec![vec![5.0, -10.0]];
        let g = GridSpec::covering(&a, &b, 4).unwrap();
        assert_eq!(g.axes()[0].lo, 0.0);
        assert_eq!(g.axes()[0].hi, 5.0);
        assert_eq!(g.axes()[1].lo, -10.0);
        assert_eq!(g.axes()[1].hi, 10.0);
        assert!(GridSpec::covering(&[], &[], 4).is_none());
    }

    #[test]
    fn covering_tolerates_all_missing_axis() {
        let a = vec![vec![1.0, f64::NAN]];
        let g = GridSpec::covering(&a, &[], 3).unwrap();
        // Second axis degenerate but valid.
        assert!(g.axes()[1].lo < g.axes()[1].hi);
    }

    #[test]
    fn histogram_masses_and_signature() {
        let g = unit_grid(2);
        let points = vec![
            vec![0.1, 0.1],
            vec![0.2, 0.2],
            vec![0.9, 0.9],
            vec![0.3, f64::NAN],
        ];
        let h = GridHistogram::from_points(g, &points);
        assert_eq!(h.total(), 3.0);
        assert_eq!(h.skipped(), 1);
        assert_eq!(h.occupied(), 2);
        let sig = h.signature();
        assert_eq!(sig.len(), 2);
        // Sorted by cell coordinates: (0,0) first with mass 2/3.
        assert!((sig[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((sig[1].1 - 1.0 / 3.0).abs() < 1e-12);
        let masses: f64 = sig.iter().map(|(_, m)| m).sum();
        assert!((masses - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_is_insertion_order_independent() {
        // Bit-identity regression for the HashMap → BTreeMap switch: the
        // signature and cell masses must not depend on the order points
        // arrive in (and must stay bit-for-bit what the sorted-drain
        // HashMap implementation produced).
        let points: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = (i as f64 * 0.37) % 1.0;
                let y = (i as f64 * 0.61) % 1.0;
                vec![x, y]
            })
            .collect();
        let forward = GridHistogram::from_points(unit_grid(4), &points);
        let mut reversed_points = points.clone();
        reversed_points.reverse();
        let reversed = GridHistogram::from_points(unit_grid(4), &reversed_points);
        // Interleaved: odd indices then even.
        let interleaved_points: Vec<Vec<f64>> = points
            .iter()
            .skip(1)
            .step_by(2)
            .chain(points.iter().step_by(2))
            .cloned()
            .collect();
        let interleaved = GridHistogram::from_points(unit_grid(4), &interleaved_points);
        for other in [&reversed, &interleaved] {
            assert_eq!(forward.cell_masses(), other.cell_masses());
            let a = forward.signature();
            let b = other.signature();
            assert_eq!(a.len(), b.len());
            for ((ca, ma), (cb, mb)) in a.iter().zip(&b) {
                assert_eq!(ma.to_bits(), mb.to_bits(), "mass bits differ");
                for (xa, xb) in ca.iter().zip(cb) {
                    assert_eq!(xa.to_bits(), xb.to_bits(), "centre bits differ");
                }
            }
        }
    }

    #[test]
    fn signature_pinned_values() {
        // Pinned output of the pre-BTreeMap implementation (cells sorted
        // by coordinates, mass normalized by binned total): proves the
        // container switch changed nothing observable.
        let g = unit_grid(2);
        let points = vec![
            vec![0.9, 0.9],
            vec![0.1, 0.1],
            vec![0.2, 0.2],
            vec![0.6, 0.1],
        ];
        let h = GridHistogram::from_points(g, &points);
        let sig = h.signature();
        assert_eq!(sig.len(), 3);
        assert_eq!(sig[0].0, vec![0.25, 0.25]);
        assert_eq!(sig[0].1.to_bits(), 0.5f64.to_bits());
        assert_eq!(sig[1].0, vec![0.75, 0.25]);
        assert_eq!(sig[1].1.to_bits(), 0.25f64.to_bits());
        assert_eq!(sig[2].0, vec![0.75, 0.75]);
        assert_eq!(sig[2].1.to_bits(), 0.25f64.to_bits());
        let masses = h.cell_masses();
        assert_eq!(
            masses,
            vec![(vec![0, 0], 2.0), (vec![1, 0], 1.0), (vec![1, 1], 1.0),]
        );
    }

    #[test]
    fn empty_signature() {
        let h = GridHistogram::empty(unit_grid(2));
        assert!(h.signature().is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let g = unit_grid(2);
        g.cell_of(&[0.5]);
    }
}
