use crate::quantile_of_sorted;

/// Empirical cumulative distribution function of a sample.
///
/// Stores the sorted present values; evaluation is a binary search.
/// The 1-D Earth Mover's Distance is the L1 distance between two ECDFs,
/// which is why this type sits in the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, skipping NaN values.
    pub fn new(xs: &[f64]) -> Self {
        Ecdf {
            sorted: crate::sorted_present(xs),
        }
    }

    /// Number of present observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample was empty (or all-missing).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying the ECDF.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)` — the fraction of observations `<= x`. 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of values <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse ECDF (quantile function) by linear interpolation.
    pub fn inverse(&self, q: f64) -> Option<f64> {
        quantile_of_sorted(&self.sorted, q)
    }

    /// Kolmogorov–Smirnov statistic `sup |F(x) − G(x)|` against another ECDF.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        ks_statistic_sorted(&self.sorted, &other.sorted)
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `sup_x |F_a(x) − G_b(x)|` from
/// two ascending-sorted (by [`f64::total_cmp`]), NaN-free samples.
///
/// One merge walk over the pooled sample: at every distinct pooled value
/// both pointers advance past all ties, then `|i/n − j/m|` is a candidate
/// for the supremum. Ties are grouped by **numeric** equality (so `-0.0`
/// and `+0.0` — adjacent under the `total_cmp` sort order — form one
/// group, matching the ECDF's numeric `<=`), while the walk order itself
/// follows the sorted inputs; every intermediate float is a pure function
/// of the two sorted inputs, so callers that derive the sorted columns
/// incrementally (remove + merge multiset edits) get bit-identical
/// statistics to sorting from scratch. Empty samples yield 1.0 against a
/// non-empty counterpart and 0.0 against another empty one (the
/// conventional `sup` over an empty candidate set).
pub fn ks_statistic_sorted(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let (n, m) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup: f64 = 0.0;
    while i < a.len() || j < b.len() {
        let x = next_pooled_value(a, b, i, j);
        while i < a.len() && same_group(a[i], x) {
            i += 1;
        }
        while j < b.len() && same_group(b[j], x) {
            j += 1;
        }
        sup = sup.max((i as f64 / n - j as f64 / m).abs());
    }
    sup
}

/// Whether `v` belongs to the tie group of the pooled value `x`: numeric
/// equality (merging `-0.0` with `+0.0`, matching the ECDF's `<=`), with a
/// `total_cmp` fallback so the walk still advances if a caller violates
/// the NaN-free precondition.
fn same_group(v: f64, x: f64) -> bool {
    v == x || v.total_cmp(&x).is_eq()
}

/// The smallest (by the `total_cmp` sort order) not-yet-consumed pooled
/// value during a two-sample merge walk.
fn next_pooled_value(a: &[f64], b: &[f64], i: usize, j: usize) -> f64 {
    match (a.get(i), b.get(j)) {
        (Some(&x), Some(&y)) => {
            if x.total_cmp(&y).is_le() {
                x
            } else {
                y
            }
        }
        (Some(&x), None) => x,
        (None, Some(&y)) => y,
        (None, None) => unreachable!("caller guards non-empty remainder"),
    }
}

/// Two-sample Cramér–von Mises statistic from two ascending-sorted (by
/// [`f64::total_cmp`]), NaN-free samples:
///
/// `T = n·m / (n+m)² · Σ_z c(z) · (F_a(z) − G_b(z))²`
///
/// summed over the distinct pooled values `z` with pooled multiplicity
/// `c(z)`, i.e. the squared ECDF gap integrated against the pooled
/// empirical measure. Ties group by numeric equality and the summation
/// runs in pooled ascending order, so the result is bit-deterministic in
/// the sorted inputs (same contract as [`ks_statistic_sorted`]). Returns
/// 0.0 when either sample is empty.
pub fn cvm_statistic_sorted(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (n, m) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sum = 0.0f64;
    while i < a.len() || j < b.len() {
        let x = next_pooled_value(a, b, i, j);
        let mut count = 0usize;
        while i < a.len() && same_group(a[i], x) {
            i += 1;
            count += 1;
        }
        while j < b.len() && same_group(b[j], x) {
            j += 1;
            count += 1;
        }
        let gap = i as f64 / n - j as f64 / m;
        sum += count as f64 * gap * gap;
    }
    n * m / ((n + m) * (n + m)) * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_at_sample_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn handles_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
    }

    #[test]
    fn nan_skipped_and_empty() {
        let e = Ecdf::new(&[f64::NAN, 2.0]);
        assert_eq!(e.n(), 1);
        let empty = Ecdf::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.eval(0.0), 0.0);
        assert_eq!(empty.inverse(0.5), None);
    }

    #[test]
    fn inverse_interpolates() {
        let e = Ecdf::new(&[0.0, 10.0]);
        assert_eq!(e.inverse(0.5), Some(5.0));
    }

    #[test]
    fn ks_statistic_of_identical_samples_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
    }

    #[test]
    fn ks_statistic_of_disjoint_samples_is_one() {
        let a = Ecdf::new(&[0.0, 1.0]);
        let b = Ecdf::new(&[10.0, 11.0]);
        assert_eq!(a.ks_statistic(&b), 1.0);
        assert_eq!(b.ks_statistic(&a), 1.0);
    }

    #[test]
    fn sorted_ks_matches_bruteforce_ecdf_walk() {
        let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![1.0, 2.0, 3.0], vec![1.5, 2.5]),
            (vec![1.0, 1.0, 2.0], vec![1.0, 3.0, 3.0]),
            (vec![0.0], vec![0.0]),
            (vec![-5.0, 0.0, 5.0], vec![-5.0, -5.0, 6.0, 7.0]),
        ];
        for (a, b) in cases {
            let ea = Ecdf::new(&a);
            let eb = Ecdf::new(&b);
            let mut sup: f64 = 0.0;
            for &x in a.iter().chain(b.iter()) {
                sup = sup.max((ea.eval(x) - eb.eval(x)).abs());
            }
            assert_eq!(
                ks_statistic_sorted(&a, &b).to_bits(),
                sup.to_bits(),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn signed_zeros_are_one_tie_group() {
        // -0.0 sorts before +0.0 under total_cmp but is numerically equal;
        // the statistics must treat the two as one value (matching the
        // ECDF's numeric <=), not report a spurious distribution gap.
        assert_eq!(ks_statistic_sorted(&[-0.0], &[0.0]), 0.0);
        assert_eq!(cvm_statistic_sorted(&[-0.0], &[0.0]), 0.0);
        assert_eq!(
            ks_statistic_sorted(&[-0.0, 0.0, 1.0], &[0.0, 0.0, 1.0]),
            0.0
        );
        let e = Ecdf::new(&[-0.0]).ks_statistic(&Ecdf::new(&[0.0]));
        assert_eq!(e, 0.0);
    }

    #[test]
    fn ks_and_cvm_empty_sample_conventions() {
        assert_eq!(ks_statistic_sorted(&[], &[]), 0.0);
        assert_eq!(ks_statistic_sorted(&[1.0], &[]), 1.0);
        assert_eq!(cvm_statistic_sorted(&[], &[1.0]), 0.0);
        assert_eq!(cvm_statistic_sorted(&[], &[]), 0.0);
    }

    #[test]
    fn cvm_is_zero_on_identical_samples_and_grows_with_separation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(cvm_statistic_sorted(&a, &a).abs() < 1e-15);
        let near = cvm_statistic_sorted(&a, &[1.5, 2.5, 3.5, 4.5]);
        let far = cvm_statistic_sorted(&a, &[10.0, 11.0, 12.0, 13.0]);
        assert!(far > near, "far {far} vs near {near}");
        // Fully separated samples approach the statistic's upper range.
        assert!(far > 0.3);
        // Symmetry: the squared gap does not privilege either sample.
        let ab = cvm_statistic_sorted(&a, &[1.5, 2.5]);
        let ba = cvm_statistic_sorted(&[1.5, 2.5], &a);
        assert_eq!(ab.to_bits(), ba.to_bits());
    }
}
