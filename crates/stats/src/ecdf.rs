use crate::quantile_of_sorted;

/// Empirical cumulative distribution function of a sample.
///
/// Stores the sorted present values; evaluation is a binary search.
/// The 1-D Earth Mover's Distance is the L1 distance between two ECDFs,
/// which is why this type sits in the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, skipping NaN values.
    pub fn new(xs: &[f64]) -> Self {
        Ecdf {
            sorted: crate::sorted_present(xs),
        }
    }

    /// Number of present observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample was empty (or all-missing).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying the ECDF.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)` — the fraction of observations `<= x`. 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of values <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse ECDF (quantile function) by linear interpolation.
    pub fn inverse(&self, q: f64) -> Option<f64> {
        quantile_of_sorted(&self.sorted, q)
    }

    /// Kolmogorov–Smirnov statistic `sup |F(x) − G(x)|` against another ECDF.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut sup: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            sup = sup.max((self.eval(x) - other.eval(x)).abs());
        }
        sup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_at_sample_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn handles_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
    }

    #[test]
    fn nan_skipped_and_empty() {
        let e = Ecdf::new(&[f64::NAN, 2.0]);
        assert_eq!(e.n(), 1);
        let empty = Ecdf::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.eval(0.0), 0.0);
        assert_eq!(empty.inverse(0.5), None);
    }

    #[test]
    fn inverse_interpolates() {
        let e = Ecdf::new(&[0.0, 10.0]);
        assert_eq!(e.inverse(0.5), Some(5.0));
    }

    #[test]
    fn ks_statistic_of_identical_samples_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
    }

    #[test]
    fn ks_statistic_of_disjoint_samples_is_one() {
        let a = Ecdf::new(&[0.0, 1.0]);
        let b = Ecdf::new(&[10.0, 11.0]);
        assert_eq!(a.ks_statistic(&b), 1.0);
        assert_eq!(b.ks_statistic(&a), 1.0);
    }
}
