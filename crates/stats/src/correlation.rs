/// Pearson correlation between two equal-length samples, computed over the
/// pairs where **both** values are present (non-NaN).
///
/// Returns `None` when fewer than two complete pairs exist or either
/// marginal is constant. Used by the glitch co-occurrence analyses: the
/// paper observes "considerable overlap between missing and inconsistent
/// values" (Fig. 3), which this quantifies on indicator series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let mut n = 0usize;
    let mut sx = 0.0;
    let mut sy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        n += 1;
        sx += x;
        sy += y;
    }
    if n < 2 {
        return None;
    }
    let mx = sx / n as f64;
    let my = sy / n as f64;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Sample autocorrelation of `xs` at the given lag, over complete pairs.
///
/// Glitches cluster temporally (§6.1); the autocorrelation of a glitch
/// indicator series measures that burstiness.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if lag >= xs.len() {
        return None;
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_orthogonal_pattern() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        let ys = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn missing_pairs_are_dropped() {
        let xs = [1.0, 2.0, f64::NAN, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // constant x
        assert_eq!(pearson(&[f64::NAN, f64::NAN], &[1.0, 2.0]), None);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!((autocorrelation(&xs, 2).unwrap() - 1.0).abs() < 1e-12);
        assert!((autocorrelation(&xs, 1).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_lag_bounds() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(autocorrelation(&xs, 3), None);
        assert!(autocorrelation(&xs, 0).unwrap() > 0.99);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
