/// Specification of a uniform 1-D binning over `[lo, hi]`.
///
/// Values outside the range are clamped into the edge bins, so histograms
/// built from a shared spec always have identical support — the
/// precondition for cross-bin distances like EMD (§3.5: "let `b_i` be the
/// bins covering this support").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Inclusive lower edge of the support.
    pub lo: f64,
    /// Inclusive upper edge of the support.
    pub hi: f64,
    /// Number of bins (≥ 1).
    pub bins: usize,
}

impl HistogramSpec {
    /// Creates a spec; requires `lo < hi` (widened slightly when callers
    /// pass a degenerate range) and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram range must be finite"
        );
        let (lo, hi) = if lo < hi {
            (lo, hi)
        } else {
            // Degenerate (constant sample): widen symmetrically so a valid
            // binning still exists.
            (lo - 0.5, lo + 0.5)
        };
        HistogramSpec { lo, hi, bins }
    }

    /// Spec covering the present values of a sample, optionally padded by a
    /// fraction of the range on both sides.
    pub fn covering(xs: &[f64], bins: usize, pad_fraction: f64) -> Option<Self> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            if x.is_nan() {
                continue;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo > hi {
            return None;
        }
        let pad = (hi - lo) * pad_fraction;
        Some(HistogramSpec::new(lo - pad, hi + pad, bins))
    }

    /// Spec covering the union of two samples (shared support for EMD).
    pub fn covering_both(a: &[f64], b: &[f64], bins: usize) -> Option<Self> {
        let mut all = Vec::with_capacity(a.len() + b.len());
        all.extend_from_slice(a);
        all.extend_from_slice(b);
        Self::covering(&all, bins, 0.0)
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Index of the bin containing `x`, clamping out-of-range values into
    /// the edge bins. NaN returns `None`.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() {
            return None;
        }
        let raw = ((x - self.lo) / self.width()).floor();
        let idx = raw.clamp(0.0, (self.bins - 1) as f64);
        Some(idx as usize)
    }

    /// Centre of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        assert!(i < self.bins, "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.width()
    }
}

/// A 1-D histogram over a [`HistogramSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    spec: HistogramSpec,
    counts: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// An empty histogram over `spec`.
    pub fn empty(spec: HistogramSpec) -> Self {
        Histogram {
            counts: vec![0.0; spec.bins],
            spec,
            total: 0.0,
        }
    }

    /// Histogram of the present values of `xs` over `spec`.
    pub fn from_values(spec: HistogramSpec, xs: &[f64]) -> Self {
        let mut h = Histogram::empty(spec);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Adds one observation (NaN is ignored).
    pub fn add(&mut self, x: f64) {
        if let Some(i) = self.spec.bin_of(x) {
            self.counts[i] += 1.0;
            self.total += 1.0;
        }
    }

    /// Adds a weighted observation.
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        if let Some(i) = self.spec.bin_of(x) {
            self.counts[i] += w;
            self.total += w;
        }
    }

    /// The binning spec.
    pub fn spec(&self) -> &HistogramSpec {
        &self.spec
    }

    /// Raw per-bin masses.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Per-bin probabilities (empty histogram yields all zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0.0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|c| c / self.total).collect()
    }

    /// Bin centres, aligned with [`Histogram::counts`].
    pub fn centers(&self) -> Vec<f64> {
        (0..self.spec.bins).map(|i| self.spec.center(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let spec = HistogramSpec::new(0.0, 10.0, 5);
        assert_eq!(spec.width(), 2.0);
        assert_eq!(spec.bin_of(0.0), Some(0));
        assert_eq!(spec.bin_of(1.99), Some(0));
        assert_eq!(spec.bin_of(2.0), Some(1));
        assert_eq!(spec.bin_of(9.99), Some(4));
        // Upper edge clamps into the last bin.
        assert_eq!(spec.bin_of(10.0), Some(4));
    }

    #[test]
    fn out_of_range_clamps_nan_ignored() {
        let spec = HistogramSpec::new(0.0, 1.0, 4);
        assert_eq!(spec.bin_of(-5.0), Some(0));
        assert_eq!(spec.bin_of(7.0), Some(3));
        assert_eq!(spec.bin_of(f64::NAN), None);
    }

    #[test]
    fn degenerate_range_is_widened() {
        let spec = HistogramSpec::new(3.0, 3.0, 2);
        assert!(spec.lo < spec.hi);
        assert_eq!(spec.bin_of(3.0), Some(1));
    }

    #[test]
    fn covering_pads_and_handles_empty() {
        let spec = HistogramSpec::covering(&[1.0, 3.0], 4, 0.5).unwrap();
        assert!((spec.lo - 0.0).abs() < 1e-12);
        assert!((spec.hi - 4.0).abs() < 1e-12);
        assert!(HistogramSpec::covering(&[f64::NAN], 4, 0.0).is_none());
    }

    #[test]
    fn covering_both_spans_union() {
        let spec = HistogramSpec::covering_both(&[0.0, 1.0], &[5.0], 10).unwrap();
        assert_eq!(spec.lo, 0.0);
        assert_eq!(spec.hi, 5.0);
    }

    #[test]
    fn histogram_counts_and_probabilities() {
        let spec = HistogramSpec::new(0.0, 4.0, 4);
        let h = Histogram::from_values(spec, &[0.5, 1.5, 1.6, 3.9, f64::NAN]);
        assert_eq!(h.counts(), &[1.0, 2.0, 0.0, 1.0]);
        assert_eq!(h.total(), 4.0);
        let p = h.probabilities();
        assert!((p[1] - 0.5).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_probabilities_are_zero() {
        let h = Histogram::empty(HistogramSpec::new(0.0, 1.0, 3));
        assert_eq!(h.probabilities(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::empty(HistogramSpec::new(0.0, 1.0, 2));
        h.add_weighted(0.25, 3.0);
        h.add_weighted(0.75, 1.0);
        assert_eq!(h.counts(), &[3.0, 1.0]);
        assert_eq!(h.probabilities(), vec![0.75, 0.25]);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::empty(HistogramSpec::new(0.0, 4.0, 4));
        assert_eq!(h.centers(), vec![0.5, 1.5, 2.5, 3.5]);
    }
}
