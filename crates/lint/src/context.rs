//! Per-file analysis context: test regions and escape-hatch directives.
//!
//! Two structural facts qualify every token before the rules see it:
//!
//! 1. **Test regions.** `P001` exempts test code. A test region is the
//!    brace-delimited body of any item carrying a `test`-mentioning
//!    attribute (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`), with
//!    `#[cfg(not(test))]` explicitly *not* counting. Regions nest freely;
//!    membership is a line-span lookup.
//!
//! 2. **Allow directives.** The escape hatch is a comment of the form
//!    `// sd-lint: allow(RULE, reason)`. A trailing directive suppresses
//!    findings of that rule on its own line; a standalone directive (first
//!    thing on its line) suppresses findings on the *next* line. The
//!    reason is mandatory — an escape without a justification is itself a
//!    finding ([`RuleId::A000`]) — and every accepted escape is counted in
//!    the report artifact so suppressed debt stays visible.

use crate::diagnostics::{Diagnostic, RuleId};
use crate::lexer::{Lexed, Token, TokenKind};

/// An accepted `sd-lint: allow(RULE, reason)` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule being allowed.
    pub rule: RuleId,
    /// The mandatory human justification.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
}

/// Structural context for one file.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Inclusive `(start, end)` line spans of test code.
    pub test_regions: Vec<(u32, u32)>,
    /// Accepted allow directives.
    pub allows: Vec<AllowDirective>,
    /// Malformed directives, reported as [`RuleId::A000`] findings.
    pub malformed: Vec<Diagnostic>,
}

impl FileContext {
    /// Builds the context from a lexed file.
    pub fn build(file: &str, lexed: &Lexed) -> FileContext {
        let mut ctx = FileContext {
            test_regions: test_regions(&lexed.tokens),
            ..FileContext::default()
        };
        collect_directives(file, lexed, &mut ctx);
        ctx
    }

    /// Whether `line` lies inside any test region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Whether a finding of `rule` at `line` is suppressed by a directive.
    pub fn is_allowed(&self, rule: RuleId, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line)
    }
}

fn is_punct(t: &Token, c: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == c
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

/// Scans the token stream for `test`-attributed items and returns their
/// body line spans.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        // Attribute: `#[...]` (outer) or `#![...]` (inner, ignored).
        if is_punct(&tokens[i], "#") {
            let mut j = i + 1;
            let inner = tokens.get(j).is_some_and(|t| is_punct(t, "!"));
            if inner {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| is_punct(t, "[")) {
                let mut depth = 1usize;
                let mut k = j + 1;
                let mut has_test = false;
                let mut has_not = false;
                while k < tokens.len() && depth > 0 {
                    let t = &tokens[k];
                    if is_punct(t, "[") {
                        depth += 1;
                    } else if is_punct(t, "]") {
                        depth -= 1;
                    } else if is_ident(t, "test") {
                        has_test = true;
                    } else if is_ident(t, "not") {
                        has_not = true;
                    }
                    k += 1;
                }
                if !inner && has_test && !has_not {
                    pending = true;
                }
                i = k;
                continue;
            }
        }
        if pending {
            if is_punct(&tokens[i], "{") {
                let close = matching_brace(tokens, i);
                regions.push((tokens[i].line, tokens[close].line));
                pending = false;
                // The region covers everything inside; resume after it.
                i = close + 1;
                continue;
            }
            if is_punct(&tokens[i], ";") {
                // `#[cfg(test)] mod tests;` — out-of-line test module; the
                // span cannot be tracked here (and the workspace keeps test
                // modules inline), so just stop carrying the attribute.
                pending = false;
            }
        }
        i += 1;
    }
    regions
}

/// Index of the `}` closing the `{` at `open` (or the last token when the
/// file is truncated — lexing is total, matching must be too).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// The directive marker inside a comment.
const MARKER: &str = "sd-lint:";

fn collect_directives(file: &str, lexed: &Lexed, ctx: &mut FileContext) {
    for comment in &lexed.comments {
        // A directive is the *whole* comment: `// sd-lint: allow(…)`.
        // Prefix-matching keeps prose that merely mentions the syntax
        // (doc comments, this very file) from parsing as a directive.
        let Some(rest) = comment.text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        let malformed = |why: &str| Diagnostic {
            rule: RuleId::A000,
            file: file.to_string(),
            line: comment.line,
            col: comment.col,
            message: format!("malformed sd-lint directive: {why}"),
            suggestion: "write `// sd-lint: allow(RULE, reason)` with a non-empty reason".into(),
        };
        let Some(body) = rest.strip_prefix("allow(") else {
            ctx.malformed.push(malformed("expected `allow(`"));
            continue;
        };
        let Some(close) = body.rfind(')') else {
            ctx.malformed.push(malformed("missing closing `)`"));
            continue;
        };
        let inner = &body[..close];
        let Some((rule_text, reason)) = inner.split_once(',') else {
            ctx.malformed
                .push(malformed("expected `allow(RULE, reason)` with a reason"));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            ctx.malformed
                .push(malformed("the reason must be non-empty"));
            continue;
        }
        let Some(rule) = RuleId::parse(rule_text.trim()) else {
            ctx.malformed
                .push(malformed(&format!("unknown rule `{}`", rule_text.trim())));
            continue;
        };
        // Trailing directive → this line; standalone → the next line.
        let standalone = !lexed
            .tokens
            .iter()
            .any(|t| t.line == comment.line && t.col < comment.col);
        let target_line = if standalone {
            comment.line + 1
        } else {
            comment.line
        };
        ctx.allows.push(AllowDirective {
            rule,
            reason: reason.to_string(),
            line: comment.line,
            target_line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> FileContext {
        FileContext::build("test.rs", &lex(src))
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let c = ctx(src);
        assert!(!c.in_test(1));
        assert!(c.in_test(4));
    }

    #[test]
    fn test_fn_is_a_region() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn live() {}\n";
        let c = ctx(src);
        assert!(c.in_test(3));
        assert!(!c.in_test(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let c = ctx("#[cfg(not(test))]\nmod live {\n    fn f() {}\n}\n");
        assert!(!c.in_test(3));
    }

    #[test]
    fn cfg_any_test_is_a_region() {
        let c = ctx("#[cfg(any(test, doctest))]\nmod helpers {\n    fn f() {}\n}\n");
        assert!(c.in_test(3));
    }

    #[test]
    fn inner_attribute_is_not_a_region() {
        // A crate-level `#![cfg(test)]`-ish attribute must not mark the
        // whole file; only outer item attributes open regions.
        let c = ctx("#![allow(clippy::test)]\nfn live() {}\n");
        assert!(!c.in_test(2));
    }

    #[test]
    fn stacked_attributes_keep_the_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        assert!(ctx(src).in_test(4));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let x = m.get(k); // sd-lint: allow(P001, slot proven filled)\n";
        let c = ctx(src);
        assert_eq!(c.allows.len(), 1);
        assert_eq!(c.allows[0].target_line, 1);
        assert!(c.is_allowed(RuleId::P001, 1));
        assert!(!c.is_allowed(RuleId::D001, 1));
    }

    #[test]
    fn standalone_allow_targets_next_line() {
        let src = "// sd-lint: allow(D004, the approved implementation)\nscope.spawn(work);\n";
        let c = ctx(src);
        assert_eq!(c.allows[0].target_line, 2);
    }

    #[test]
    fn malformed_directives_are_findings() {
        for bad in [
            "// sd-lint: allow(P001)",
            "// sd-lint: allow(P001, )",
            "// sd-lint: allow(Z999, reason)",
            "// sd-lint: deny(P001, reason)",
        ] {
            let c = ctx(bad);
            assert_eq!(c.allows.len(), 0, "{bad}");
            assert_eq!(c.malformed.len(), 1, "{bad}");
            assert_eq!(c.malformed[0].rule, RuleId::A000);
        }
    }

    #[test]
    fn plain_comments_are_ignored() {
        let c = ctx("// ordinary note about HashMap\nlet x = 1;\n");
        assert!(c.allows.is_empty() && c.malformed.is_empty());
    }
}
