//! The machine-readable lint report (`lint-report.json`).
//!
//! Uploaded beside `BENCH_emd.json` in CI, so the lint trajectory —
//! violations, per-crate P001 debt, and every accepted escape hatch — is
//! inspectable PR-over-PR without rerunning the tool.

use crate::baseline::{Baseline, RatchetDelta};
use crate::diagnostics::{Diagnostic, ALL_RULES};
use crate::engine::AllowRecord;
use serde_json::Value;
use std::collections::BTreeMap;

/// Everything `check` learned about the workspace.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Surviving findings across all files (reporting order).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by allow directives.
    pub suppressed: Vec<Diagnostic>,
    /// Every allow directive with its usage outcome.
    pub allows: Vec<AllowRecord>,
    /// Surviving P001 findings per crate.
    pub p001_by_crate: BTreeMap<String, usize>,
    /// Per-crate comparison against the committed baseline.
    pub deltas: Vec<RatchetDelta>,
}

impl CheckOutcome {
    /// Whether the gate passes: no surviving non-P001 finding, no malformed
    /// directive, and no crate above its P001 ceiling.
    pub fn passes(&self) -> bool {
        let hard_failures = self
            .diagnostics
            .iter()
            .any(|d| d.rule != crate::diagnostics::RuleId::P001);
        let ratchet_failures = self.deltas.iter().any(RatchetDelta::regressed);
        !hard_failures && !ratchet_failures
    }

    /// Builds the JSON report artifact.
    pub fn to_value(&self, baseline: &Baseline) -> Value {
        let mut rules = BTreeMap::new();
        for rule in ALL_RULES {
            let surviving = self.diagnostics.iter().filter(|d| d.rule == rule).count();
            let allowed = self.suppressed.iter().filter(|d| d.rule == rule).count();
            let mut entry = BTreeMap::new();
            entry.insert("violations".to_string(), Value::Number(surviving as f64));
            entry.insert("allowed".to_string(), Value::Number(allowed as f64));
            rules.insert(rule.as_str().to_string(), Value::Object(entry));
        }

        let p001: BTreeMap<String, Value> = self
            .p001_by_crate
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(v as f64)))
            .collect();

        let allows: Vec<Value> = self
            .allows
            .iter()
            .map(|a| {
                let mut m = BTreeMap::new();
                m.insert("file".to_string(), Value::String(a.file.clone()));
                m.insert("line".to_string(), Value::Number(f64::from(a.line)));
                m.insert(
                    "rule".to_string(),
                    Value::String(a.rule.as_str().to_string()),
                );
                m.insert("reason".to_string(), Value::String(a.reason.clone()));
                m.insert("used".to_string(), Value::Bool(a.used));
                Value::Object(m)
            })
            .collect();

        let diagnostics: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut m = BTreeMap::new();
                m.insert(
                    "rule".to_string(),
                    Value::String(d.rule.as_str().to_string()),
                );
                m.insert("file".to_string(), Value::String(d.file.clone()));
                m.insert("line".to_string(), Value::Number(f64::from(d.line)));
                m.insert("col".to_string(), Value::Number(f64::from(d.col)));
                m.insert("message".to_string(), Value::String(d.message.clone()));
                Value::Object(m)
            })
            .collect();

        let mut top = BTreeMap::new();
        top.insert("format".to_string(), Value::Number(1.0));
        top.insert(
            "files_scanned".to_string(),
            Value::Number(self.files_scanned as f64),
        );
        top.insert("passes".to_string(), Value::Bool(self.passes()));
        top.insert("rules".to_string(), Value::Object(rules));
        top.insert("p001_by_crate".to_string(), Value::Object(p001));
        top.insert("baseline".to_string(), baseline.to_value());
        top.insert("allows".to_string(), Value::Array(allows));
        top.insert("diagnostics".to_string(), Value::Array(diagnostics));
        Value::Object(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::RuleId;

    #[test]
    fn report_counts_allows_and_violations() {
        let outcome = CheckOutcome {
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                rule: RuleId::D001,
                file: "a.rs".into(),
                line: 1,
                col: 1,
                message: "m".into(),
                suggestion: "s".into(),
            }],
            suppressed: vec![Diagnostic {
                rule: RuleId::P001,
                file: "b.rs".into(),
                line: 2,
                col: 5,
                message: "m".into(),
                suggestion: "s".into(),
            }],
            allows: vec![AllowRecord {
                rule: RuleId::P001,
                file: "b.rs".into(),
                line: 2,
                reason: "r".into(),
                used: true,
            }],
            ..CheckOutcome::default()
        };
        let v = outcome.to_value(&Baseline::default());
        let d001 = v.get("rules").and_then(|r| r.get("D001")).expect("D001");
        assert_eq!(d001.get("violations").and_then(Value::as_f64), Some(1.0));
        let p001 = v.get("rules").and_then(|r| r.get("P001")).expect("P001");
        assert_eq!(p001.get("allowed").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("passes").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("allows").and_then(Value::as_array).map(|a| a.len()),
            Some(1)
        );
    }
}
