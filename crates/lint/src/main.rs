//! The `sd-lint` CLI.
//!
//! ```text
//! cargo run --release -p sd-lint -- check [--report PATH]
//! cargo run --release -p sd-lint -- ratchet
//! cargo run --release -p sd-lint -- rules
//! ```
//!
//! `check` lints the workspace and exits non-zero on any new violation or
//! P001 ratchet regression; with `SD_OUT=<dir>` (or `--report <path>`) it
//! also writes the JSON report artifact. `ratchet` rewrites
//! `lint-baseline.json` downward after debt has been paid off. `rules`
//! prints the rule table.

#![forbid(unsafe_code)]

use sd_lint::baseline::{Baseline, RatchetDelta, BASELINE_FILE};
use sd_lint::diagnostics::{RuleId, ALL_RULES};
use sd_lint::{check_workspace, workspace_root};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("ratchet") => cmd_ratchet(),
        Some("rules") => {
            cmd_rules();
            Ok(ExitCode::SUCCESS)
        }
        _ => {
            eprintln!("usage: sd-lint <check [--report PATH] | ratchet | rules>");
            Ok(ExitCode::from(2))
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sd-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let report_path = report_path(args)?;
    let root = workspace_root();
    let (outcome, baseline) = check_workspace(root)?;

    // Hard rules: every surviving finding is a failure.
    let mut hard = 0usize;
    for diag in &outcome.diagnostics {
        if diag.rule != RuleId::P001 {
            println!("{diag}");
            hard += 1;
        }
    }

    // P001: print sites only for crates over their ceiling (printing the
    // whole tolerated backlog every run would bury real regressions).
    let mut regressions = Vec::new();
    for delta in &outcome.deltas {
        if delta.regressed() {
            regressions.push(delta.clone());
        }
    }
    for delta in &regressions {
        println!(
            "P001 ratchet regression in {}: {} sites, baseline allows {}",
            delta.crate_name, delta.current, delta.ceiling
        );
        for diag in &outcome.diagnostics {
            if diag.rule == RuleId::P001 && crate_of(&diag.file) == delta.crate_name {
                println!("{diag}");
            }
        }
    }

    summary(&outcome.deltas, hard, &outcome);

    if let Some(path) = report_path {
        write_report(&path, &outcome, &baseline)?;
        println!("report: {}", path.display());
    }

    if hard > 0 || !regressions.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_ratchet() -> Result<ExitCode, String> {
    let root = workspace_root();
    let (outcome, baseline) = check_workspace(root)?;
    // First run ever: no committed baseline means every ceiling reads as 0,
    // which would look like a regression. Initialization is exempt.
    let initializing = !root.join(BASELINE_FILE).exists();
    let regressed: Vec<&RatchetDelta> = outcome.deltas.iter().filter(|d| d.regressed()).collect();
    if !initializing && !regressed.is_empty() {
        for delta in &regressed {
            eprintln!(
                "cannot ratchet: {} has {} P001 sites, baseline allows {}",
                delta.crate_name, delta.current, delta.ceiling
            );
        }
        return Err("the ratchet only turns downward; fix the regressions first".into());
    }
    let mut new_baseline = Baseline::default();
    for (crate_name, &count) in &outcome.p001_by_crate {
        if count > 0 {
            new_baseline.p001.insert(crate_name.clone(), count);
        }
    }
    for delta in &outcome.deltas {
        if delta.improvable() {
            println!(
                "ratchet: {} {} -> {}",
                delta.crate_name, delta.ceiling, delta.current
            );
        }
    }
    if new_baseline == baseline {
        println!("baseline already tight; nothing to ratchet");
    } else {
        new_baseline.save(root)?;
        println!("wrote {}", root.join(BASELINE_FILE).display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_rules() {
    println!("sd-lint rules:");
    for rule in ALL_RULES {
        println!("  {}  {}", rule.as_str(), rule.summary());
    }
    println!("  escape hatch: // sd-lint: allow(RULE, reason) — counted in the report");
}

/// Resolves `--report PATH` or the `SD_OUT` convention used by the other
/// artifact-producing bins (`$SD_OUT/lint-report.json`).
fn report_path(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => match std::env::var("SD_OUT") {
            Ok(dir) if !dir.is_empty() => Ok(Some(PathBuf::from(dir).join("lint-report.json"))),
            _ => Ok(None),
        },
        [flag, path] if flag == "--report" => Ok(Some(PathBuf::from(path))),
        [flag] if flag == "--report" => Err("--report needs a path".into()),
        [arg, ..] => Err(format!("unknown argument `{arg}`")),
    }
}

fn write_report(
    path: &PathBuf,
    outcome: &sd_lint::report::CheckOutcome,
    baseline: &Baseline,
) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let text = serde_json::to_string_pretty(&outcome.to_value(baseline))
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Maps a diagnostic's workspace-relative path back to its crate name for
/// the regression listing (`crates/<dir>/…` → `sd-<dir>`, facade → the
/// package name).
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(dir)) => format!("sd-{dir}"),
        _ => "statistical-distortion".to_string(),
    }
}

fn summary(deltas: &[RatchetDelta], hard: usize, outcome: &sd_lint::report::CheckOutcome) {
    let allowed = outcome.allows.iter().filter(|a| a.used).count();
    let p001_total: usize = outcome.p001_by_crate.values().sum();
    println!(
        "sd-lint: {} files, {} hard violations, {} P001 sites (ratcheted), {} allows in use",
        outcome.files_scanned, hard, p001_total, allowed
    );
    let mut debt: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for delta in deltas {
        if delta.current > 0 || delta.ceiling > 0 {
            debt.insert(&delta.crate_name, (delta.current, delta.ceiling));
        }
    }
    for (crate_name, (current, ceiling)) in &debt {
        let note = if current < ceiling {
            "  (below baseline — run `sd-lint ratchet`)"
        } else {
            ""
        };
        println!("  P001 {crate_name}: {current}/{ceiling}{note}");
    }
}
