//! Structured diagnostics: rule identifiers and findings.

use std::fmt;

/// The identifier of a lint rule (or of the directive meta-check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in a result-producing crate.
    D001,
    /// Entropy-seeded RNG outside `sd-bench`.
    D002,
    /// Wall-clock time (`Instant`/`SystemTime`) in compute paths.
    D003,
    /// Thread-spawn primitives outside the approved `parallel_map` idiom.
    D004,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code.
    P001,
    /// `unsafe` in an `sd-*` crate.
    U001,
    /// A malformed `sd-lint: allow(...)` directive (always a failure).
    A000,
}

/// Every enforceable rule, in report order ([`RuleId::A000`] excluded — it
/// is the directive meta-check, not a subscribable rule).
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::D001,
    RuleId::D002,
    RuleId::D003,
    RuleId::D004,
    RuleId::P001,
    RuleId::U001,
];

impl RuleId {
    /// The stable textual id (`"D001"`, …) used in output, directives, and
    /// the report artifact.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::P001 => "P001",
            RuleId::U001 => "U001",
            RuleId::A000 => "A000",
        }
    }

    /// Parses a directive rule id; `None` for unknown ids (including
    /// `A000`, which cannot be allowed away).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "P001" => Some(RuleId::P001),
            "U001" => Some(RuleId::U001),
            _ => None,
        }
    }

    /// One-line description, used by `sd-lint rules` and the docs table.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "HashMap/HashSet in result-producing code (iteration order leaks)",
            RuleId::D002 => "entropy-seeded RNG outside sd-bench (thread_rng, from_entropy, …)",
            RuleId::D003 => "wall-clock time (Instant/SystemTime) in compute paths",
            RuleId::D004 => {
                "thread spawn outside the approved parallel_map preallocated-slot idiom"
            }
            RuleId::P001 => {
                "unwrap/expect/panic!/unreachable! in non-test library code (ratcheted)"
            }
            RuleId::U001 => "unsafe code in an sd-* crate",
            RuleId::A000 => "malformed sd-lint allow directive",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to a workspace-relative `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it (or how to escape it, for justified exceptions).
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}\n    suggestion: {}",
            self.file, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }
}

/// Sorts diagnostics into the stable reporting order (file, line, col,
/// rule) — the lint's own output must be deterministic.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("A000"), None, "A000 cannot be allowed away");
        assert_eq!(RuleId::parse("D999"), None);
    }

    #[test]
    fn display_is_clickable() {
        let d = Diagnostic {
            rule: RuleId::D001,
            file: "crates/stats/src/grid.rs".into(),
            line: 231,
            col: 12,
            message: "HashMap in a result path".into(),
            suggestion: "use BTreeMap".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("crates/stats/src/grid.rs:231:12: D001 "));
        assert!(s.contains("suggestion: use BTreeMap"));
    }
}
