//! `sd-lint` — the workspace determinism & panic-hygiene gate.
//!
//! The paper's claim (Dasu & Loh, PVLDB 2012) is that measured statistical
//! distortion is a property of the data and the cleaning strategy. The
//! dynamic suites *test* that (engine vs reference, threads 1 vs N); this
//! crate *enforces* the preconditions statically, as a fourth CI gate
//! beside fmt / clippy / doc:
//!
//! | rule | finds |
//! |------|-------|
//! | D001 | `HashMap`/`HashSet` in result-producing crates |
//! | D002 | entropy-seeded RNG (`thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`) outside `sd-bench` |
//! | D003 | `Instant`/`SystemTime` in compute paths |
//! | D004 | thread spawn outside the approved `parallel_map` preallocated-slot idiom |
//! | P001 | `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code (ratcheted) |
//! | U001 | `unsafe` anywhere in an `sd-*` crate |
//!
//! D001–D004 and U001 fail on any finding. P001 tolerates committed debt
//! through a per-crate ratchet ([`baseline`], `lint-baseline.json`):
//! counts may only fall. Justified exceptions use an inline escape —
//! `// sd-lint: allow(RULE, reason)` — which is itself counted in the
//! report artifact, so suppressed debt stays visible.
//!
//! The pass is std-only (plus the vendored `serde_json` for artifacts): a
//! line/column-tracking lexer ([`lexer`]), structural context
//! ([`context`]: test regions, escape directives), token-level rules
//! ([`rules`]), and a workspace walk ([`walk`]). Run it as
//! `cargo run -p sd-lint -- check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod context;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use baseline::{compare, Baseline};
use diagnostics::{sort_diagnostics, RuleId};
use report::CheckOutcome;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Lints the whole workspace under `root` against its committed baseline.
///
/// This is the programmatic equivalent of `sd-lint check`: the CLI and the
/// self-gating meta-test both call it, so "what CI enforces" has exactly
/// one definition.
pub fn check_workspace(root: &Path) -> Result<(CheckOutcome, Baseline), String> {
    let baseline = Baseline::load(root)?;
    let files = walk::workspace_files(root)
        .map_err(|e| format!("cannot walk workspace at {}: {e}", root.display()))?;

    let mut outcome = CheckOutcome {
        files_scanned: files.len(),
        ..CheckOutcome::default()
    };
    let mut p001: BTreeMap<String, usize> = BTreeMap::new();
    for file in &files {
        let source = fs::read_to_string(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        let lint = engine::lint_source(&file.rel, &file.crate_name, &source);
        for diag in &lint.diagnostics {
            if diag.rule == RuleId::P001 {
                *p001.entry(file.crate_name.clone()).or_insert(0) += 1;
            }
        }
        outcome.diagnostics.extend(lint.diagnostics);
        outcome.suppressed.extend(lint.suppressed);
        outcome.allows.extend(lint.allows);
    }
    sort_diagnostics(&mut outcome.diagnostics);
    sort_diagnostics(&mut outcome.suppressed);
    outcome.deltas = compare(&p001, &baseline);
    outcome.p001_by_crate = p001;
    Ok((outcome, baseline))
}

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/lint` → two levels up). Stable under `cargo run`/`cargo test`
/// from any working directory.
pub fn workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.ancestors().nth(2) {
        Some(root) => root,
        // Unreachable in practice (the manifest dir always has two
        // ancestors); fall back to the manifest itself rather than panic.
        None => manifest,
    }
}
