//! The rule registry: every rule is a pure function from a lexed file (plus
//! its structural [`FileContext`]) to findings.
//!
//! Scoping lives here, in one place, so "which crates does this rule watch"
//! is auditable at a glance:
//!
//! | rule | scope |
//! |------|-------|
//! | D001 | every crate except `sd-bench` (result-producing code, tests included — order-dependent iteration makes tests flaky too) |
//! | D002 | every crate except `sd-bench` |
//! | D003 | every crate except `sd-bench` (the perf harness is *supposed* to read the clock) |
//! | D004 | every file except the approved spawn sites: `crates/core/src/runner.rs` (`parallel_map`) and `crates/serve/src/shard.rs` (the serving layer's shard/collector threads) |
//! | P001 | non-test code in every crate (ratcheted per crate via `lint-baseline.json`) |
//! | U001 | every crate (cross-checks the `#![forbid(unsafe_code)]` attributes) |

mod determinism;
mod panic_hygiene;
mod unsafe_use;

use crate::context::FileContext;
use crate::diagnostics::Diagnostic;
use crate::lexer::Lexed;

/// Everything a rule may look at for one file.
#[derive(Debug, Clone, Copy)]
pub struct RuleInput<'a> {
    /// Workspace-relative path, `/`-separated.
    pub file: &'a str,
    /// Cargo package name of the crate the file belongs to.
    pub crate_name: &'a str,
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// Test regions and directives.
    pub ctx: &'a FileContext,
}

/// The perf/bench harness: exempt from the determinism rules whose whole
/// point it would defeat (it must read the clock, and nothing downstream
/// consumes its iteration order).
pub const BENCH_CRATE: &str = "sd-bench";

/// The files allowed to touch thread-spawn primitives: the
/// `parallel_map` preallocated-slot implementation every parallel
/// compute path must route through; the serving layer's shard module,
/// whose workers never fold floats across threads — every cross-thread
/// value travels a channel and is assembled in series order by a single
/// collector; and the serving layer's evaluator module, whose worker
/// pool scores windows that share no mutable state and whose reorder
/// stage republishes results strictly in window order.
pub const APPROVED_PARALLEL_FILES: [&str; 3] = [
    "crates/core/src/runner.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/evaluator.rs",
];

/// Runs every rule over one file; returns raw findings (allow-directive
/// suppression happens in [`crate::engine`]).
pub fn run_all(input: RuleInput<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    determinism::check(input, &mut diags);
    panic_hygiene::check(input, &mut diags);
    unsafe_use::check(input, &mut diags);
    diags
}
