//! The rule registry: every rule is a pure function from a lexed file (plus
//! its structural [`FileContext`]) to findings.
//!
//! Scoping lives here, in one place, so "which crates does this rule watch"
//! is auditable at a glance:
//!
//! | rule | scope |
//! |------|-------|
//! | D001 | every crate except `sd-bench` (result-producing code, tests included — order-dependent iteration makes tests flaky too) |
//! | D002 | every crate except `sd-bench` |
//! | D003 | every crate except `sd-bench` (the perf harness is *supposed* to read the clock) |
//! | D004 | every file except `crates/core/src/runner.rs`, the approved `parallel_map` implementation |
//! | P001 | non-test code in every crate (ratcheted per crate via `lint-baseline.json`) |
//! | U001 | every crate (cross-checks the `#![forbid(unsafe_code)]` attributes) |

mod determinism;
mod panic_hygiene;
mod unsafe_use;

use crate::context::FileContext;
use crate::diagnostics::Diagnostic;
use crate::lexer::Lexed;

/// Everything a rule may look at for one file.
#[derive(Debug, Clone, Copy)]
pub struct RuleInput<'a> {
    /// Workspace-relative path, `/`-separated.
    pub file: &'a str,
    /// Cargo package name of the crate the file belongs to.
    pub crate_name: &'a str,
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// Test regions and directives.
    pub ctx: &'a FileContext,
}

/// The perf/bench harness: exempt from the determinism rules whose whole
/// point it would defeat (it must read the clock, and nothing downstream
/// consumes its iteration order).
pub const BENCH_CRATE: &str = "sd-bench";

/// The one file allowed to touch thread-spawn primitives: the
/// `parallel_map` preallocated-slot implementation every parallel path
/// must route through.
pub const APPROVED_PARALLEL_FILE: &str = "crates/core/src/runner.rs";

/// Runs every rule over one file; returns raw findings (allow-directive
/// suppression happens in [`crate::engine`]).
pub fn run_all(input: RuleInput<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    determinism::check(input, &mut diags);
    panic_hygiene::check(input, &mut diags);
    unsafe_use::check(input, &mut diags);
    diags
}
