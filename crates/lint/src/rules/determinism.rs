//! D001–D004: the determinism rules.
//!
//! The paper's core claim — measured statistical distortion is a property
//! of the data and the cleaning strategy — survives only if no result path
//! depends on hash seeds, entropy, wall clocks, or thread scheduling. The
//! dynamic bit-identity suites catch such leaks *sometimes*; these rules
//! refuse the constructs outright.

use super::{RuleInput, APPROVED_PARALLEL_FILES, BENCH_CRATE};
use crate::diagnostics::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};

/// Entropy-seeded RNG constructors (D002): each draws from the OS, so two
/// runs of the same experiment stop being comparable.
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Wall-clock types (D003): time-dependent values in a compute path make
/// outputs depend on machine load.
const CLOCK_IDENTS: [&str; 2] = ["Instant", "SystemTime"];

pub(super) fn check(input: RuleInput<'_>, diags: &mut Vec<Diagnostic>) {
    let tokens = &input.lexed.tokens;
    let in_bench = input.crate_name == BENCH_CRATE;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if !in_bench && (name == "HashMap" || name == "HashSet") {
            diags.push(diag(
                RuleId::D001,
                input,
                t,
                format!("`{name}` iteration order depends on the hash seed"),
                format!(
                    "use `BTree{}` (or drain through a sorted Vec) so iteration \
                     order is a property of the keys",
                    &name[4..]
                ),
            ));
        }
        if !in_bench && ENTROPY_IDENTS.contains(&name) {
            diags.push(diag(
                RuleId::D002,
                input,
                t,
                format!("`{name}` seeds from OS entropy, so runs are not reproducible"),
                "derive a seeded `StdRng` (e.g. `StdRng::seed_from_u64`) from the \
                 experiment seed"
                    .into(),
            ));
        }
        if !in_bench && CLOCK_IDENTS.contains(&name) {
            diags.push(diag(
                RuleId::D003,
                input,
                t,
                format!("`{name}` reads the wall clock inside a compute path"),
                "thread timing through sd-bench; result paths must be pure \
                 functions of data and seed"
                    .into(),
            ));
        }
        if name == "spawn"
            && !APPROVED_PARALLEL_FILES.contains(&input.file)
            && is_call_position(tokens, i)
        {
            diags.push(diag(
                RuleId::D004,
                input,
                t,
                "thread spawn outside the approved `parallel_map` idiom".into(),
                "route parallel work through `sd_core::parallel_map`, whose \
                 preallocated per-index slots keep f64 reduction order fixed"
                    .into(),
            ));
        }
    }
}

/// `spawn` counts only in call position — `.spawn(`, `::spawn(` — so an
/// unrelated identifier (a local named `spawn_count`, say) never fires.
fn is_call_position(tokens: &[Token], i: usize) -> bool {
    let preceded = i > 0
        && tokens[i - 1].kind == TokenKind::Punct
        && (tokens[i - 1].text == "." || tokens[i - 1].text == ":");
    let called = tokens
        .get(i + 1)
        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
    preceded && called
}

fn diag(
    rule: RuleId,
    input: RuleInput<'_>,
    t: &Token,
    message: String,
    suggestion: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: input.file.to_string(),
        line: t.line,
        col: t.col,
        message,
        suggestion,
    }
}
