//! P001: panic hygiene in non-test library code.
//!
//! The ROADMAP's north star is a long-lived sharded service; a panic there
//! is shard death, not a stack trace in a terminal. Library code must
//! surface failure as structured errors (`FrameworkError` and friends).
//! Existing debt is tolerated through the ratcheting baseline
//! (`lint-baseline.json`): counts may only go down.

use super::RuleInput;
use crate::diagnostics::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};

pub(super) fn check(input: RuleInput<'_>, diags: &mut Vec<Diagnostic>) {
    let tokens = &input.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || input.ctx.in_test(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let finding = match name {
            // Methods: only in receiver position (`.unwrap()`), so local
            // functions that happen to share the name do not fire.
            "unwrap" | "expect" if is_method_call(tokens, i) => Some((
                format!("`.{name}()` panics on the error path"),
                "return a structured error (`?`, `ok_or_else`, a FrameworkError \
                 variant) or restructure so the failure case cannot exist",
            )),
            // Macros: `panic!(…)`, `unreachable!(…)`.
            "panic" | "unreachable" if is_macro_bang(tokens, i) => Some((
                format!("`{name}!` in non-test library code"),
                "convert to a structured error variant; if the arm is provably \
                 dead, prefer restructuring the types over asserting at runtime",
            )),
            _ => None,
        };
        if let Some((message, suggestion)) = finding {
            diags.push(Diagnostic {
                rule: RuleId::P001,
                file: input.file.to_string(),
                line: t.line,
                col: t.col,
                message,
                suggestion: suggestion.to_string(),
            });
        }
    }
}

fn is_method_call(tokens: &[Token], i: usize) -> bool {
    i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == "."
}

fn is_macro_bang(tokens: &[Token], i: usize) -> bool {
    tokens
        .get(i + 1)
        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!")
}
