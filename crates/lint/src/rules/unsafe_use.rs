//! U001: no `unsafe` in any workspace crate.
//!
//! Every `sd-*` crate carries `#![forbid(unsafe_code)]`, so the compiler
//! already rejects `unsafe` outright; this rule cross-checks the attribute
//! is actually doing its job (a future edit could drop the attribute and
//! the workspace `deny` is override-able by design). Unlike `forbid`, the
//! lint also sees code behind `cfg` gates that the default build skips.

use super::RuleInput;
use crate::diagnostics::{Diagnostic, RuleId};
use crate::lexer::TokenKind;

pub(super) fn check(input: RuleInput<'_>, diags: &mut Vec<Diagnostic>) {
    for t in &input.lexed.tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            diags.push(Diagnostic {
                rule: RuleId::U001,
                file: input.file.to_string(),
                line: t.line,
                col: t.col,
                message: "`unsafe` in an sd-* crate".into(),
                suggestion: "this workspace is #![forbid(unsafe_code)] end to end; \
                             find a safe formulation or isolate the need behind a \
                             vendored shim"
                    .into(),
            });
        }
    }
}
