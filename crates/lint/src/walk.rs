//! Workspace file discovery.
//!
//! The lint walks exactly the code whose behaviour the determinism claims
//! cover: `src/` of the facade crate and `crates/*/src/` of every member —
//! `vendor/` (API shims with their own upstream idioms), `target/`, and
//! integration-test / example trees are out of scope. Traversal order is
//! sorted, so the tool's own output is deterministic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path, `/`-separated (diagnostic anchor).
    pub rel: String,
    /// Cargo package name of the owning crate.
    pub crate_name: String,
}

/// Enumerates every lintable `.rs` file under the workspace `root`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    // Every workspace member under crates/.
    let crates_dir = root.join("crates");
    for dir in sorted_dir(&crates_dir)? {
        if !dir.is_dir() {
            continue;
        }
        let name = crate_name_of(&dir).unwrap_or_else(|| {
            format!(
                "sd-{}",
                dir.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            )
        });
        collect(&dir.join("src"), root, &name, &mut files)?;
    }
    // The facade crate's library (after crates/, matching the sorted
    // order of the relative paths).
    collect(
        &root.join("src"),
        root,
        &crate_name_of(root).unwrap_or_else(|| "statistical-distortion".to_string()),
        &mut files,
    )?;
    Ok(files)
}

/// Reads the `name = "…"` line of a crate's `Cargo.toml`; `None` when the
/// manifest is missing or nameless.
fn crate_name_of(crate_dir: &Path) -> Option<String> {
    let text = fs::read_to_string(crate_dir.join("Cargo.toml")).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect(&path, root, crate_name, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile {
                path,
                rel,
                crate_name: crate_name.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        // crates/lint → workspace root is two levels up.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .to_path_buf()
    }

    #[test]
    fn finds_known_files_and_skips_vendor() {
        let files = workspace_files(&root()).expect("walk succeeds");
        assert!(files.iter().any(|f| f.rel == "crates/stats/src/grid.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/walk.rs"));
        assert!(
            files.iter().all(|f| !f.rel.starts_with("vendor/")),
            "vendor is out of scope"
        );
        assert!(
            files.iter().all(|f| !f.rel.contains("/tests/")),
            "integration tests are out of scope"
        );
    }

    #[test]
    fn crate_names_come_from_manifests() {
        let files = workspace_files(&root()).expect("walk succeeds");
        let stats = files
            .iter()
            .find(|f| f.rel == "crates/stats/src/grid.rs")
            .expect("grid.rs present");
        assert_eq!(stats.crate_name, "sd-stats");
        let facade = files
            .iter()
            .find(|f| f.rel == "src/lib.rs")
            .expect("facade present");
        assert_eq!(facade.crate_name, "statistical-distortion");
    }

    #[test]
    fn walk_is_sorted_and_deterministic() {
        let a = workspace_files(&root()).expect("walk succeeds");
        let b = workspace_files(&root()).expect("walk succeeds");
        let rel_a: Vec<_> = a.iter().map(|f| f.rel.clone()).collect();
        let rel_b: Vec<_> = b.iter().map(|f| f.rel.clone()).collect();
        assert_eq!(rel_a, rel_b);
        let mut sorted = rel_a.clone();
        sorted.sort();
        assert_eq!(rel_a, sorted);
    }
}
