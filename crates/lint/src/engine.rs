//! The per-file lint pipeline: lex → context → rules → suppression.

use crate::context::FileContext;
use crate::diagnostics::{sort_diagnostics, Diagnostic, RuleId};
use crate::lexer::lex;
use crate::rules::{run_all, RuleInput};

/// One allow directive with its usage outcome, for the report artifact.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// The allowed rule.
    pub rule: RuleId,
    /// Workspace-relative file.
    pub file: String,
    /// Line the directive sits on.
    pub line: u32,
    /// The justification text.
    pub reason: String,
    /// Whether the directive actually suppressed a finding (a `false`
    /// here is stale debt worth deleting).
    pub used: bool,
}

/// The lint result for one file.
#[derive(Debug, Clone, Default)]
pub struct FileLint {
    /// Surviving findings (post-suppression), in reporting order.
    /// Malformed directives surface here as [`RuleId::A000`].
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a directive (still counted in the report).
    pub suppressed: Vec<Diagnostic>,
    /// Every parsed directive with its usage outcome.
    pub allows: Vec<AllowRecord>,
}

/// Lints one file's source text.
///
/// `file` is the workspace-relative path used in diagnostics;
/// `crate_name` selects rule scopes (see [`crate::rules`]).
pub fn lint_source(file: &str, crate_name: &str, source: &str) -> FileLint {
    let lexed = lex(source);
    let ctx = FileContext::build(file, &lexed);
    let raw = run_all(RuleInput {
        file,
        crate_name,
        lexed: &lexed,
        ctx: &ctx,
    });

    let mut out = FileLint::default();
    let mut used = vec![false; ctx.allows.len()];
    for diag in raw {
        let hit = ctx
            .allows
            .iter()
            .position(|a| a.rule == diag.rule && a.target_line == diag.line);
        match hit {
            Some(k) => {
                used[k] = true;
                out.suppressed.push(diag);
            }
            None => out.diagnostics.push(diag),
        }
    }
    out.diagnostics.extend(ctx.malformed.iter().cloned());
    for (a, &was_used) in ctx.allows.iter().zip(&used) {
        out.allows.push(AllowRecord {
            rule: a.rule,
            file: file.to_string(),
            line: a.line,
            reason: a.reason.clone(),
            used: was_used,
        });
    }
    sort_diagnostics(&mut out.diagnostics);
    sort_diagnostics(&mut out.suppressed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_marks_the_directive_used() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n    \
                   v.first().copied().unwrap() // sd-lint: allow(P001, caller guards non-empty)\n\
                   }\n";
        let lint = lint_source("crates/core/src/x.rs", "sd-core", src);
        assert!(lint.diagnostics.is_empty(), "{:?}", lint.diagnostics);
        assert_eq!(lint.suppressed.len(), 1);
        assert_eq!(lint.allows.len(), 1);
        assert!(lint.allows[0].used);
    }

    #[test]
    fn unused_directive_is_recorded_not_fatal() {
        let lint = lint_source(
            "crates/core/src/x.rs",
            "sd-core",
            "// sd-lint: allow(U001, nothing here)\nfn f() {}\n",
        );
        assert!(lint.diagnostics.is_empty());
        assert!(!lint.allows[0].used);
    }

    #[test]
    fn wrong_rule_directive_does_not_suppress() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n    \
                   v.first().copied().unwrap() // sd-lint: allow(D001, wrong rule)\n\
                   }\n";
        let lint = lint_source("crates/core/src/x.rs", "sd-core", src);
        assert_eq!(lint.diagnostics.len(), 1);
        assert_eq!(lint.diagnostics[0].rule, RuleId::P001);
    }

    #[test]
    fn bench_crate_escapes_determinism_rules_only() {
        let src =
            "use std::time::Instant;\nfn t() { let x = Instant::now(); x.elapsed().unwrap(); }\n";
        let bench = lint_source("crates/bench/src/bin/perf.rs", "sd-bench", src);
        assert!(
            bench.diagnostics.iter().all(|d| d.rule == RuleId::P001),
            "bench keeps P001 but sheds D003: {:?}",
            bench.diagnostics
        );
        let core = lint_source("crates/core/src/x.rs", "sd-core", src);
        assert!(core.diagnostics.iter().any(|d| d.rule == RuleId::D003));
    }
}
