//! A lightweight, line/column-tracking Rust lexer.
//!
//! The lint rules operate on a token stream, not on an AST: every rule in
//! this crate is a statement about *identifiers in context* (`HashMap` in a
//! result path, `.unwrap()` outside a test module), so full parsing buys
//! nothing while a tokenizer keeps the pass dependency-free and fast. The
//! lexer understands exactly enough Rust to never misclassify the regions
//! that matter:
//!
//! - line (`//`) and nested block (`/* */`) comments, kept separately so
//!   the [escape-hatch directives](crate::context) can read them;
//! - string / raw-string / byte-string / char literals (so an `unwrap`
//!   inside a string is not a finding);
//! - lifetimes vs. char literals (`'a` vs `'a'`);
//! - identifiers, numbers, and single-character punctuation.
//!
//! Positions are 1-based and counted in characters, matching what editors
//! display.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unsafe`, …).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// A numeric literal (skipped by every rule).
    Number,
    /// A string, raw-string, or byte-string literal (contents discarded).
    Str,
    /// A character or byte-character literal (contents discarded).
    Char,
    /// A single punctuation character; [`Token::text`] holds it.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text for [`TokenKind::Ident`], [`TokenKind::Lifetime`] and
    /// [`TokenKind::Punct`]; empty for literals (rules never read them).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// One comment with its position, preserved for directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based column of the `/` that opens the comment.
    pub col: u32,
}

/// The full lexing result: code tokens plus comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (line and block).
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, maintaining the line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is total: any input produces a token stream (unterminated
/// literals simply run to end of input), so the rules can always run.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out, line, col);
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out, line, col);
        } else if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
        } else if c == '"' {
            lex_string(&mut cur);
            out.tokens.push(token(TokenKind::Str, line, col));
        } else if (c == 'r' || c == 'b') && raw_or_byte_literal(&mut cur, &mut out, line, col) {
            // Handled: r"…", r#"…"#, b'…', b"…", br#"…"#.
        } else if is_ident_start(c) {
            let mut text = String::new();
            while cur.peek(0).is_some_and(is_ident_continue) {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.tokens.push(token(TokenKind::Number, line, col));
        } else {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

fn token(kind: TokenKind, line: u32, col: u32) -> Token {
    Token {
        kind,
        text: String::new(),
        line,
        col,
    }
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump();
    cur.bump(); // the two slashes
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        cur.bump();
        text.push(c);
    }
    out.comments.push(Comment { text, line, col });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump();
    cur.bump(); // "/*"
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            cur.bump();
            cur.bump();
            text.push_str("/*");
        } else if c == '*' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            cur.bump();
            text.push(c);
        }
    }
    out.comments.push(Comment { text, line, col });
}

/// `'` opens either a lifetime or a char literal; disambiguate by whether
/// an identifier run after the quote is closed by another `'`.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening '
    match cur.peek(0) {
        Some(c) if is_ident_start(c) && cur.peek(1) != Some('\'') => {
            // `'a`, `'static`, `'_` — a lifetime (no closing quote after
            // the first char; `'a'` was excluded by the peek above).
            let mut text = String::from("'");
            while cur.peek(0).is_some_and(is_ident_continue) {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            // A lifetime is never followed by `'`; if it is, this was a
            // multi-char literal start we mis-guessed — consume the quote.
            if cur.peek(0) == Some('\'') {
                cur.bump();
                out.tokens.push(token(TokenKind::Char, line, col));
                return;
            }
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text,
                line,
                col,
            });
        }
        _ => {
            // Char literal: consume (with escapes) to the closing quote.
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    cur.bump();
                    cur.bump();
                } else if c == '\'' {
                    cur.bump();
                    break;
                } else {
                    cur.bump();
                }
            }
            out.tokens.push(token(TokenKind::Char, line, col));
        }
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening "
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump();
            cur.bump();
        } else if c == '"' {
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` starting at `r`/`b`.
/// Returns `false` (consuming nothing) when the lookahead is a plain
/// identifier such as `rows` or `bins`.
fn raw_or_byte_literal(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) -> bool {
    let c = match cur.peek(0) {
        Some(c) => c,
        None => return false,
    };
    // Determine the literal shape by lookahead only; bail out to the
    // identifier path unless the exact pattern is present.
    let mut j = 1; // offset after the leading r/b
    if c == 'b' {
        match cur.peek(1) {
            Some('\'') => {
                // Byte char b'…'.
                cur.bump();
                lex_quote_as_char(cur);
                out.tokens.push(token(TokenKind::Char, line, col));
                return true;
            }
            Some('"') => {
                cur.bump();
                lex_string(cur);
                out.tokens.push(token(TokenKind::Str, line, col));
                return true;
            }
            Some('r') => j = 2, // maybe br#"…"#
            _ => return false,
        }
    }
    // Raw-string tail: zero or more '#', then '"'.
    let mut hashes = 0usize;
    while cur.peek(j + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(j + hashes) != Some('"') {
        return false;
    }
    // Consume introducer: r/br, hashes, opening quote.
    for _ in 0..(j + hashes + 1) {
        cur.bump();
    }
    // Scan to `"` followed by `hashes` '#'s.
    while let Some(ch) = cur.peek(0) {
        if ch == '"' && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
            for _ in 0..(1 + hashes) {
                cur.bump();
            }
            break;
        }
        cur.bump();
    }
    out.tokens.push(token(TokenKind::Str, line, col));
    true
}

fn lex_quote_as_char(cur: &mut Cursor) {
    cur.bump(); // opening '
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump();
            cur.bump();
        } else if c == '\'' {
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
}

fn lex_number(cur: &mut Cursor) {
    let mut seen_dot = false;
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.bump();
            // Exponent sign: `1e-3`, `2.5E+8`.
            if (c == 'e' || c == 'E')
                && matches!(cur.peek(0), Some('+') | Some('-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        } else if c == '.' && !seen_dot && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // Decimal point, but never a range operator (`0..n`).
            seen_dot = true;
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_positions() {
        let l = lex("fn main() {\n    foo();\n}\n");
        let foo = l
            .tokens
            .iter()
            .find(|t| t.text == "foo")
            .expect("foo lexed");
        assert_eq!((foo.line, foo.col), (2, 5));
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(idents(r#"let s = "unwrap HashMap";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_hide_identifiers() {
        assert_eq!(idents(r##"let s = r#"x.unwrap()"#;"##), vec!["let", "s"]);
        assert_eq!(idents("let s = r\"panic!\";"), vec!["let", "s"]);
        assert_eq!(idents("let b = b\"panic\";"), vec!["let", "b"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("x(); // trailing note\n/* block\nspans */ y();");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " trailing note");
        assert!(l.comments[1].text.contains("spans"));
        let names = ["x", "y"];
        let got: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(got, names);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ fn f() {}";
        assert_eq!(lex(src).comments.len(), 1);
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let c = '\''; let d = '\n'; let e = b'x';");
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { let x = 1.5e-3; }");
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text == ".")
            .count();
        assert_eq!(dots, 2, "range dots survive as punctuation");
        let numbers = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .count();
        assert_eq!(numbers, 3);
    }

    #[test]
    fn multiline_string_positions_stay_correct() {
        let l = lex("let s = \"line\nbreak\";\nfoo();");
        let foo = l
            .tokens
            .iter()
            .find(|t| t.text == "foo")
            .expect("foo lexed");
        assert_eq!((foo.line, foo.col), (3, 1));
    }
}
