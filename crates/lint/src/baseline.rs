//! The P001 ratchet baseline (`lint-baseline.json`).
//!
//! Panic-hygiene debt predates the gate, so P001 cannot start at zero
//! without a flag day. Instead the committed baseline records per-crate
//! counts of surviving (unallowed, non-test) P001 findings: a count at or
//! below its baseline passes, any *increase* fails, and `sd-lint ratchet`
//! rewrites the file downward once debt is paid off. The file is
//! key-sorted JSON, so diffs read as "which crate got cleaner".

use serde_json::Value;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// The committed file name, at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// On-disk format version.
const FORMAT: f64 = 1.0;

/// Per-crate P001 debt ceiling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Crate name → maximum tolerated P001 count.
    pub p001: BTreeMap<String, usize>,
}

impl Baseline {
    /// Loads the baseline from `root/lint-baseline.json`; a missing file
    /// is an empty baseline (every crate must then be at zero).
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join(BASELINE_FILE);
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        let mut baseline = Baseline::default();
        let Some(map) = value.get("p001").and_then(Value::as_object) else {
            return Err(format!(
                "{}: expected an object with a \"p001\" member",
                path.display()
            ));
        };
        for (crate_name, count) in map {
            let Some(count) = count.as_f64() else {
                return Err(format!(
                    "{}: p001.{crate_name} is not a number",
                    path.display()
                ));
            };
            baseline.p001.insert(crate_name.clone(), count as usize);
        }
        Ok(baseline)
    }

    /// Serializes to the committed JSON shape.
    pub fn to_value(&self) -> Value {
        let mut p001 = BTreeMap::new();
        for (crate_name, &count) in &self.p001 {
            p001.insert(crate_name.clone(), Value::Number(count as f64));
        }
        let mut top = BTreeMap::new();
        top.insert("format".to_string(), Value::Number(FORMAT));
        top.insert("p001".to_string(), Value::Object(p001));
        Value::Object(top)
    }

    /// Writes the baseline to `root/lint-baseline.json`.
    pub fn save(&self, root: &Path) -> Result<(), String> {
        let path = root.join(BASELINE_FILE);
        let text = serde_json::to_string_pretty(&self.to_value())
            .map_err(|e| format!("cannot serialize baseline: {e}"))?;
        fs::write(&path, text + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// The tolerated count for `crate_name` (0 when unlisted).
    pub fn ceiling(&self, crate_name: &str) -> usize {
        self.p001.get(crate_name).copied().unwrap_or(0)
    }
}

/// A per-crate comparison of current P001 counts against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// Crate name.
    pub crate_name: String,
    /// Current surviving P001 count.
    pub current: usize,
    /// Baseline ceiling.
    pub ceiling: usize,
}

impl RatchetDelta {
    /// The crate regressed (fails the gate).
    pub fn regressed(&self) -> bool {
        self.current > self.ceiling
    }

    /// The crate got cleaner (ratchet opportunity).
    pub fn improvable(&self) -> bool {
        self.current < self.ceiling
    }
}

/// Joins current counts with the baseline over the union of crates.
pub fn compare(current: &BTreeMap<String, usize>, baseline: &Baseline) -> Vec<RatchetDelta> {
    let mut names: Vec<&String> = current.keys().chain(baseline.p001.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| RatchetDelta {
            crate_name: name.clone(),
            current: current.get(name).copied().unwrap_or(0),
            ceiling: baseline.ceiling(name),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut b = Baseline::default();
        b.p001.insert("sd-emd".into(), 2);
        b.p001.insert("sd-bench".into(), 35);
        let text = serde_json::to_string_pretty(&b.to_value()).expect("serializes");
        let value = serde_json::from_str(&text).expect("parses");
        let mut restored = Baseline::default();
        for (k, v) in value.get("p001").and_then(Value::as_object).expect("p001") {
            restored
                .p001
                .insert(k.clone(), v.as_f64().expect("number") as usize);
        }
        assert_eq!(restored, b);
    }

    #[test]
    fn compare_covers_the_union() {
        let mut baseline = Baseline::default();
        baseline.p001.insert("sd-emd".into(), 2);
        baseline.p001.insert("sd-stats".into(), 3);
        let mut current = BTreeMap::new();
        current.insert("sd-emd".to_string(), 3); // regression
        current.insert("sd-core".to_string(), 1); // new debt (ceiling 0)
        let deltas = compare(&current, &baseline);
        let by_name = |n: &str| {
            deltas
                .iter()
                .find(|d| d.crate_name == n)
                .expect("delta present")
        };
        assert!(by_name("sd-emd").regressed());
        assert!(by_name("sd-core").regressed());
        assert!(by_name("sd-stats").improvable(), "count 0 below ceiling 3");
    }

    #[test]
    fn missing_baseline_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/dir")).expect("missing file is ok");
        assert_eq!(b.ceiling("sd-core"), 0);
    }
}
