pub fn fanout(xs: &[Vec<f64>]) -> Vec<f64> {
    sd_core::parallel_map(xs, 4, |row| row.iter().sum())
}
