use std::time::Instant;

pub fn timed() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
