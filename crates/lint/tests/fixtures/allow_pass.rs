pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // sd-lint: allow(P001, fixture exercises the escape hatch)
}
