pub fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
