use std::collections::BTreeMap;

pub fn index(keys: &[u32]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        out.insert(*k, i);
    }
    out
}
