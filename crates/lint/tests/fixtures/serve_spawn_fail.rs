use std::thread;

pub fn sneak_a_thread(rows: Vec<f64>) -> thread::JoinHandle<f64> {
    thread::spawn(move || rows.iter().sum())
}
