pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn boom() {
    panic!("nope");
}
