use std::thread::{Builder, JoinHandle};

pub fn spawn_evaluators(workers: usize) -> Vec<JoinHandle<()>> {
    (0..workers)
        .map(|w| {
            Builder::new()
                .name(format!("sd-serve-eval-{w}"))
                .spawn(move || drop(w))
                // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
                .expect("spawning an evaluator thread")
        })
        .collect()
}
