use std::thread::{Builder, JoinHandle};

pub fn spawn_worker(body: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    Builder::new()
        .name("sd-serve-shard".into())
        .spawn(body)
        // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
        .expect("spawning a shard thread")
}
