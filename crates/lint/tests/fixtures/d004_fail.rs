use std::thread;

pub fn fanout(xs: Vec<f64>) -> f64 {
    let h = thread::spawn(move || xs.iter().sum::<f64>());
    h.join().unwrap_or(0.0)
}
