pub fn reinterpret(x: u64) -> f64 {
    f64::from_bits(x)
}
