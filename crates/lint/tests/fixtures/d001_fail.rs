use std::collections::HashMap;

pub fn index(keys: &[u32]) -> HashMap<u32, usize> {
    let mut out = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        out.insert(*k, i);
    }
    out
}
