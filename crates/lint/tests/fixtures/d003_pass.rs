pub fn pure(data: &[f64]) -> f64 {
    data.iter().sum()
}
