// sd-lint: allow(P001)
pub fn f() {}
