pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn head_works() {
        assert_eq!(super::head(&[7]).unwrap(), 7);
    }
}
