use std::io;
use std::thread::{Builder, JoinHandle};

pub fn spawn_pool(workers: usize) -> io::Result<Vec<JoinHandle<()>>> {
    (0..workers)
        .map(|w| {
            Builder::new()
                .name(format!("rogue-eval-{w}"))
                .spawn(move || drop(w))
        })
        .collect()
}
