//! The meta-test: the live workspace must lint clean against the
//! committed baseline. This is the same predicate CI's `lint` job
//! enforces, so a PR that introduces a violation fails `cargo test`
//! locally before it ever reaches CI.

use sd_lint::diagnostics::RuleId;
use sd_lint::{check_workspace, workspace_root};

#[test]
fn live_workspace_passes_the_lint_gate() {
    let (outcome, _baseline) =
        check_workspace(workspace_root()).expect("workspace walk and lint succeed");
    assert!(outcome.files_scanned > 50, "the walker found the workspace");

    let hard: Vec<_> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule != RuleId::P001)
        .collect();
    assert!(
        hard.is_empty(),
        "hard violations in the live tree: {hard:#?}"
    );

    let regressions: Vec<_> = outcome.deltas.iter().filter(|d| d.regressed()).collect();
    assert!(
        regressions.is_empty(),
        "P001 above the committed baseline: {regressions:#?}"
    );
    assert!(outcome.passes());
}

#[test]
fn sd_core_panic_debt_is_fully_paid() {
    // PR invariant: the result-producing engine crate carries zero
    // tolerated panic sites, and the baseline must not quietly re-admit
    // any (absence from the file means ceiling 0).
    let (outcome, baseline) =
        check_workspace(workspace_root()).expect("workspace walk and lint succeed");
    assert_eq!(outcome.p001_by_crate.get("sd-core"), None);
    assert_eq!(baseline.ceiling("sd-core"), 0);
}
