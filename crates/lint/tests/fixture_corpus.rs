//! The fixture corpus: every rule fires on its failing fixture at an
//! exact `(rule, line, col)`, and stays silent on the passing twin.
//!
//! Fixtures live under `tests/fixtures/` — outside the `src/` trees that
//! [`sd_lint::walk`] scans — so the deliberately dirty ones never reach
//! the live gate. They are linted as if they sat in `sd-core`, the
//! strictest scope (every rule active).

use sd_lint::diagnostics::RuleId;
use sd_lint::engine::lint_source;

/// Lints a fixture as an sd-core source file and returns the surviving
/// findings as `(rule, line, col)` triples in reporting order.
fn findings(name: &str, src: &str) -> Vec<(RuleId, u32, u32)> {
    let file = format!("crates/core/src/{name}");
    let lint = lint_source(&file, "sd-core", src);
    lint.diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

#[test]
fn d001_fires_on_hashmap_at_every_site() {
    let got = findings("d001_fail.rs", include_str!("fixtures/d001_fail.rs"));
    assert_eq!(
        got,
        vec![
            (RuleId::D001, 1, 23),
            (RuleId::D001, 3, 31),
            (RuleId::D001, 4, 19),
        ]
    );
}

#[test]
fn d001_accepts_btreemap() {
    let got = findings("d001_pass.rs", include_str!("fixtures/d001_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn d002_fires_on_thread_rng() {
    let got = findings("d002_fail.rs", include_str!("fixtures/d002_fail.rs"));
    assert_eq!(got, vec![(RuleId::D002, 2, 25)]);
}

#[test]
fn d002_accepts_seeded_stdrng() {
    let got = findings("d002_pass.rs", include_str!("fixtures/d002_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn d003_fires_on_instant_at_import_and_use() {
    let got = findings("d003_fail.rs", include_str!("fixtures/d003_fail.rs"));
    assert_eq!(got, vec![(RuleId::D003, 1, 16), (RuleId::D003, 4, 17)]);
}

#[test]
fn d003_accepts_clock_free_compute() {
    let got = findings("d003_pass.rs", include_str!("fixtures/d003_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn d004_fires_on_raw_spawn_but_not_unwrap_or() {
    // `h.join().unwrap_or(0.0)` must NOT trip P001: `unwrap_or` is a
    // distinct identifier, not a sloppy `unwrap`.
    let got = findings("d004_fail.rs", include_str!("fixtures/d004_fail.rs"));
    assert_eq!(got, vec![(RuleId::D004, 4, 21)]);
}

#[test]
fn d004_accepts_parallel_map() {
    let got = findings("d004_pass.rs", include_str!("fixtures/d004_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn p001_fires_on_unwrap_and_panic() {
    let got = findings("p001_fail.rs", include_str!("fixtures/p001_fail.rs"));
    assert_eq!(got, vec![(RuleId::P001, 2, 24), (RuleId::P001, 6, 5)]);
}

#[test]
fn p001_skips_test_regions() {
    let got = findings("p001_pass.rs", include_str!("fixtures/p001_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn u001_fires_on_unsafe_block() {
    let got = findings("u001_fail.rs", include_str!("fixtures/u001_fail.rs"));
    assert_eq!(got, vec![(RuleId::U001, 2, 5)]);
}

#[test]
fn u001_accepts_safe_bit_casts() {
    let got = findings("u001_pass.rs", include_str!("fixtures/u001_pass.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn allow_directive_suppresses_and_is_counted() {
    let lint = lint_source(
        "crates/core/src/allow_pass.rs",
        "sd-core",
        include_str!("fixtures/allow_pass.rs"),
    );
    assert_eq!(lint.diagnostics, vec![], "the escape hatch suppresses");
    assert_eq!(lint.suppressed.len(), 1, "but the debt stays visible");
    assert_eq!(lint.suppressed[0].rule, RuleId::P001);
    assert_eq!(lint.allows.len(), 1);
    assert!(lint.allows[0].used);
    assert_eq!(lint.allows[0].reason, "fixture exercises the escape hatch");
}

#[test]
fn malformed_allow_is_a_hard_failure() {
    let got = findings(
        "allow_malformed.rs",
        include_str!("fixtures/allow_malformed.rs"),
    );
    assert_eq!(got, vec![(RuleId::A000, 1, 1)], "missing reason -> A000");
}

#[test]
fn bench_scope_drops_determinism_rules_but_not_panic_hygiene() {
    let src = include_str!("fixtures/d002_fail.rs");
    let lint = lint_source("crates/bench/src/lib.rs", "sd-bench", src);
    assert_eq!(lint.diagnostics, vec![], "sd-bench may use entropy");
    let p001 = include_str!("fixtures/p001_fail.rs");
    let lint = lint_source("crates/bench/src/lib.rs", "sd-bench", p001);
    assert_eq!(lint.diagnostics.len(), 2, "P001 still applies in sd-bench");
}

#[test]
fn d004_approves_the_serve_shard_module() {
    // The exact spawn idiom the serving layer uses — Builder named thread
    // plus the P001 allow on the expect — is clean *in the approved file*.
    let lint = lint_source(
        "crates/serve/src/shard.rs",
        "sd-serve",
        include_str!("fixtures/serve_spawn_pass.rs"),
    );
    assert_eq!(lint.diagnostics, vec![]);
    assert_eq!(lint.suppressed.len(), 1, "the P001 allow stays visible");
    assert_eq!(lint.suppressed[0].rule, RuleId::P001);
}

#[test]
fn d004_fires_on_spawn_elsewhere_in_the_serve_crate() {
    // The same crate gets no blanket pass: a raw spawn in any other
    // sd-serve module is a finding at the exact spawn token.
    let lint = lint_source(
        "crates/serve/src/service.rs",
        "sd-serve",
        include_str!("fixtures/serve_spawn_fail.rs"),
    );
    let got: Vec<_> = lint
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect();
    assert_eq!(got, vec![(RuleId::D004, 4, 13)]);
}

#[test]
fn d004_approves_the_serve_evaluator_module() {
    // The evaluator pool's spawn idiom — a loop of Builder-named workers
    // with the P001 allow on the expect — is clean *in the approved
    // evaluator module*.
    let lint = lint_source(
        "crates/serve/src/evaluator.rs",
        "sd-serve",
        include_str!("fixtures/evaluator_spawn_pass.rs"),
    );
    assert_eq!(lint.diagnostics, vec![]);
    assert_eq!(lint.suppressed.len(), 1, "the P001 allow stays visible");
    assert_eq!(lint.suppressed[0].rule, RuleId::P001);
}

#[test]
fn d004_fires_on_a_worker_pool_outside_the_evaluator_module() {
    // The identical pool idiom in any other module is a finding at the
    // exact spawn token — approving evaluator.rs is not a blanket pass
    // for worker pools.
    let lint = lint_source(
        "crates/serve/src/collector.rs",
        "sd-serve",
        include_str!("fixtures/evaluator_spawn_fail.rs"),
    );
    let got: Vec<_> = lint
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect();
    assert_eq!(got, vec![(RuleId::D004, 9, 18)]);
}

#[test]
fn d004_still_approves_the_runner_file() {
    // Extending the approved list must not un-approve the original
    // parallel_map site.
    let lint = lint_source(
        "crates/core/src/runner.rs",
        "sd-core",
        include_str!("fixtures/serve_spawn_fail.rs"),
    );
    assert_eq!(lint.diagnostics, vec![]);
}
