//! Replays a generated dataset as a row stream for the serving layer.
//!
//! The streaming service consumes [`ArrivalRow`]s — one node's attribute
//! vector at one time step — in any cross-node interleaving, as long as
//! each node's own rows arrive in time order. These helpers produce the
//! two interleavings the tests care about: the canonical time-major
//! sweep (every node reports each step before any node reports the
//! next, like a polling cycle) and a seeded pseudo-random interleaving
//! that models skewed collection latencies while preserving per-node
//! order.

use sd_data::{ArrivalRow, Dataset};

/// All rows of `data` in time-major order: step 0 of every series (in
/// series order), then step 1, and so on; series that have ended are
/// skipped. Per-node rows are in time order, as the serving layer
/// requires.
pub fn stream_rows(data: &Dataset) -> Vec<ArrivalRow> {
    let horizon = data.series().iter().map(|s| s.len()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(data.num_records());
    for t in 0..horizon {
        for series in data.series() {
            if t < series.len() {
                rows.push(ArrivalRow {
                    node: series.node(),
                    t,
                    values: (0..series.num_attributes())
                        .map(|a| series.get(a, t))
                        .collect(),
                });
            }
        }
    }
    rows
}

/// All rows of `data` in a seeded pseudo-random interleaving: at every
/// step one series with rows remaining is picked by a multiplicative
/// congruential draw and yields its next row. Per-node rows stay in
/// time order; the cross-node interleaving is arbitrary but a pure
/// function of `seed` — the adversarial input of the determinism tests.
pub fn stream_rows_interleaved(data: &Dataset, seed: u64) -> Vec<ArrivalRow> {
    let mut next: Vec<usize> = vec![0; data.num_series()];
    let mut live: Vec<usize> = (0..data.num_series())
        .filter(|&i| !data.series_at(i).is_empty())
        .collect();
    let mut state = seed | 1;
    let mut rows = Vec::with_capacity(data.num_records());
    while !live.is_empty() {
        // Lehmer/MCG step; high bits are the well-mixed ones.
        state = state.wrapping_mul(0xda94_2042_e4dd_58b5);
        let pick = ((state >> 33) % live.len() as u64) as usize;
        let series = live[pick];
        let s = data.series_at(series);
        let t = next[series];
        rows.push(ArrivalRow {
            node: s.node(),
            t,
            values: (0..s.num_attributes()).map(|a| s.get(a, t)).collect(),
        });
        next[series] += 1;
        if next[series] >= s.len() {
            live.swap_remove(pick);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, NetsimConfig};
    use std::collections::BTreeMap;

    #[test]
    fn time_major_covers_every_record_in_node_order() {
        let data = generate(&NetsimConfig::small(3)).dataset;
        let rows = stream_rows(&data);
        assert_eq!(rows.len(), data.num_records());
        let mut clock: BTreeMap<_, usize> = BTreeMap::new();
        for row in &rows {
            let t = clock.entry(row.node).or_insert(0);
            assert_eq!(row.t, *t, "per-node rows must be in time order");
            *t += 1;
        }
    }

    #[test]
    fn interleaved_is_a_permutation_preserving_node_order() {
        let data = generate(&NetsimConfig::small(3)).dataset;
        let rows = stream_rows_interleaved(&data, 99);
        assert_eq!(rows.len(), data.num_records());
        let mut clock: BTreeMap<_, usize> = BTreeMap::new();
        for row in &rows {
            let t = clock.entry(row.node).or_insert(0);
            assert_eq!(row.t, *t);
            *t += 1;
        }
        assert_eq!(clock.len(), data.num_series());
        // Different seeds produce different interleavings (with 6 000
        // rows, a collision would be astronomically unlikely).
        let other = stream_rows_interleaved(&data, 100);
        assert!(rows.iter().zip(&other).any(|(a, b)| a.node != b.node));
    }

    #[test]
    fn interleavings_are_deterministic() {
        let data = generate(&NetsimConfig::small(3)).dataset;
        let a = stream_rows_interleaved(&data, 7);
        let b = stream_rows_interleaved(&data, 7);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.node == y.node && x.t == y.t));
    }
}
