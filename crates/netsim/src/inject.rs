use crate::{GlitchRates, KpiParams};
use rand::Rng;
use sd_glitch::{GlitchMatrix, GlitchType};

/// A two-state Markov burst process with a target stationary on-fraction
/// and mean burst length.
///
/// Glitches in network telemetry are bursty — equipment stays down for a
/// stretch, not for isolated ticks (§6.1). With on→off probability
/// `1 / mean_len` and off→on probability chosen so the stationary
/// on-fraction equals `fraction`, the process injects the right *amount*
/// of glitch while preserving temporal clustering.
#[derive(Debug, Clone, Copy)]
pub struct BurstProcess {
    /// P(off → on).
    p_start: f64,
    /// P(on → off) = 1 / mean burst length.
    p_stop: f64,
    on: bool,
}

impl BurstProcess {
    /// Creates a process with the given stationary `fraction ∈ [0, 1)` and
    /// mean burst length (≥ 1).
    pub fn new(fraction: f64, mean_len: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        assert!(mean_len >= 1.0, "mean burst length must be >= 1");
        let p_stop = 1.0 / mean_len;
        // Stationary on-fraction = p_start / (p_start + p_stop).
        let p_start = if fraction == 0.0 {
            0.0
        } else {
            (fraction * p_stop / (1.0 - fraction)).min(1.0)
        };
        BurstProcess {
            p_start,
            p_stop,
            on: false,
        }
    }

    /// Scales the stationary on-fraction (tower health modulation). The
    /// scaled fraction is clamped to 0.95, and the mean burst length is
    /// preserved, so a sector with intensity `h` spends `h ×` as much time
    /// glitching without changing the burst texture.
    pub fn with_intensity(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "intensity must be non-negative");
        let fraction = (self.stationary_fraction() * factor).min(0.95);
        let mut scaled = BurstProcess::new(fraction, 1.0 / self.p_stop);
        scaled.on = self.on;
        scaled
    }

    /// Advances one step and returns whether the process is "on".
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let u: f64 = rng.gen();
        self.on = if self.on {
            u >= self.p_stop
        } else {
            u < self.p_start
        };
        self.on
    }

    /// The stationary on-fraction implied by the current parameters.
    pub fn stationary_fraction(&self) -> f64 {
        if self.p_start == 0.0 {
            0.0
        } else {
            self.p_start / (self.p_start + self.p_stop)
        }
    }
}

/// Applies glitch corruption to one sector's clean KPI rows, recording the
/// ground truth of every injection.
///
/// Injection order per record:
/// 1. full-record missing bursts (equipment down);
/// 2. attribute-3 missing bursts (ratio counter down — drives the
///    missing/inconsistent co-occurrence via the cross-attribute rule);
/// 3. value corruptions (negative load, ratio > 1);
/// 4. anomalies (load spikes, load dropouts) — ground-truth outliers.
#[derive(Debug)]
pub struct GlitchInjector {
    full_missing: BurstProcess,
    attr1_missing: BurstProcess,
    attr3_missing: BurstProcess,
    spike: BurstProcess,
    dropout: BurstProcess,
    rates: GlitchRates,
    kpi: KpiParams,
}

impl GlitchInjector {
    /// Creates an injector for one sector. `dirty` selects full-strength
    /// rates; clean sectors run at `rates.clean_scale` strength.
    /// `tower_intensity` modulates burst starts so collocated sectors fail
    /// together.
    pub fn new(rates: GlitchRates, kpi: KpiParams, dirty: bool, tower_intensity: f64) -> Self {
        let scale = if dirty { 1.0 } else { rates.clean_scale };
        GlitchInjector {
            full_missing: BurstProcess::new(rates.full_missing * scale, 2.0)
                .with_intensity(tower_intensity),
            attr1_missing: BurstProcess::new(rates.attr1_missing * scale, 3.0)
                .with_intensity(tower_intensity),
            attr3_missing: BurstProcess::new(rates.attr3_missing * scale, 5.0)
                .with_intensity(tower_intensity),
            spike: BurstProcess::new(rates.spike * scale, 2.0).with_intensity(tower_intensity),
            dropout: BurstProcess::new(rates.dropout * scale, 3.0).with_intensity(tower_intensity),
            rates,
            kpi,
        }
    }

    /// Corrupts record `t` in place and stamps ground truth into `truth`.
    /// `scale` multiplies the per-record corruption probabilities (clean
    /// sectors pass `rates.clean_scale`).
    pub fn corrupt_record<R: Rng + ?Sized>(
        &mut self,
        values: &mut [f64; 3],
        truth: &mut GlitchMatrix,
        t: usize,
        scale: f64,
        rng: &mut R,
    ) {
        // 1. Full-record missing burst.
        if self.full_missing.step(rng) {
            for (a, v) in values.iter_mut().enumerate() {
                *v = f64::NAN;
                truth.set(a, GlitchType::Missing, t);
            }
            return; // nothing else can corrupt an unpopulated record
        }

        // 2a. Load-counter gap: attribute 1 alone missing (these records
        //     are imputable from the surviving attributes — Figure 4's
        //     gray points).
        if self.attr1_missing.step(rng) {
            values[0] = f64::NAN;
            truth.set(0, GlitchType::Missing, t);
        }

        // 2b. Ratio-counter-down burst: attribute 3 missing; when
        //     attribute 1 is still populated the cross rule also makes the
        //     record inconsistent.
        if self.attr3_missing.step(rng) {
            values[2] = f64::NAN;
            truth.set(2, GlitchType::Missing, t);
            if !values[0].is_nan() {
                truth.set(0, GlitchType::Inconsistent, t);
            }
        }

        // 3. Value corruptions.
        if !values[0].is_nan() && rng.gen::<f64>() < self.rates.negative_attr1 * scale {
            values[0] = -values[0].abs();
            truth.set(0, GlitchType::Inconsistent, t);
        }
        if !values[2].is_nan() && rng.gen::<f64>() < self.rates.ratio_above_one * scale {
            values[2] = 1.0 + rng.gen::<f64>() * 0.3;
            truth.set(2, GlitchType::Inconsistent, t);
        }

        // 4. Anomalies on the load attribute (skip if corrupted negative —
        //    a spike on a negative value is still inconsistent, not a
        //    meaningful anomaly).
        if values[0] > 0.0 {
            if self.spike.step(rng) {
                let (lo, hi) = self.kpi.spike_factor;
                values[0] *= log_uniform(lo, hi, rng);
                truth.set(0, GlitchType::Outlier, t);
            } else if self.dropout.step(rng) {
                let (lo, hi) = self.kpi.dropout_factor;
                values[0] *= log_uniform(lo, hi, rng);
                truth.set(0, GlitchType::Outlier, t);
            }
        }
    }
}

/// Draws log-uniformly from `[lo, hi]`.
fn log_uniform<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    let u: f64 = rng.gen();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn burst_process_hits_stationary_fraction() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = BurstProcess::new(0.15, 5.0);
        let n = 200_000;
        let on = (0..n).filter(|_| p.step(&mut rng)).count();
        let frac = on as f64 / n as f64;
        assert!((frac - 0.15).abs() < 0.01, "got {frac}");
        assert!((p.stationary_fraction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn burst_process_is_bursty() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = BurstProcess::new(0.2, 6.0);
        let states: Vec<f64> = (0..50_000)
            .map(|_| if p.step(&mut rng) { 1.0 } else { 0.0 })
            .collect();
        let ac = sd_stats::autocorrelation(&states, 1).unwrap();
        assert!(ac > 0.4, "bursts should be autocorrelated, got {ac}");
    }

    #[test]
    fn zero_fraction_never_fires() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = BurstProcess::new(0.0, 4.0);
        assert!((0..10_000).all(|_| !p.step(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        BurstProcess::new(1.0, 4.0);
    }

    #[test]
    fn injector_rates_are_roughly_on_target() {
        let mut rng = StdRng::seed_from_u64(17);
        let rates = GlitchRates::default();
        let kpi = KpiParams::default();
        let mut inj = GlitchInjector::new(rates, kpi, true, 1.0);
        let t_len = 100_000;
        let mut truth = GlitchMatrix::new(3, t_len);
        for t in 0..t_len {
            let mut values = [100.0, 20.0, 0.93];
            inj.corrupt_record(&mut values, &mut truth, t, 1.0, &mut rng);
        }
        let missing = truth.count_records(GlitchType::Missing) as f64 / t_len as f64;
        let inconsistent = truth.count_records(GlitchType::Inconsistent) as f64 / t_len as f64;
        let outlier = truth.count_records(GlitchType::Outlier) as f64 / t_len as f64;
        // Expectations derived from the configured rates (record level,
        // correcting for first-order overlaps).
        let miss_expect = rates.full_missing + rates.attr1_missing + rates.attr3_missing
            - rates.attr1_missing * rates.attr3_missing;
        let incons_expect = rates.attr3_missing * (1.0 - rates.attr1_missing)
            + rates.negative_attr1
            + rates.ratio_above_one;
        let outlier_expect =
            (rates.spike + rates.dropout) * (1.0 - miss_expect - rates.negative_attr1);
        assert!(
            (missing - miss_expect).abs() < 0.02,
            "missing {missing} vs {miss_expect}"
        );
        assert!(
            (inconsistent - incons_expect).abs() < 0.02,
            "inconsistent {inconsistent} vs {incons_expect}"
        );
        assert!(
            (outlier - outlier_expect).abs() < 0.03,
            "outlier {outlier} vs {outlier_expect}"
        );
    }

    #[test]
    fn clean_sectors_stay_under_ideal_threshold() {
        let mut rng = StdRng::seed_from_u64(23);
        let rates = GlitchRates::default();
        let mut inj = GlitchInjector::new(rates, KpiParams::default(), false, 1.0);
        let t_len = 50_000;
        let mut truth = GlitchMatrix::new(3, t_len);
        for t in 0..t_len {
            let mut values = [100.0, 20.0, 0.93];
            inj.corrupt_record(&mut values, &mut truth, t, rates.clean_scale, &mut rng);
        }
        for &g in &GlitchType::ALL {
            let frac = truth.count_records(g) as f64 / t_len as f64;
            assert!(frac < 0.05, "{g} fraction {frac} breaches ideal threshold");
        }
    }

    #[test]
    fn full_missing_blanks_whole_record() {
        let mut rng = StdRng::seed_from_u64(29);
        let rates = GlitchRates {
            full_missing: 0.8,
            attr1_missing: 0.0,
            attr3_missing: 0.0,
            negative_attr1: 0.0,
            ratio_above_one: 0.0,
            spike: 0.0,
            dropout: 0.0,
            clean_scale: 0.1,
        };
        let mut inj = GlitchInjector::new(rates, KpiParams::default(), true, 1.0);
        let mut truth = GlitchMatrix::new(3, 200);
        let mut saw_blackout = false;
        for t in 0..200 {
            let mut values = [100.0, 20.0, 0.93];
            inj.corrupt_record(&mut values, &mut truth, t, 1.0, &mut rng);
            if values[0].is_nan() {
                assert!(values[1].is_nan() && values[2].is_nan());
                saw_blackout = true;
            }
        }
        assert!(saw_blackout);
    }

    #[test]
    fn log_uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..1000 {
            let x = log_uniform(60.0, 400.0, &mut rng);
            assert!((60.0..=400.0).contains(&x));
        }
    }
}
