use crate::KpiParams;
use rand::Rng;
use rand_distr::{Beta, Distribution, Gamma, Normal};

/// Per-sector KPI generator: produces the *clean* latent measurements that
/// glitch injection later corrupts.
///
/// Attribute layout (fixed across the workspace):
/// * `0` — "load": `exp(μ_s + diurnal + AR(1) − Gamma)`. The subtracted
///   Gamma deviate puts a long lower tail on the log scale (left skew) and
///   a long upper tail on the raw scale (right skew), matching the paper's
///   Figure 4 histograms.
/// * `1` — "volume": lognormal around a per-sector level.
/// * `2` — "ratio": Beta success ratio with mass near 1, inside `[0, 1]`.
#[derive(Debug, Clone)]
pub struct KpiModel {
    params: KpiParams,
    /// Per-sector log-load level `μ_s`.
    mu_load: f64,
    /// Per-sector log-volume level.
    mu_volume: f64,
    /// AR(1) state of the latent load process.
    ar_state: f64,
    /// Sticky left-skew deviate: kept with probability `SKEW_STICKINESS`
    /// each step, else resampled. The stationary marginal is exactly the
    /// Gamma, while lag-1 autocorrelation equals the stickiness — giving
    /// the load series temporal correlation without distorting its shape.
    skew_state: f64,
    gamma: Gamma<f64>,
    beta: Beta<f64>,
}

/// Probability of holding the previous skew deviate for another step.
const SKEW_STICKINESS: f64 = 0.55;

/// Number of attributes the model emits.
pub const NUM_ATTRIBUTES: usize = 3;

/// Attribute index of the load KPI ("Attribute 1" in the paper).
pub const ATTR_LOAD: usize = 0;
/// Attribute index of the volume KPI ("Attribute 2").
pub const ATTR_VOLUME: usize = 1;
/// Attribute index of the success ratio ("Attribute 3").
pub const ATTR_RATIO: usize = 2;

impl KpiModel {
    /// Draws per-sector levels and initializes the AR state.
    pub fn new<R: Rng + ?Sized>(params: KpiParams, rng: &mut R) -> Self {
        let sector_level = Normal::new(params.log_load_mean, params.log_load_sector_sd)
            .expect("valid sector level distribution");
        let mu_load = sector_level.sample(rng);
        let mu_volume = Normal::new(params.log_volume_mean, params.log_volume_sd)
            .expect("valid volume distribution")
            .sample(rng);
        let gamma = Gamma::new(params.log_load_gamma_shape, params.log_load_gamma_scale)
            .expect("valid gamma");
        let beta = Beta::new(params.ratio_alpha, params.ratio_beta).expect("valid beta");
        let skew_state = gamma.sample(rng);
        KpiModel {
            params,
            mu_load,
            mu_volume,
            ar_state: 0.0,
            skew_state,
            gamma,
            beta,
        }
    }

    /// The per-sector log-load level.
    pub fn mu_load(&self) -> f64 {
        self.mu_load
    }

    /// Generates the clean 3-tuple for time step `t`, advancing the AR
    /// state.
    pub fn step<R: Rng + ?Sized>(&mut self, t: usize, rng: &mut R) -> [f64; NUM_ATTRIBUTES] {
        let p = &self.params;
        // Latent AR(1) innovation in log space.
        let innovation: f64 = Normal::new(0.0, 0.15).expect("valid noise").sample(rng);
        self.ar_state = p.ar_coefficient * self.ar_state + innovation;
        let diurnal = p.diurnal_amplitude * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
        // Sticky left-skew deviate in log space.
        if rng.gen::<f64>() >= SKEW_STICKINESS {
            self.skew_state = self.gamma.sample(rng);
        }
        let log_load = self.mu_load + diurnal + self.ar_state - self.skew_state;
        let load = log_load.exp();

        let volume_noise: f64 = Normal::new(0.0, 0.2).expect("valid noise").sample(rng);
        let log_volume = self.mu_volume + 0.5 * self.ar_state + volume_noise;
        let volume = log_volume.exp();

        let ratio: f64 = self.beta.sample(rng);
        [load, volume, ratio]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_stats::Summary;

    fn sample_attribute(attr: usize, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = KpiModel::new(KpiParams::default(), &mut rng);
        (0..n).map(|t| model.step(t, &mut rng)[attr]).collect()
    }

    #[test]
    fn load_is_positive_and_right_skewed_raw() {
        let loads = sample_attribute(ATTR_LOAD, 5000);
        assert!(loads.iter().all(|&x| x > 0.0));
        let s = Summary::from_slice(&loads);
        assert!(
            s.skewness > 0.5,
            "raw load should be right-skewed, got {}",
            s.skewness
        );
    }

    #[test]
    fn load_is_left_skewed_in_log_space() {
        let logs: Vec<f64> = sample_attribute(ATTR_LOAD, 5000)
            .into_iter()
            .map(f64::ln)
            .collect();
        let s = Summary::from_slice(&logs);
        assert!(
            s.skewness < -0.2,
            "log load should be left-skewed, got {}",
            s.skewness
        );
    }

    #[test]
    fn ratio_stays_in_unit_interval_with_mass_near_one() {
        let ratios = sample_attribute(ATTR_RATIO, 5000);
        assert!(ratios.iter().all(|&r| (0.0..=1.0).contains(&r)));
        let s = Summary::from_slice(&ratios);
        assert!(
            s.mean > 0.85,
            "ratio mass should sit near 1, got mean {}",
            s.mean
        );
    }

    #[test]
    fn volume_is_positive() {
        let volumes = sample_attribute(ATTR_VOLUME, 1000);
        assert!(volumes.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn sectors_differ_but_are_deterministic_per_seed() {
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut rng_c = StdRng::seed_from_u64(2);
        let a = KpiModel::new(KpiParams::default(), &mut rng_a);
        let b = KpiModel::new(KpiParams::default(), &mut rng_b);
        let c = KpiModel::new(KpiParams::default(), &mut rng_c);
        assert_eq!(a.mu_load(), b.mu_load());
        assert_ne!(a.mu_load(), c.mu_load());
    }

    #[test]
    fn temporal_autocorrelation_is_positive() {
        let loads: Vec<f64> = sample_attribute(ATTR_LOAD, 3000)
            .into_iter()
            .map(f64::ln)
            .collect();
        let ac = sd_stats::autocorrelation(&loads, 1).unwrap();
        assert!(ac > 0.1, "AR(1) should induce autocorrelation, got {ac}");
    }
}
