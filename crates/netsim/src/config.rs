use sd_data::Topology;

/// Per-record injection rates for dirty sectors.
///
/// The defaults are tuned so the **dirty partition** of a generated data
/// set reproduces the paper's Table 1 rates: ≈ 15.8 % records with missing
/// values, ≈ 15.9 % with inconsistencies (heavily overlapping the missing),
/// ≈ 16.8 % outliers under the log transform and ≈ 5.1 % without it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchRates {
    /// Stationary fraction of time steps inside a full-record missing burst
    /// (all attributes unpopulated — equipment down). Kept very rare: these
    /// records are unimputable by row-conditional imputation, and the
    /// paper's Table 1 shows only ≈ 0.028 % residual missing after
    /// Strategy 1.
    pub full_missing: f64,
    /// Stationary fraction of steps where attribute 1 alone is missing
    /// (load counter gap) — the records whose imputations form the gray
    /// points of Figure 4.
    pub attr1_missing: f64,
    /// Stationary fraction of steps where attribute 3 alone is missing
    /// while attribute 1 keeps reporting — the co-occurrence driver: each
    /// such record is both *missing* and (via the cross-attribute rule)
    /// *inconsistent*.
    pub attr3_missing: f64,
    /// Per-record probability of a corrupted negative attribute 1 (sensor
    /// sign error) — an inconsistency.
    pub negative_attr1: f64,
    /// Per-record probability of attribute 3 exceeding 1 (counting error)
    /// — an inconsistency.
    pub ratio_above_one: f64,
    /// Stationary fraction of steps inside a load-spike anomaly burst
    /// (outliers in raw *and* log space).
    pub spike: f64,
    /// Stationary fraction of steps inside a near-zero dropout anomaly
    /// burst (outliers in log space only).
    pub dropout: f64,
    /// Multiplier applied to every rate on clean sectors; must leave each
    /// clean-sector glitch rate under the 5 % ideal threshold.
    pub clean_scale: f64,
}

impl Default for GlitchRates {
    fn default() -> Self {
        GlitchRates {
            full_missing: 0.0003,
            attr1_missing: 0.015,
            attr3_missing: 0.165,
            negative_attr1: 0.007,
            ratio_above_one: 0.007,
            spike: 0.022,
            dropout: 0.120,
            clean_scale: 0.10,
        }
    }
}

/// Latent KPI model parameters shared by all sectors; per-sector levels are
/// drawn around these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KpiParams {
    /// Mean of per-sector log-load level `μ_s` (attribute 1 lives around
    /// `exp(μ_s)`).
    pub log_load_mean: f64,
    /// Spread of per-sector log-load levels.
    pub log_load_sector_sd: f64,
    /// Shape of the Gamma deviate subtracted in log space. Small shapes
    /// give a long *lower* tail in log space (left skew) and a long *upper*
    /// tail in raw space (right skew) — the paper's Attribute 1 shape.
    pub log_load_gamma_shape: f64,
    /// Scale of that Gamma deviate.
    pub log_load_gamma_scale: f64,
    /// AR(1) coefficient of the latent load process.
    pub ar_coefficient: f64,
    /// Amplitude of the diurnal (24-step) cycle in log space.
    pub diurnal_amplitude: f64,
    /// Mean of per-sector log-volume level (attribute 2).
    pub log_volume_mean: f64,
    /// In-series volume noise (log space).
    pub log_volume_sd: f64,
    /// Beta α of the success ratio (attribute 3); mass near 1.
    pub ratio_alpha: f64,
    /// Beta β of the success ratio.
    pub ratio_beta: f64,
    /// Multiplier range for spikes: drawn log-uniform in `[lo, hi]`.
    pub spike_factor: (f64, f64),
    /// Multiplier range for dropouts.
    pub dropout_factor: (f64, f64),
}

impl Default for KpiParams {
    fn default() -> Self {
        KpiParams {
            log_load_mean: 5.5,
            log_load_sector_sd: 0.30,
            log_load_gamma_shape: 2.2,
            log_load_gamma_scale: 0.42,
            ar_coefficient: 0.55,
            diurnal_amplitude: 0.20,
            log_volume_mean: 3.0,
            log_volume_sd: 0.30,
            ratio_alpha: 40.0,
            ratio_beta: 2.6,
            spike_factor: (8.0, 60.0),
            dropout_factor: (1e-4, 2e-3),
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetsimConfig {
    /// Network shape; the number of sectors is the number of series.
    pub topology: Topology,
    /// Length `T` of each series (the paper uses 170).
    pub series_len: usize,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
    /// Fraction of **towers** whose sectors are glitch-prone ("dirty").
    /// Clean-tower sectors form the pool from which the ideal data set
    /// `D_I` is identified.
    pub dirty_tower_fraction: f64,
    /// Injection rates.
    pub rates: GlitchRates,
    /// KPI model parameters.
    pub kpi: KpiParams,
}

impl NetsimConfig {
    /// Paper-scale configuration: 20 000 sectors × 170 steps × 3 attributes
    /// (≈ 10 M cells). Generation takes a few seconds.
    pub fn paper_scale(seed: u64) -> Self {
        NetsimConfig {
            topology: Topology::new(20, 50, 20),
            series_len: 170,
            seed,
            dirty_tower_fraction: 0.5,
            rates: GlitchRates::default(),
            kpi: KpiParams::default(),
        }
    }

    /// CI-scale configuration: 1 000 sectors × 170 steps. Preserves all
    /// rate targets; suitable for the reproduction harness defaults.
    pub fn harness_scale(seed: u64) -> Self {
        NetsimConfig {
            topology: Topology::new(5, 20, 10),
            series_len: 170,
            seed,
            dirty_tower_fraction: 0.5,
            rates: GlitchRates::default(),
            kpi: KpiParams::default(),
        }
    }

    /// Small configuration for unit tests: 100 sectors × 60 steps.
    pub fn small(seed: u64) -> Self {
        NetsimConfig {
            topology: Topology::new(2, 10, 5),
            series_len: 60,
            seed,
            dirty_tower_fraction: 0.5,
            rates: GlitchRates::default(),
            kpi: KpiParams::default(),
        }
    }

    /// A configuration over a caller-chosen network shape (default rates
    /// and KPI parameters) — the entry point for topology-aware scenarios
    /// such as the tower-pooling example, where the neighbourhood
    /// structure matters more than the sector count.
    pub fn for_topology(topology: Topology, series_len: usize, seed: u64) -> Self {
        NetsimConfig {
            topology,
            series_len,
            seed,
            dirty_tower_fraction: 0.5,
            rates: GlitchRates::default(),
            kpi: KpiParams::default(),
        }
    }

    /// Number of series this config will generate.
    pub fn num_series(&self) -> usize {
        self.topology.num_sectors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_respect_targets() {
        // The *detected, record-level* Table 1 rates also include natural
        // distribution tails (raw-space outliers) and partition effects,
        // so injection rates sit slightly off the headline numbers; the
        // end-to-end calibration is asserted by the integration tests.
        let r = GlitchRates::default();
        // Missing ≈ full + attr1-only + attr3-only, near 15.8 %.
        let missing = r.full_missing + r.attr1_missing + r.attr3_missing;
        assert!(
            (missing - 0.158).abs() < 0.04,
            "missing target, got {missing}"
        );
        // Residual missing after row-conditional imputation = fully-missing
        // records ≈ 0.03 % (Table 1's 0.0281 %).
        assert!(r.full_missing < 0.001);
        // Inconsistent ≈ attr3-only (cross rule) + corruptions, near 15.9 %.
        let inconsistent = r.attr3_missing + r.negative_attr1 + r.ratio_above_one;
        assert!((inconsistent - 0.159).abs() < 0.04);
        // Log-space outliers ≈ spikes + dropouts + corrupted negatives +
        // natural tails, near 16.8 %; raw-space outliers are mostly
        // natural lognormal tails plus the spikes, near 5.1 %.
        let log_outliers = r.spike + r.dropout + r.negative_attr1;
        assert!((log_outliers - 0.168).abs() < 0.05);
        assert!(
            r.spike < 0.05,
            "raw outliers are dominated by natural tails"
        );
    }

    #[test]
    fn clean_scale_keeps_clean_sectors_under_ideal_threshold() {
        let r = GlitchRates::default();
        let worst = (r.full_missing + r.attr1_missing + r.attr3_missing)
            .max(r.attr3_missing + r.negative_attr1 + r.ratio_above_one)
            .max(r.spike + r.dropout + r.negative_attr1);
        assert!(worst * r.clean_scale < 0.05, "ideal rule needs < 5 %");
    }

    #[test]
    fn scale_presets() {
        assert_eq!(NetsimConfig::paper_scale(1).num_series(), 20_000);
        assert_eq!(NetsimConfig::harness_scale(1).num_series(), 1_000);
        assert_eq!(NetsimConfig::small(1).num_series(), 100);
        assert_eq!(NetsimConfig::paper_scale(1).series_len, 170);
    }
}
