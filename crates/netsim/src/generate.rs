use crate::kpi::{KpiModel, NUM_ATTRIBUTES};
use crate::{GlitchInjector, NetsimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use sd_data::{Dataset, TimeSeries};
use sd_glitch::GlitchMatrix;

/// A generated data set plus everything needed to audit it.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The dirty telemetry (the paper's `D`).
    pub dataset: Dataset,
    /// Per-series ground-truth injections, aligned with
    /// `dataset.series()`. Useful for detector precision/recall tests;
    /// the experiments themselves only see detected glitches.
    pub ground_truth: Vec<GlitchMatrix>,
    /// Per-series flag: `true` for sectors generated with full glitch
    /// rates. The ideal data set is *identified* from the data by the < 5 %
    /// rule, not read from this flag; the flag exists for validation.
    pub dirty_flag: Vec<bool>,
}

/// Attribute names used across the workspace, in the paper's order.
pub const ATTRIBUTE_NAMES: [&str; NUM_ATTRIBUTES] = ["load", "volume", "ratio"];

/// Generates a full synthetic telemetry data set.
///
/// Deterministic for a given config (including seed). Tower "health" draws
/// modulate burst intensity so glitches cluster topologically, and all
/// glitch processes are Markov bursts so they cluster temporally (§6.1).
pub fn generate(config: &NetsimConfig) -> GeneratedData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let topology = config.topology;
    let num_sectors = topology.num_sectors();

    // Tower-level modulation: which towers are dirty, and how intensely.
    let num_towers = topology.num_towers();
    let mut tower_dirty = vec![false; num_towers];
    let mut tower_intensity = vec![1.0f64; num_towers];
    let intensity_dist = LogNormal::new(0.0, 0.35).expect("valid lognormal");
    for i in 0..num_towers {
        tower_dirty[i] = rng.gen::<f64>() < config.dirty_tower_fraction;
        tower_intensity[i] = intensity_dist.sample(&mut rng);
    }

    let mut series = Vec::with_capacity(num_sectors);
    let mut ground_truth = Vec::with_capacity(num_sectors);
    let mut dirty_flag = Vec::with_capacity(num_sectors);

    for node in topology.sectors() {
        let tower_idx =
            (node.rnc as usize) * topology.towers_per_rnc as usize + node.tower as usize;
        let dirty = tower_dirty[tower_idx];
        let intensity = tower_intensity[tower_idx];

        let mut model = KpiModel::new(config.kpi, &mut rng);
        let mut injector = GlitchInjector::new(config.rates, config.kpi, dirty, intensity);
        let scale = if dirty { 1.0 } else { config.rates.clean_scale };

        let mut ts = TimeSeries::new(node, NUM_ATTRIBUTES, config.series_len);
        let mut truth = GlitchMatrix::new(NUM_ATTRIBUTES, config.series_len);
        for t in 0..config.series_len {
            let mut values = model.step(t, &mut rng);
            injector.corrupt_record(&mut values, &mut truth, t, scale, &mut rng);
            for (a, &v) in values.iter().enumerate() {
                ts.set(a, t, v);
            }
        }
        series.push(ts);
        ground_truth.push(truth);
        dirty_flag.push(dirty);
    }

    let dataset = Dataset::new(ATTRIBUTE_NAMES.to_vec(), series)
        .expect("generator emits a consistent schema");
    GeneratedData {
        dataset,
        ground_truth,
        dirty_flag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_glitch::GlitchType;

    #[test]
    fn deterministic_per_seed() {
        let c = NetsimConfig::small(99);
        let a = generate(&c);
        let b = generate(&c);
        assert!(a.dataset.same_data(&b.dataset), "same seed must reproduce");
        assert_eq!(a.ground_truth, b.ground_truth);
        let c2 = generate(&NetsimConfig::small(100));
        assert!(!a.dataset.same_data(&c2.dataset), "seeds must differ");
    }

    #[test]
    fn shapes_match_config() {
        let c = NetsimConfig::small(1);
        let d = generate(&c);
        assert_eq!(d.dataset.num_series(), 100);
        assert!(d
            .dataset
            .series()
            .iter()
            .all(|s| s.len() == c.series_len && s.num_attributes() == 3));
        assert_eq!(d.dataset.attributes()[0].name, "load");
    }

    #[test]
    fn dirty_sectors_have_more_ground_truth_glitches() {
        let c = NetsimConfig::small(7);
        let d = generate(&c);
        let mut dirty_flags = 0usize;
        let mut dirty_records = 0usize;
        let mut clean_flags = 0usize;
        let mut clean_records = 0usize;
        for (i, truth) in d.ground_truth.iter().enumerate() {
            let flags: usize = GlitchType::ALL
                .iter()
                .map(|&g| truth.count_records(g))
                .sum();
            if d.dirty_flag[i] {
                dirty_flags += flags;
                dirty_records += truth.len();
            } else {
                clean_flags += flags;
                clean_records += truth.len();
            }
        }
        assert!(dirty_records > 0 && clean_records > 0);
        let dirty_rate = dirty_flags as f64 / dirty_records as f64;
        let clean_rate = clean_flags as f64 / clean_records as f64;
        assert!(
            dirty_rate > 4.0 * clean_rate,
            "dirty {dirty_rate} vs clean {clean_rate}"
        );
    }

    #[test]
    fn missing_cells_match_ground_truth() {
        let c = NetsimConfig::small(13);
        let d = generate(&c);
        for (s, truth) in d.dataset.series().iter().zip(&d.ground_truth) {
            for t in 0..s.len() {
                for a in 0..3 {
                    assert_eq!(
                        s.is_missing(a, t),
                        truth.get(a, GlitchType::Missing, t),
                        "series {} attr {a} t {t}",
                        s.node()
                    );
                }
            }
        }
    }

    #[test]
    fn glitches_cluster_by_tower() {
        // Sectors on the same tower share dirty/clean status by construction.
        let c = NetsimConfig::small(21);
        let d = generate(&c);
        let spt = c.topology.sectors_per_tower as usize;
        for chunk in d.dirty_flag.chunks(spt) {
            assert!(chunk.iter().all(|&x| x == chunk[0]));
        }
    }
}
