//! Synthetic mobility-network telemetry simulator.
//!
//! The paper's evaluation runs on proprietary AT&T network-monitoring data:
//! 20 000 sector time series of length ≤ 170 with three attributes (§4.1).
//! This crate is the documented substitution (see `DESIGN.md`): a generator
//! that reproduces every property the paper's findings depend on —
//!
//! * **Skewed, bounded marginals.** Attribute 1 ("load") is heavily
//!   right-skewed in raw space and left-skewed after the log transform;
//!   attribute 3 ("success ratio") is Beta-like mass near 1 inside
//!   `[0, 1]`. These are exactly the shapes that break the multivariate
//!   Gaussian imputer (negative loads, ratios above 1).
//! * **Co-occurring missing/inconsistent glitches.** The dominant missing
//!   mode leaves attribute 3 unpopulated while attribute 1 reports, which
//!   violates the paper's cross-attribute constraint — so missing and
//!   inconsistent rates move together (Table 1: 15.80 % vs 15.88 %).
//! * **Outlier asymmetry under the log transform.** Spike anomalies are
//!   outliers in both spaces; near-zero dropout anomalies are extreme only
//!   in log space, so the log configuration flags ≈ 3× more outliers
//!   (Table 1: 16.8 % vs 5.1 %).
//! * **Temporal and topological glitch clustering** (§6.1): glitches arrive
//!   in Markov bursts whose intensity is modulated per tower, so collocated
//!   sectors fail together.
//!
//! The generator also emits a per-cell ground-truth annotation so detector
//! precision/recall can be tested.

#![forbid(unsafe_code)]
mod config;
mod generate;
mod inject;
mod kpi;
mod stream;

pub use config::{GlitchRates, KpiParams, NetsimConfig};
pub use generate::{generate, GeneratedData};
pub use inject::{BurstProcess, GlitchInjector};
pub use kpi::{KpiModel, ATTR_LOAD, ATTR_RATIO, ATTR_VOLUME, NUM_ATTRIBUTES};
pub use stream::{stream_rows, stream_rows_interleaved};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_smoke() {
        let config = NetsimConfig::small(42);
        let data = generate(&config);
        assert_eq!(data.dataset.num_series(), config.topology.num_sectors());
        assert_eq!(data.dataset.num_attributes(), 3);
        assert_eq!(data.ground_truth.len(), data.dataset.num_series());
    }
}
